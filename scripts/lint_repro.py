#!/usr/bin/env python
"""repro-lint: run the project AST invariant checker over the tree.

The CI ``analysis`` job runs this repo-wide and requires zero findings;
locally it is the fastest way to check a change against the determinism,
lock-discipline, kernel-contract and api-hygiene rules before pushing.

    PYTHONPATH=src python scripts/lint_repro.py                 # whole tree
    PYTHONPATH=src python scripts/lint_repro.py src/repro/serve # one package
    PYTHONPATH=src python scripts/lint_repro.py --json          # machine output
    PYTHONPATH=src python scripts/lint_repro.py --fix-suggestions
    PYTHONPATH=src python scripts/lint_repro.py --rules determinism,api-hygiene

Exit status: 0 when clean, 1 when any finding survives suppression, 2 on
usage errors.  Suppression syntax and the rule catalog are documented in
docs/STATIC_ANALYSIS.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import LintEngine, default_rules, findings_to_json  # noqa: E402


def _split(value):
    return [item.strip() for item in value.split(",") if item.strip()]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_repro",
        description="project AST invariant checker (repro-lint)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the findings as a JSON report on stdout",
    )
    parser.add_argument(
        "--fix-suggestions",
        action="store_true",
        help="print a suggested fix under each finding",
    )
    parser.add_argument(
        "--rules",
        type=_split,
        default=None,
        metavar="NAMES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        type=_split,
        default=None,
        metavar="NAMES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="tree root the default scan and relative paths resolve "
        "against (default: this repository)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            ids = ", ".join(getattr(rule, "ids", (rule.name,)))
            print(f"{rule.name:16s} [{ids}]\n    {rule.description}")
        return 0

    known = {rule.name for rule in default_rules()}
    for selection in (args.rules or []) + (args.disable or []):
        if selection not in known:
            parser.error(
                f"unknown rule {selection!r}; known rules: {', '.join(sorted(known))}"
            )

    engine = LintEngine(
        args.root, enabled=args.rules, disabled=args.disable
    )
    paths = [Path(p) for p in args.paths] or None
    findings = engine.run(paths)

    if args.json:
        print(findings_to_json(findings))
    else:
        for finding in findings:
            print(finding.format(with_suggestion=args.fix_suggestions))
        scanned = "tree" if paths is None else f"{len(paths)} path(s)"
        status = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"repro-lint: {status} ({scanned} scanned, "
              f"{len(engine.rules)} rule(s))", file=sys.stderr)

    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
