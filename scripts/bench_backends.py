#!/usr/bin/env python
"""Dataset-backend benchmark: cross-backend parity + out-of-core RSS envelope.

Two phases, both gating:

1. **Parity** — on a small scenario, every sampler cell of a
   (seed x batch_size x num_workers) grid is executed three times — once
   per backend (in-memory, mmap, chunked) — and the full fingerprints
   (estimate, CI, drawn indices, matches, values, oracle accounting) are
   asserted bit-identical across backends before any memory numbers are
   reported: backends are storage, never semantics.

2. **RSS envelope** — a large dataset (default 1M records plus wide
   payload columns) is ingested shard-wise to an on-disk column
   directory, and a fresh subprocess per backend opens it, runs an ABae
   query end-to-end, and reports its peak RSS.  The check: the worker's
   peak RSS delta (over its post-import baseline) stays under
   ``--max-rss-fraction`` of the dataset's *dense* in-memory size.  An
   optional dense arm materializes every column first, demonstrating the
   footprint the out-of-core backends avoid.

Usage::

    PYTHONPATH=src python scripts/bench_backends.py \
        [--size 1000000] [--payload-columns 12] [--budget 20000] \
        [--data-dir /tmp/bench-backends] [--max-rss-fraction 0.35] \
        [--skip-dense] [--json benchmarks/results/BENCH_backends.json]

Exits non-zero on any parity mismatch or a violated RSS envelope — the
regression guard tier-2 CI enforces.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tests"))

from harness import estimate_fingerprint, oracle_accounting_fingerprint  # noqa: E402

from repro.core.abae import run_abae  # noqa: E402
from repro.data import ChunkedBackend, MmapBackend, read_manifest  # noqa: E402
from repro.data.ingest import ingest_scenario  # noqa: E402
from repro.oracle.simulated import LabelColumnOracle  # noqa: E402
from repro.proxy.base import BackedProxy  # noqa: E402
from repro.stats.rng import RandomState  # noqa: E402
from repro.synth import make_dataset, to_backend  # noqa: E402

PARITY_SEEDS = (0, 1)
PARITY_BATCH_SIZES = (1, 7, None)
PARITY_NUM_WORKERS = (1, 2)


def _rss_kb() -> int:
    """Peak RSS of this process so far, in KiB (Linux ru_maxrss units)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _dense_nbytes(directory: Path) -> int:
    import numpy as np

    manifest = read_manifest(directory)
    return sum(
        manifest["num_records"] * np.dtype(spec["dtype"]).itemsize
        for spec in manifest["columns"].values()
    )


# ---------------------------------------------------------------------------
# Phase 1: cross-backend parity over the equivalence grid
# ---------------------------------------------------------------------------


def run_parity(data_dir: Path, size: int, budget: int) -> dict:
    """Assert bit-identical sampler fingerprints across the three backends."""
    from repro.engine import ExecutionConfig

    scenario = make_dataset("celeba", seed=0, size=size)
    backends = {
        "memory": to_backend(scenario, kind="memory"),
        "mmap": to_backend(scenario, kind="mmap", path=data_dir / "parity"),
        "chunked": to_backend(
            scenario,
            kind="chunked",
            path=data_dir / "parity",
            chunk_size=4096,
            max_resident_chunks=4,
        ),
    }
    cells = 0
    for seed, batch_size, workers in itertools.product(
        PARITY_SEEDS, PARITY_BATCH_SIZES, PARITY_NUM_WORKERS
    ):
        config = ExecutionConfig(batch_size=batch_size, num_workers=workers)
        digests = {}
        for kind, backend in backends.items():
            oracle = LabelColumnOracle(backend.column("label"), keep_log=True)
            result = run_abae(
                BackedProxy(backend, "proxy_score"),
                oracle,
                backend.column("statistic"),
                budget=budget,
                with_ci=True,
                rng=RandomState(seed),
                config=config,
            )
            digests[kind] = estimate_fingerprint(
                result
            ) + oracle_accounting_fingerprint(oracle)
        if len(set(digests.values())) != 1:
            raise AssertionError(
                f"backend fingerprints diverged at cell (seed={seed}, "
                f"batch_size={batch_size}, num_workers={workers}); "
                "out-of-core storage changed sampler results"
            )
        cells += 1
    return {"cells": cells, "identical": True, "size": size, "budget": budget}


# ---------------------------------------------------------------------------
# Phase 2: RSS envelope (worker subprocess per backend)
# ---------------------------------------------------------------------------


def _worker(kind: str, directory: Path, budget: int, chunk_size: int) -> None:
    """Open the backend, run one ABae query, print an RSS report as JSON."""
    # Baseline before any data is touched: the delta attributes both the
    # query's working set and (for the dense arm) materialization itself.
    baseline_kb = _rss_kb()
    if kind == "mmap":
        backend = MmapBackend(directory)
    elif kind == "chunked":
        backend = ChunkedBackend(
            directory, chunk_size=chunk_size, max_resident_chunks=16
        )
    else:  # dense: materialize every column up front (the footprint arm)
        from repro.data import InMemoryBackend
        from repro.data.backend import ArrayColumnHandle

        # Read column-by-column straight from disk (np.fromfile, no page
        # cache double count) and free each read buffer once the handle
        # has its copy, so the arm's peak is the honest dense footprint
        # (all columns resident) plus at most one column of transient.
        source = ChunkedBackend(directory, chunk_size=chunk_size)
        dense = {}
        for c in source.column_names():
            dense[c] = ArrayColumnHandle(c, source.column(c).to_numpy())
        backend = InMemoryBackend(dense, name=source.name)
    # Wide-column statistic when the payload exists, else the base column:
    # the gather path is what out-of-core execution must keep cheap.
    statistic_col = (
        "payload_0" if "payload_0" in backend.column_names() else "statistic"
    )
    start = time.perf_counter()
    oracle = LabelColumnOracle(backend.column("label"))
    # num_bootstrap is kept small because the bootstrap's resampling
    # matrices scale with (num_bootstrap x sample size) — scratch that is
    # proportional to the *sample*, not the dataset, and therefore
    # orthogonal to the storage-residency claim this benchmark pins.
    result = run_abae(
        BackedProxy(backend, "proxy_score"),
        oracle,
        backend.column(statistic_col),
        budget=budget,
        with_ci=True,
        num_bootstrap=100,
        rng=RandomState(0),
    )
    elapsed = time.perf_counter() - start
    peak_kb = _rss_kb()
    print(
        json.dumps(
            {
                "kind": kind,
                "baseline_kb": baseline_kb,
                "peak_kb": peak_kb,
                "delta_kb": peak_kb - baseline_kb,
                "estimate": result.estimate,
                "oracle_calls": result.oracle_calls,
                "seconds": elapsed,
                "statistic_column": statistic_col,
            }
        )
    )


def run_rss_arm(kind: str, directory: Path, budget: int, chunk_size: int) -> dict:
    """Run one backend arm in a fresh subprocess and parse its report."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    completed = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--worker", kind,
            "--data-dir", str(directory),
            "--budget", str(budget),
            "--chunk-size", str(chunk_size),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=1800,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"{kind} worker failed:\n{completed.stdout}\n{completed.stderr}"
        )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=1_000_000)
    parser.add_argument("--payload-columns", type=int, default=24)
    parser.add_argument("--budget", type=int, default=10_000)
    parser.add_argument("--parity-size", type=int, default=20_000)
    parser.add_argument("--parity-budget", type=int, default=2_000)
    parser.add_argument("--dataset", default="night-street")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--data-dir",
        type=Path,
        default=Path("/tmp/bench-backends"),
        help="scratch directory for the ingested dataset (reused if valid)",
    )
    parser.add_argument("--chunk-size", type=int, default=65_536)
    parser.add_argument(
        "--max-rss-fraction",
        type=float,
        default=0.35,
        help="fail if an out-of-core arm's RSS delta exceeds this fraction "
        "of the dataset's dense size",
    )
    parser.add_argument("--skip-parity", action="store_true")
    parser.add_argument("--skip-dense", action="store_true")
    parser.add_argument("--json", type=Path, default=None)
    # Internal: run a single measured arm inside a fresh process.
    parser.add_argument("--worker", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.worker is not None:
        _worker(args.worker, args.data_dir, args.budget, args.chunk_size)
        return 0

    args.data_dir.mkdir(parents=True, exist_ok=True)

    # ---- Phase 1: parity ------------------------------------------------------
    parity = None
    if not args.skip_parity:
        print(
            f"verifying cross-backend fingerprints "
            f"({len(PARITY_SEEDS) * len(PARITY_BATCH_SIZES) * len(PARITY_NUM_WORKERS)}"
            f" cells x 3 backends) ..."
        )
        parity = run_parity(args.data_dir, args.parity_size, args.parity_budget)
        print(f"ok: {parity['cells']} cells, bit-identical across backends\n")

    # ---- Phase 2: ingest (reused when already on disk) ------------------------
    dataset_dir = args.data_dir / "large"
    reuse = False
    try:
        manifest = read_manifest(dataset_dir)
        reuse = (
            manifest["num_records"] == args.size
            and sum(1 for c in manifest["columns"] if c.startswith("payload_"))
            == args.payload_columns
        )
    except (FileNotFoundError, ValueError):
        pass
    if not reuse:
        print(
            f"ingesting {args.dataset} x {args.size:,} records "
            f"(+{args.payload_columns} payload columns) ..."
        )
        start = time.perf_counter()
        ingest_scenario(
            args.dataset,
            dataset_dir,
            size=args.size,
            seed=args.seed,
            payload_columns=args.payload_columns,
            overwrite=True,
        )
        print(f"ingested in {time.perf_counter() - start:.1f}s")
    else:
        print(f"reusing ingested dataset at {dataset_dir}")
    dense_bytes = _dense_nbytes(dataset_dir)
    print(f"dense in-memory size: {dense_bytes / 1e6:.1f} MB\n")

    # ---- Phase 3: measured arms ----------------------------------------------
    arms = ["mmap", "chunked"] + ([] if args.skip_dense else ["dense"])
    reports = {}
    print(f"{'arm':>8} {'peak RSS':>10} {'RSS delta':>12} {'vs dense':>9} {'wall':>8}")
    for kind in arms:
        report = run_rss_arm(kind, dataset_dir, args.budget, args.chunk_size)
        reports[kind] = report
        fraction = report["delta_kb"] * 1024 / dense_bytes
        print(
            f"{kind:>8} {report['peak_kb'] / 1024:>8.1f}MB "
            f"{report['delta_kb'] / 1024:>10.1f}MB "
            f"{fraction * 100:>8.1f}% {report['seconds']:>7.2f}s"
        )
    print(
        "(delta = peak over the worker's own post-import baseline; a zero "
        "delta means the query fit inside the interpreter's import footprint)"
    )

    # Every arm ran the same seeded query over the same bytes, so the
    # estimates must agree exactly — a cheap end-to-end cross-check of
    # backend parity at full scale.
    estimates = {reports[kind]["estimate"] for kind in arms}
    if len(estimates) != 1:
        print(f"FAIL: arms disagree on the estimate: {reports}", file=sys.stderr)
        return 1

    failures = []
    for kind in ("mmap", "chunked"):
        delta = reports[kind]["delta_kb"] * 1024
        if delta > args.max_rss_fraction * dense_bytes:
            failures.append(
                f"{kind}: RSS delta {delta / 1e6:.1f} MB exceeds "
                f"{args.max_rss_fraction:.0%} of dense "
                f"{dense_bytes / 1e6:.1f} MB"
            )

    if args.json is not None:
        payload = {
            "schema": 1,
            "benchmark": "backends",
            "dataset": args.dataset,
            "size": args.size,
            "payload_columns": args.payload_columns,
            "budget": args.budget,
            "dense_bytes": dense_bytes,
            "max_rss_fraction": args.max_rss_fraction,
            "parity": parity,
            "arms": reports,
            "failures": failures,
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\n[written to {args.json}]")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("\nok: out-of-core RSS bounded well below the dense footprint")
    return 0


if __name__ == "__main__":
    sys.exit(main())
