#!/usr/bin/env python
"""Microbenchmark: dispatched sampler kernels vs the pre-kernel-layer loops.

Models the per-draw inner loops that ``repro.kernels`` extracted from the
engine — pool gathers/mask updates, the marginal-variance-reduction
priority, group-by bucketing, the minimax objectives, integer spreads and
the bootstrap resampling core — in three configurations:

* **legacy**: the pre-kernel-layer hot loops, reconstructed verbatim
  (per-estimate object churn in the priority, nested Python loops in the
  minimax objective, per-stratum boolean masks in the bucketing);
* **numpy**: the shipped reference kernels, dispatched through
  ``kernel_set("numpy")``;
* **numba**: the native backend via ``kernel_set("numba")`` — recorded as
  skipped (without failing) when numba is not importable.

Every family's outputs are asserted bitwise-identical across all arms
before any timing is reported: the speedup is execution mechanics only,
never a change in results.  Families whose kernels stay reference-only on
every backend (float reductions: the minimax objectives, largest-remainder
rounding, bootstrap row sums) are benchmarked for parity and tracked in
the run table, but the native speedup floor applies to the aggregate over
the *native* families only; the numpy arm must additionally stay within
``--numpy-floor`` of the legacy loops across all families.

Usage::

    PYTHONPATH=src python scripts/bench_kernels.py [--smoke] \
        [--repeats 5] [--min-speedup 3.0] [--numpy-floor 0.9] \
        [--json benchmarks/results/BENCH_kernels.json]

``--min-speedup`` makes the script exit non-zero when the numba backend
(if importable) fails to reach the given aggregate speedup on the native
families — the regression guard CI enforces.  ``--json`` writes the
machine-readable run table that tracks the perf trajectory across PRs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.estimators import estimate_all_strata
from repro.core.types import StratumSample
from repro.engine.policies import marginal_variance_reduction
from repro.kernels import kernel_set, numba_available

_EPS = 1e-12


# ---------------------------------------------------------------------------
# Legacy reconstructions — the pre-kernel-layer bodies, verbatim
# ---------------------------------------------------------------------------


def legacy_pool_rounds(strata, plan):
    """Pre-kernel StratumPool mechanics: inline gather + searchsorted mark."""
    available = [np.ones(s.size, dtype=bool) for s in strata]
    remaining = np.array([s.size for s in strata], dtype=np.int64)
    for round_plan in plan:
        for k, take in round_plan:
            candidates = strata[k][available[k]]
            if candidates.size == 0:
                continue
            drawn = candidates[:: max(1, candidates.size // max(take, 1))][:take]
            if len(drawn) == 0:
                continue
            positions = np.searchsorted(strata[k], drawn)
            available[k][positions] = False
            remaining[k] -= len(drawn)
    return available, remaining


def kernel_pool_rounds(strata, plan, kernels):
    """The same draw schedule through the dispatched pool kernels."""
    available = [np.ones(s.size, dtype=bool) for s in strata]
    remaining = np.array([s.size for s in strata], dtype=np.int64)
    for round_plan in plan:
        for k, take in round_plan:
            candidates = kernels.gather_candidates(strata[k], available[k])
            if candidates.size == 0:
                continue
            drawn = candidates[:: max(1, candidates.size // max(take, 1))][:take]
            if len(drawn) == 0:
                continue
            drawn = np.asarray(drawn, dtype=np.int64)
            remaining[k] -= kernels.mark_drawn(strata[k], available[k], drawn)
    return available, remaining


def legacy_priority(samples):
    """Pre-kernel marginal_variance_reduction: estimate-object churn + ufuncs."""
    estimates = estimate_all_strata(samples)
    p = np.array([e.p_hat for e in estimates])
    sigma = np.array([e.sigma_hat for e in estimates])
    mu = np.array([e.mu_hat for e in estimates])
    draws = np.array([s.num_draws for s in samples], dtype=float)
    p_all = p.sum()
    if p_all == 0:
        return np.ones(len(samples))
    w = p / p_all
    mu_all = float(np.dot(w, mu))
    with np.errstate(divide="ignore", invalid="ignore"):
        within = np.where(p > 0, w**2 * sigma**2 / np.maximum(p, 1e-12), 0.0)
        weight_uncertainty = ((mu - mu_all) / p_all) ** 2 * p * (1.0 - p)
        contribution = (within + weight_uncertainty) / np.maximum(draws, 1.0)
        priority = contribution / np.maximum(draws + 1.0, 1.0)
    unexplored = draws == 0
    if unexplored.any():
        bonus = float(priority[~unexplored].max()) if (~unexplored).any() else 1.0
        priority[unexplored] = max(bonus, 1e-12)
    return priority


def legacy_bucket(assignment, indices, matched, values, num_strata):
    """Pre-kernel group-by bucketing: one boolean mask per stratum."""
    stratum_of = assignment[indices]
    masked_values = np.where(matched, values, np.nan)
    out = []
    for k in range(num_strata):
        in_k = stratum_of == k
        out.append((indices[in_k], matched[in_k], masked_values[in_k]))
    return out


def legacy_minimax_objective(error_terms, informative, lam, n2):
    """Pre-kernel Eq. 10 objective: the nested Python loop, verbatim."""
    num_groups = error_terms.shape[0]
    worst = 0.0
    for g in informative:
        inverse_sum = 0.0
        for l in range(num_groups):
            term = error_terms[l, g]
            if not np.isfinite(term) or term <= 0:
                continue
            variance = term / max(lam[l] * n2, _EPS)
            inverse_sum += 1.0 / variance
        combined = 1.0 / inverse_sum if inverse_sum > 0 else float("inf")
        worst = max(worst, combined)
    return worst


def legacy_floor_spread(weights, batch):
    """Pre-kernel sequential spread: floor counts, shortfall at the argmax."""
    counts = np.floor(weights * batch).astype(int)
    counts[int(np.argmax(weights))] += batch - int(counts.sum())
    return counts


def legacy_largest_remainder(weights, total):
    """Pre-kernel proportional_integer_allocation rounding core."""
    w = weights / weights.sum()
    raw = w * total
    base = np.floor(raw).astype(int)
    leftover = total - int(base.sum())
    if leftover > 0:
        remainders = raw - base
        order = np.argsort(-remainders)
        for idx in order[:leftover]:
            base[idx] += 1
    return base


def legacy_bootstrap(matches, values, resample_idx):
    """Pre-kernel bootstrap inner loop: row sums over the resample matrix."""
    resampled_matches = matches[resample_idx]
    resampled_values = values[resample_idx]
    positives = resampled_matches.sum(axis=1)
    sums = (resampled_values * resampled_matches).sum(axis=1)
    return positives, sums


# ---------------------------------------------------------------------------
# Families: workload + arms + fingerprint
# ---------------------------------------------------------------------------


def _fingerprint(value) -> str:
    """Bitwise digest of a kernel output (arrays by raw bytes, NaN-safe)."""
    if isinstance(value, np.ndarray):
        return f"{value.dtype}:{value.shape}:{value.tobytes().hex()}"
    if isinstance(value, (tuple, list)):
        return "(" + ",".join(_fingerprint(v) for v in value) + ")"
    if isinstance(value, float):
        return repr(np.float64(value).tobytes().hex())
    return repr(value)


def make_families(smoke: bool, seed: int = 0):
    """Build the benchmark families; sizes mirror the per-draw inner loops.

    The hot loops run on *small* per-stratum arrays, many times per query
    (every re-allocation round touches every stratum) — the regime where
    interpreter and ufunc dispatch overhead dominates and the native
    backend pays off.  ``--smoke`` shrinks iteration counts, not shapes.
    """
    rng = np.random.default_rng(seed)
    scale = 1 if smoke else 8
    families = []

    # -- pool: per-round candidate gathers + mask updates ------------------
    num_strata, records = 12, 6_000
    assignment = rng.integers(0, num_strata, size=records)
    strata = [
        np.flatnonzero(assignment == k).astype(np.int64)
        for k in range(num_strata)
    ]
    plan = [
        [(k, int(rng.integers(4, 24))) for k in range(num_strata)]
        for _ in range(40 * scale)
    ]
    families.append(
        {
            "name": "pool",
            "native": True,
            "legacy": lambda: legacy_pool_rounds(strata, plan),
            "kernel": lambda ks: kernel_pool_rounds(strata, plan, ks),
        }
    )

    # -- priority: marginal variance reduction per re-allocation round -----
    samples = []
    for k in range(num_strata):
        n = int(rng.integers(30, 120))
        matches = rng.random(n) < 0.3
        values = np.where(matches, rng.random(n), np.nan)
        samples.append(
            StratumSample(
                stratum=k,
                indices=rng.integers(0, records, size=n).astype(np.int64),
                matches=matches,
                values=values,
            )
        )
    reps_priority = 60 * scale

    def run_priority(fn):
        out = None
        for _ in range(reps_priority):
            out = fn(samples)
        return out

    families.append(
        {
            "name": "priority",
            "native": True,
            "legacy": lambda: run_priority(legacy_priority),
            "kernel": lambda ks: run_priority(
                lambda s: marginal_variance_reduction(s, kernels=ks)
            ),
        }
    )

    # -- bucket: labelled draws -> per-stratum columns (group-by core) -----
    draws = 2_500
    b_indices = rng.integers(0, records, size=draws).astype(np.int64)
    b_matched = rng.random(draws) < 0.25
    b_values = rng.random(draws)
    reps_bucket = 30 * scale

    def run_bucket(fn):
        out = None
        for _ in range(reps_bucket):
            out = fn(assignment, b_indices, b_matched, b_values, num_strata)
        return out

    families.append(
        {
            "name": "bucket",
            "native": True,
            "legacy": lambda: run_bucket(legacy_bucket),
            "kernel": lambda ks: run_bucket(ks.bucket_by_stratum),
        }
    )

    # -- spread: per-round floor allocation of a batch ---------------------
    spread_weights = [rng.dirichlet(np.ones(num_strata)) for _ in range(8)]
    reps_spread = 80 * scale

    def run_spread(fn):
        out = []
        for _ in range(reps_spread):
            for i, w in enumerate(spread_weights):
                out.append(fn(w, 40 + i))
        return out

    families.append(
        {
            "name": "spread",
            "native": True,
            "legacy": lambda: [
                c.astype(np.int64) for c in run_spread(legacy_floor_spread)
            ],
            "kernel": lambda ks: run_spread(ks.floor_spread),
        }
    )

    # -- minimax: Eq. 10 objective over a Nelder-Mead-like trajectory ------
    num_groups = 6
    error_terms = rng.random((num_groups, num_groups)) * 5.0
    error_terms[rng.random((num_groups, num_groups)) < 0.15] = np.inf
    error_terms[0, 1] = 0.0
    usable = np.isfinite(error_terms) & (error_terms > 0)
    informative_mask = usable.any(axis=0)
    informative_list = [g for g in range(num_groups) if informative_mask[g]]
    lams = [rng.dirichlet(np.ones(num_groups)) for _ in range(40 * scale)]
    n2 = 1_000

    families.append(
        {
            "name": "minimax",
            "native": False,
            "legacy": lambda: [
                legacy_minimax_objective(error_terms, informative_list, lam, n2)
                for lam in lams
            ],
            "kernel": lambda ks: [
                ks.minimax_single_objective(
                    error_terms, usable, informative_mask, lam, n2, _EPS
                )
                for lam in lams
            ],
        }
    )

    # -- rounding: largest-remainder integer splits ------------------------
    round_weights = [rng.random(num_strata) + 0.01 for _ in range(40 * scale)]

    families.append(
        {
            "name": "rounding",
            "native": False,
            "legacy": lambda: [
                legacy_largest_remainder(w, 200 + i).astype(np.int64)
                for i, w in enumerate(round_weights)
            ],
            "kernel": lambda ks: [
                ks.largest_remainder(w, 200 + i)
                for i, w in enumerate(round_weights)
            ],
        }
    )

    # -- bootstrap: per-stratum resampled row sums -------------------------
    n = 400
    bs_matches = (rng.random(n) < 0.3).astype(float)
    bs_values = np.where(bs_matches > 0, rng.random(n), 0.0)
    resample_idx = rng.integers(0, n, size=(300, n))
    reps_bootstrap = 5 * scale

    def run_bootstrap(fn):
        out = None
        for _ in range(reps_bootstrap):
            out = fn(bs_matches, bs_values, resample_idx)
        return out

    families.append(
        {
            "name": "bootstrap",
            "native": False,
            "legacy": lambda: run_bootstrap(legacy_bootstrap),
            "kernel": lambda ks: run_bootstrap(ks.bootstrap_resample_stats),
        }
    )

    return families


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small iteration counts (CI gate)"
    )
    parser.add_argument("--repeats", type=int, default=5, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="fail unless the numba arm reaches this aggregate speedup on "
        "the native families (enforced only when numba is importable)",
    )
    parser.add_argument(
        "--numpy-floor",
        type=float,
        default=0.9,
        help="fail when the numpy reference arm drops below this fraction "
        "of legacy speed across all families (tolerance for timer noise)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="write the machine-readable run table to this path",
    )
    args = parser.parse_args()

    families = make_families(smoke=args.smoke, seed=args.seed)
    arms = ["numpy"]
    numba_ok = numba_available()
    if numba_ok:
        arms.append("numba")
    sets = {name: kernel_set(name) for name in arms}

    # ---- Pass 1: bitwise parity, family by family, arm by arm ------------
    print(f"verifying bitwise parity across {len(families)} kernel families ...")
    for family in families:
        reference = _fingerprint(family["legacy"]())
        for arm in arms:
            digest = _fingerprint(family["kernel"](sets[arm]))
            if digest != reference:
                raise AssertionError(
                    f"kernel family {family['name']!r} diverged from the "
                    f"legacy loops on the {arm} backend; outputs are no "
                    f"longer bit-identical"
                )
    print(
        f"ok: {len(families)} families bit-identical on "
        f"{', '.join(arms)}\n"
    )

    # ---- Pass 2: timed arms (best-of repeats, per family) -----------------
    def time_call(fn) -> float:
        best = float("inf")
        for _ in range(args.repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    rows = []
    for family in families:
        row = {
            "family": family["name"],
            "native": family["native"],
            "legacy_seconds": time_call(family["legacy"]),
        }
        for arm in arms:
            ks = sets[arm]
            row[f"{arm}_seconds"] = time_call(
                lambda fam=family, ks=ks: fam["kernel"](ks)
            )
        rows.append(row)

    def aggregate(arm: str, native_only: bool) -> float:
        rel = [r for r in rows if r["native"] or not native_only]
        legacy = sum(r["legacy_seconds"] for r in rel)
        timed = sum(r[f"{arm}_seconds"] for r in rel)
        return legacy / timed

    header = f"{'family':>10} {'native':>7} {'legacy':>10}"
    for arm in arms:
        header += f" {arm:>10} {'x':>6}"
    print(header)
    for r in rows:
        line = (
            f"{r['family']:>10} {str(r['native']):>7} "
            f"{r['legacy_seconds'] * 1e3:>8.2f}ms"
        )
        for arm in arms:
            t = r[f"{arm}_seconds"]
            line += f" {t * 1e3:>8.2f}ms {r['legacy_seconds'] / t:>5.2f}x"
        print(line)

    numpy_overall = aggregate("numpy", native_only=False)
    print(f"\nnumpy reference, all families: {numpy_overall:.2f}x legacy "
          f"(floor {args.numpy_floor}x)")
    numba_native = None
    if numba_ok:
        numba_native = aggregate("numba", native_only=True)
        print(
            f"numba backend, native families: {numba_native:.2f}x legacy "
            f"(floor {args.min_speedup}x)"
        )
    else:
        print(
            f"numba backend: skipped (numba not importable; floor "
            f"{args.min_speedup}x not enforced)"
        )

    if args.json is not None:
        payload = {
            "schema": 1,
            "benchmark": "kernels",
            "smoke": args.smoke,
            "repeats": args.repeats,
            "seed": args.seed,
            "families": rows,
            "numpy_speedup": numpy_overall,
            "numpy_floor": args.numpy_floor,
            "numba": {
                "available": numba_ok,
                "skipped": not numba_ok,
                "native_speedup": numba_native,
                "min_speedup": args.min_speedup,
            },
            "parity": {"families": len(families), "identical": True},
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"[written to {args.json}]")

    failed = False
    if numpy_overall < args.numpy_floor:
        print(
            "FAIL: numpy reference kernels are slower than the legacy loops",
            file=sys.stderr,
        )
        failed = True
    if numba_ok and numba_native < args.min_speedup:
        print("FAIL: numba backend below the speedup floor", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
