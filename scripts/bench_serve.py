#!/usr/bin/env python
"""Concurrent serving benchmark: scheduler parity + TTFE / TT-target-CI SLOs.

Two phases, parity first and gating:

1. **Parity** — before any timing, scheduled execution is asserted
   bit-identical to solo execution: a mix of pipelines is run under the
   cooperative scheduler (round-robin and randomized interleavings) and
   every query's result + oracle-accounting fingerprints must equal its
   solo baseline.  Serving is scheduling, never semantics.

2. **Load** — at each concurrency level (default 10 / 100 / 1000 live
   queries over one shared in-memory dataset backend), two Locust-style
   load shapes are driven through :class:`repro.serve.AQPService`:

   * **closed loop** — all queries submitted up front, scheduler runs to
     completion (the batch-analytics shape);
   * **open loop** — queries arrive during execution at a fixed
     inter-arrival step count (the interactive shape).

   Per query the scheduler records *time-to-first-estimate* (first step
   that charged an oracle draw) and *time-to-target-CI* (anytime CI-width
   proxy under a precomputed target); the benchmark reports p50/p99 of
   both, per level and shape.

3. **Remote arm** (skip with ``--skip-remote``) — the async RPC oracle
   protocol end to end:

   * **flaky parity** — queries served over a seeded
     :class:`SimulatedRemoteOracle` with nonzero failure/timeout rates
     behind a cooperative :class:`AsyncOracle` must be bit-identical to
     the zero-failure remote run *and* to the plain in-process solo
     baseline, with zero give-ups (the no-giveup floor) and a nonzero
     retry count (the flakiness really fired);
   * **cooperative overlap** — ``--remote-concurrency`` queries over a
     *slow* remote oracle, cooperative (parked queries yield the
     scheduler) vs blocking (each step waits out the RPC): the
     cooperative wall-clock must beat the serialized baseline by at
     least ``--min-remote-speedup`` when that gate is set.

Usage::

    PYTHONPATH=src python scripts/bench_serve.py \
        [--levels 10,100,1000] [--budget 400] [--smoke] \
        [--max-p99-ttfe-ms 50] [--min-remote-speedup 1.3] \
        [--json benchmarks/results/BENCH_serve.json]

``--smoke`` shrinks to levels 10 and 100 with a smaller budget (the
tier-2 CI configuration).  ``--max-p99-ttfe-ms`` gates the closed-loop
p99 TTFE at the 100-query level; exceeding it (or any parity mismatch,
give-up, or missed speedup floor) exits non-zero.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tests"))

from harness import scheduled_fingerprints, solo_fingerprint  # noqa: E402

from repro.engine.builders import two_stage_pipeline  # noqa: E402
from repro.oracle.remote import AsyncOracle, RemoteEndpoint  # noqa: E402
from repro.oracle.simulated import (  # noqa: E402
    LabelColumnOracle,
    SimulatedRemoteOracle,
)
from repro.proxy.base import BackedProxy  # noqa: E402
from repro.serve import AQPService, approximate_ci_width  # noqa: E402
from repro.stats.rng import RandomState  # noqa: E402
from repro.synth import make_dataset, to_backend  # noqa: E402

GATE_LEVEL = 100
NUM_STRATA = 5


def build_workload(size: int, seed: int = 0):
    """One shared backend and a pipeline factory over it.

    Every query reads the same backend columns (proxy, labels, statistic)
    — the shared-storage serving shape — while owning its oracle wrapper
    and RNG, so scheduling stays semantics-free.
    """
    scenario = make_dataset("synthetic", seed=seed, size=size)
    backend = to_backend(scenario, kind="memory")
    labels = backend.column("label")
    statistic = backend.column("statistic")

    def factory(budget):
        return two_stage_pipeline(
            BackedProxy(backend, "proxy_score"),
            LabelColumnOracle(labels),
            statistic,
            budget=budget,
            num_strata=NUM_STRATA,
            with_ci=True,
            num_bootstrap=20,
        )

    return factory


def percentile(sorted_values, q):
    """Nearest-rank percentile of an already-sorted list (None if empty)."""
    if not sorted_values:
        return None
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def pick_target_ci_width(factory, budget, seed=0) -> float:
    """A target CI width reachable mid-run: the width at ~60% of budget.

    Computed from one solo trajectory and relaxed by 20% so queries with
    other seeds still attain it well before exhausting their budget.
    """
    pipeline = factory(budget)
    session = pipeline.session(RandomState(seed))
    width_at_60 = None
    while session.step():
        if width_at_60 is None and session.spent >= 0.6 * budget:
            width_at_60 = approximate_ci_width(session)
    if width_at_60 is None or width_at_60 != width_at_60:  # NaN guard
        raise RuntimeError("could not calibrate a target CI width")
    return 1.2 * width_at_60


# ---------------------------------------------------------------------------
# Phase 1: parity (scheduled == solo, bit for bit)
# ---------------------------------------------------------------------------


def run_parity(factory, budget: int, concurrency: int = 8) -> dict:
    checked = 0
    for interleaving in ("round_robin", "random"):
        seeds = [100 + i for i in range(concurrency)]
        scheduled = scheduled_fingerprints(
            [lambda: factory(budget)] * concurrency,
            seeds,
            interleaving=interleaving,
            scheduler_seed=1,
        )
        for seed, digest in zip(seeds, scheduled):
            solo = solo_fingerprint(factory(budget), seed)
            if digest != solo:
                raise AssertionError(
                    f"scheduled result diverged from solo at seed {seed} "
                    f"under {interleaving} interleaving"
                )
            checked += 1
    return {"queries": checked, "identical": True, "concurrency": concurrency}


# ---------------------------------------------------------------------------
# Phase 2: load shapes
# ---------------------------------------------------------------------------


def summarize(service, handles, wall_s: float) -> dict:
    ttfe = sorted(
        h.time_to_first_estimate for h in handles
        if h.time_to_first_estimate is not None
    )
    ttci = sorted(
        h.time_to_target_ci for h in handles
        if h.time_to_target_ci is not None
    )
    total_spent = sum(h.spent for h in handles)
    return {
        "queries": len(handles),
        "completed": sum(1 for h in handles if h.status == "done"),
        "wall_s": wall_s,
        "steps": service.scheduler.total_steps,
        "oracle_draws": total_spent,
        "draws_per_s": total_spent / wall_s if wall_s > 0 else None,
        "ttfe_ms": {
            "p50": _ms(percentile(ttfe, 0.50)),
            "p99": _ms(percentile(ttfe, 0.99)),
            "max": _ms(ttfe[-1] if ttfe else None),
        },
        "ttci_ms": {
            "p50": _ms(percentile(ttci, 0.50)),
            "p99": _ms(percentile(ttci, 0.99)),
            "attained": len(ttci) / len(handles) if handles else None,
        },
    }


def _ms(seconds):
    return None if seconds is None else seconds * 1000.0


def run_closed_loop(factory, budget, level, target_ci_width) -> dict:
    """All ``level`` queries submitted at t=0, then run to completion."""
    service = AQPService(interleaving="round_robin")
    start = time.perf_counter()
    handles = [
        service.submit_pipeline(
            factory(budget), rng=1_000 + i, target_ci_width=target_ci_width
        )
        for i in range(level)
    ]
    service.run_until_complete()
    wall = time.perf_counter() - start
    report = summarize(service, handles, wall)
    report["shape"] = "closed"
    return report


def run_open_loop(factory, budget, level, target_ci_width) -> dict:
    """Queries arrive one per fixed step count while the service runs.

    The inter-arrival gap is half a query's own step count, so the live
    set ramps up to roughly 2x the arrival batch and the service is
    genuinely concurrent for the whole run — the interactive shape.
    """
    steps_per_query = 2 * NUM_STRATA + 1
    arrival_every = max(1, steps_per_query // 2)
    service = AQPService(interleaving="round_robin")
    handles = []
    start = time.perf_counter()
    submitted = 0
    steps_since_arrival = 0
    while submitted < level or service.live_queries:
        if submitted < level and (
            not handles or steps_since_arrival >= arrival_every
        ):
            handles.append(
                service.submit_pipeline(
                    factory(budget),
                    rng=5_000 + submitted,
                    target_ci_width=target_ci_width,
                )
            )
            submitted += 1
            steps_since_arrival = 0
        if service.step() is not None:
            steps_since_arrival += 1
    wall = time.perf_counter() - start
    report = summarize(service, handles, wall)
    report["shape"] = "open"
    return report


# ---------------------------------------------------------------------------
# Phase 3: remote oracle arm (flaky parity + cooperative overlap)
# ---------------------------------------------------------------------------


def run_remote_arm(
    size: int,
    budget: int,
    *,
    concurrency: int = 32,
    parity_concurrency: int = 8,
    per_batch_seconds: float = 0.003,
) -> dict:
    """Drive the async RPC oracle protocol through the service layer.

    Returns a report with a ``flaky`` section (parity vs the clean remote
    run and the plain solo baseline, retry/give-up totals) and an
    ``overlap`` section (cooperative vs blocking wall-clock over a slow
    remote oracle).  Parity mismatches raise immediately.
    """
    scenario = make_dataset("synthetic", seed=0, size=size)
    backend = to_backend(scenario, kind="memory")
    labels = backend.column("label")
    statistic = backend.column("statistic")

    def pipeline_over(oracle, pipeline_budget):
        return two_stage_pipeline(
            BackedProxy(backend, "proxy_score"),
            oracle,
            statistic,
            budget=pipeline_budget,
            num_strata=NUM_STRATA,
            with_ci=True,
            num_bootstrap=20,
        )

    endpoints = []

    def remote_oracle(
        *,
        blocking=False,
        failure_rate=0.0,
        timeout_rate=0.0,
        batch_delay=0.0,
    ):
        transport = SimulatedRemoteOracle(
            labels,
            per_batch_seconds=batch_delay,
            failure_rate=failure_rate,
            timeout_rate=timeout_rate,
            seed=11,
        )
        endpoint = RemoteEndpoint(
            transport,
            max_batch_size=2048,
            max_in_flight=4,
            max_retries=12,
            backoff_base=0.0,
            sleep=lambda s: None,
        )
        endpoints.append(endpoint)
        return AsyncOracle(endpoint, blocking=blocking)

    def close_endpoints():
        for endpoint in endpoints:
            endpoint.close()
        endpoints.clear()

    # -- Flaky parity: flaky cooperative == clean cooperative == plain solo.
    parity_budget = min(budget, 300)
    seeds = [300 + i for i in range(parity_concurrency)]
    solo = [
        solo_fingerprint(pipeline_over(LabelColumnOracle(labels), parity_budget), s)
        for s in seeds
    ]
    retries = giveups = timeouts = failures = 0
    for failure_rate, timeout_rate in ((0.0, 0.0), (0.25, 0.10)):
        scheduled = scheduled_fingerprints(
            [
                lambda fr=failure_rate, tr=timeout_rate: pipeline_over(
                    remote_oracle(failure_rate=fr, timeout_rate=tr),
                    parity_budget,
                )
            ]
            * parity_concurrency,
            seeds,
            interleaving="random",
            scheduler_seed=2,
        )
        if scheduled != solo:
            raise AssertionError(
                f"remote run (failure={failure_rate}, timeout={timeout_rate}) "
                "diverged from the plain solo baseline"
            )
        if failure_rate > 0:
            stats = [e.stats() for e in endpoints]
            retries = sum(s.retries for s in stats)
            giveups = sum(s.giveups for s in stats)
            timeouts = sum(s.timeouts for s in stats)
            failures = sum(s.failures for s in stats)
        close_endpoints()
    flaky = {
        "queries": 2 * parity_concurrency,
        "identical": True,
        "failure_rate": 0.25,
        "timeout_rate": 0.10,
        "retries": retries,
        "timeouts": timeouts,
        "failures": failures,
        "giveups": giveups,
    }

    # -- Cooperative overlap: slow remote, parked queries yield the CPU.
    overlap_budget = min(budget, 150)

    def timed_service_run(blocking):
        service = AQPService(interleaving="round_robin")
        start = time.perf_counter()
        handles = [
            service.submit_pipeline(
                pipeline_over(
                    remote_oracle(
                        blocking=blocking, batch_delay=per_batch_seconds
                    ),
                    overlap_budget,
                ),
                rng=9_000 + i,
            )
            for i in range(concurrency)
        ]
        service.run_until_complete()
        wall = time.perf_counter() - start
        incomplete = sum(1 for h in handles if h.status != "done")
        close_endpoints()
        if incomplete:
            raise AssertionError(
                f"{incomplete} remote queries did not complete "
                f"(blocking={blocking})"
            )
        return wall

    blocking_wall = timed_service_run(blocking=True)
    cooperative_wall = timed_service_run(blocking=False)
    overlap = {
        "concurrency": concurrency,
        "per_batch_seconds": per_batch_seconds,
        "budget": overlap_budget,
        "blocking_wall_s": blocking_wall,
        "cooperative_wall_s": cooperative_wall,
        "speedup": (
            blocking_wall / cooperative_wall if cooperative_wall > 0 else None
        ),
    }
    return {"flaky": flaky, "overlap": overlap}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--levels", default="10,100,1000",
                        help="comma-separated concurrency levels")
    parser.add_argument("--size", type=int, default=50_000,
                        help="records in the shared dataset backend")
    parser.add_argument("--budget", type=int, default=400,
                        help="oracle budget per query")
    parser.add_argument("--parity-concurrency", type=int, default=8)
    parser.add_argument("--smoke", action="store_true",
                        help="CI configuration: levels 10,100, smaller budget")
    parser.add_argument("--max-p99-ttfe-ms", type=float, default=None,
                        help="fail if closed-loop p99 TTFE at the "
                        f"{GATE_LEVEL}-query level exceeds this")
    parser.add_argument("--skip-remote", action="store_true",
                        help="skip the remote oracle arm")
    parser.add_argument("--remote-concurrency", type=int, default=32,
                        help="queries in the cooperative-overlap comparison")
    parser.add_argument("--min-remote-speedup", type=float, default=None,
                        help="fail if cooperative serving over a slow remote "
                        "oracle is not at least this much faster than the "
                        "blocking baseline")
    parser.add_argument("--json", type=Path, default=None)
    args = parser.parse_args()

    levels = [int(x) for x in args.levels.split(",") if x]
    budget = args.budget
    if args.smoke:
        levels = [10, 100]
        budget = min(budget, 300)

    factory = build_workload(args.size)

    print(f"parity: {args.parity_concurrency} concurrent queries x "
          "{round_robin, random} vs solo ...")
    parity = run_parity(factory, min(budget, 300), args.parity_concurrency)
    print(f"ok: {parity['queries']} scheduled queries bit-identical to solo\n")

    target_ci_width = pick_target_ci_width(factory, budget)
    print(f"target CI width (anytime proxy): {target_ci_width:.4f}\n")

    results = {}
    header = (f"{'level':>6} {'shape':>7} {'wall':>8} {'TTFE p50':>10} "
              f"{'TTFE p99':>10} {'TTCI p50':>10} {'TTCI p99':>10} {'attain':>7}")
    print(header)
    for level in levels:
        per_level = {}
        for shape, runner in (("closed", run_closed_loop), ("open", run_open_loop)):
            report = runner(factory, budget, level, target_ci_width)
            per_level[shape] = report
            ttfe, ttci = report["ttfe_ms"], report["ttci_ms"]
            print(
                f"{level:>6} {shape:>7} {report['wall_s']:>7.2f}s "
                f"{_fmt(ttfe['p50']):>10} {_fmt(ttfe['p99']):>10} "
                f"{_fmt(ttci['p50']):>10} {_fmt(ttci['p99']):>10} "
                f"{ttci['attained'] * 100:>6.0f}%"
            )
        results[str(level)] = per_level

    remote = None
    if not args.skip_remote:
        print(f"\nremote arm: flaky parity x {{0%, 25%+10%}} rates, then "
              f"{args.remote_concurrency} queries cooperative vs blocking ...")
        remote = run_remote_arm(
            args.size, budget, concurrency=args.remote_concurrency
        )
        flaky, overlap = remote["flaky"], remote["overlap"]
        print(
            f"flaky parity ok: {flaky['queries']} queries bit-identical to "
            f"solo ({flaky['retries']} retries, {flaky['timeouts']} timeouts, "
            f"{flaky['giveups']} give-ups)"
        )
        print(
            f"overlap: blocking {overlap['blocking_wall_s']:.2f}s vs "
            f"cooperative {overlap['cooperative_wall_s']:.2f}s "
            f"({overlap['speedup']:.1f}x)"
        )

    failures = []
    if remote is not None:
        if remote["flaky"]["giveups"] != 0:
            failures.append(
                f"remote arm gave up on {remote['flaky']['giveups']} batches "
                "despite the retry budget (no-giveup floor)"
            )
        if remote["flaky"]["retries"] == 0:
            failures.append(
                "remote flaky arm recorded zero retries — the fault "
                "injection never fired"
            )
        if args.min_remote_speedup is not None:
            speedup = remote["overlap"]["speedup"]
            if speedup is None or speedup < args.min_remote_speedup:
                failures.append(
                    f"cooperative remote speedup {speedup} is below the "
                    f"--min-remote-speedup floor {args.min_remote_speedup}"
                )
    for level, per_level in results.items():
        for shape, report in per_level.items():
            if report["completed"] != report["queries"]:
                failures.append(
                    f"level {level}/{shape}: only {report['completed']} of "
                    f"{report['queries']} queries completed"
                )
    gate = None
    if args.max_p99_ttfe_ms is not None:
        gate_report = results.get(str(GATE_LEVEL), {}).get("closed")
        if gate_report is None:
            failures.append(
                f"gate requested but level {GATE_LEVEL} was not run"
            )
        else:
            p99 = gate_report["ttfe_ms"]["p99"]
            gate = {
                "level": GATE_LEVEL,
                "max_p99_ttfe_ms": args.max_p99_ttfe_ms,
                "measured_p99_ttfe_ms": p99,
            }
            if p99 is None or p99 > args.max_p99_ttfe_ms:
                failures.append(
                    f"closed-loop p99 TTFE at {GATE_LEVEL} queries is "
                    f"{_fmt(p99)} (limit {args.max_p99_ttfe_ms:.1f}ms)"
                )

    if args.json is not None:
        payload = {
            "schema": 1,
            "benchmark": "serve",
            "size": args.size,
            "budget": budget,
            "levels": levels,
            "target_ci_width": target_ci_width,
            "parity": parity,
            "results": results,
            "remote": remote,
            "gate": gate,
            "failures": failures,
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\n[written to {args.json}]")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("\nok: parity held and every query met its serving lifecycle")
    return 0


def _fmt(ms):
    return "n/a" if ms is None else f"{ms:.2f}ms"


if __name__ == "__main__":
    sys.exit(main())
