#!/usr/bin/env python
"""Microbenchmark: batched vs sequential oracle execution in ABae.

Runs the same fixed-seed query repeatedly through an :class:`repro.ABae`
facade (stratification built once, as a resident query server would) with
the execution engine in strictly-sequential mode (``batch_size=1``, the
pre-batching per-record oracle loop) and in whole-draw batch mode
(``batch_size=None``), and reports the wall-clock speedup per budget.

The two modes are verified to produce bit-identical estimates and oracle
call counts before any timing is reported — batching is purely an
execution-engine optimization.

Usage::

    PYTHONPATH=src python scripts/bench_batching.py [--size 100000] \
        [--budgets 10000,20000,50000] [--repeats 5]
"""

from __future__ import annotations

import argparse
import time

from repro.core.abae import ABae
from repro.stats.rng import RandomState
from repro.synth import make_dataset


def time_estimates(sampler: ABae, budget: int, seed: int, repeats: int):
    """Best-of-``repeats`` wall-clock for one fixed-seed estimate."""
    sampler.estimate(budget=budget, rng=RandomState(seed))  # warm-up
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = sampler.estimate(budget=budget, rng=RandomState(seed))
        best = min(best, time.perf_counter() - start)
    return best, result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=100_000, help="dataset size")
    parser.add_argument(
        "--budgets",
        type=lambda s: [int(b) for b in s.split(",")],
        default=[10_000, 20_000, 50_000],
        help="comma-separated oracle budgets",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--dataset", default="synthetic")
    args = parser.parse_args()

    scenario = make_dataset(args.dataset, seed=0, size=args.size)
    sequential = ABae(
        scenario.proxy, scenario.make_oracle(), scenario.statistic_values, batch_size=1
    )
    batched = ABae(
        scenario.proxy, scenario.make_oracle(), scenario.statistic_values, batch_size=None
    )

    print(f"dataset={args.dataset} size={args.size} repeats={args.repeats}")
    print(f"{'budget':>8} {'sequential':>12} {'batched':>12} {'speedup':>9}  estimate")
    worst_speedup = float("inf")
    for budget in args.budgets:
        t_seq, r_seq = time_estimates(sequential, budget, args.seed, args.repeats)
        t_bat, r_bat = time_estimates(batched, budget, args.seed, args.repeats)
        if (r_seq.estimate, r_seq.oracle_calls) != (r_bat.estimate, r_bat.oracle_calls):
            raise AssertionError(
                f"batched and sequential results diverged at budget {budget}: "
                f"{r_seq.estimate} vs {r_bat.estimate}"
            )
        speedup = t_seq / t_bat
        worst_speedup = min(worst_speedup, speedup)
        print(
            f"{budget:>8} {t_seq * 1e3:>10.2f}ms {t_bat * 1e3:>10.2f}ms "
            f"{speedup:>8.2f}x  {r_bat.estimate:.6f}"
        )
    print(f"minimum speedup across budgets: {worst_speedup:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
