#!/usr/bin/env python
"""Microbenchmark: the columnar hot path vs the pre-columnar baseline.

Models the figure-grid workload — repeated fixed-seed ABae runs over a
(budget x seed) sweep on the celeba-synth dataset — in two configurations:

* **legacy**: the pre-PR hot path, reconstructed faithfully — per-record
  ``OracleCallRecord`` list appends in ``_record`` (the reference
  implementation shipped before the columnar rewrite) and the
  stratification rebuilt from scratch every run (plan-level caches
  bypassed via ``stratification_cache_disabled``);
* **columnar**: the shipped path — array-backed accounting buffers and the
  process-wide proxy/stratification cache.

Every cell's estimate, CI, oracle call count, total cost and *call log*
are asserted element-wise identical across the two configurations before
any timing is reported: the entire speedup is execution-engine mechanics,
never a change in results.

Usage::

    PYTHONPATH=src python scripts/bench_hotpath.py [--size 100000] \
        [--budget 50000] [--seeds 1,2,3] [--num-strata 5] [--repeats 3] \
        [--min-speedup 3.0] [--json benchmarks/results/BENCH_hotpath.json]

``--min-speedup`` makes the script exit non-zero when the columnar path
fails to reach the given end-to-end speedup — the regression guard CI
enforces.  ``--json`` writes the machine-readable run table that tracks
the perf trajectory across PRs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# The equivalence fingerprints live in the test harness; make them
# importable when the script runs standalone.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tests"))

from harness import (  # noqa: E402
    LegacyRecordListMixin,
    estimate_fingerprint,
    oracle_accounting_fingerprint,
)

from repro.core.abae import run_abae  # noqa: E402
from repro.core.stratification import (  # noqa: E402
    clear_stratification_cache,
    stratification_cache_disabled,
)
from repro.oracle.simulated import LabelColumnOracle  # noqa: E402
from repro.stats.rng import RandomState  # noqa: E402
from repro.synth import make_dataset  # noqa: E402


class LegacyLogOracle(LegacyRecordListMixin, LabelColumnOracle):
    """Label oracle with the pre-columnar per-record list accounting.

    The reference ``_record`` (one copy, shared with the parity tests)
    lives in :class:`harness.LegacyRecordListMixin`, so the legacy arm
    pays the historical O(n) object churn per batch that the columnar
    buffers removed.
    """


def cell_fingerprint(result, oracle) -> str:
    """Everything the determinism contract covers, in one digest."""
    return repr(
        (estimate_fingerprint(result), oracle_accounting_fingerprint(oracle))
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=100_000, help="dataset size")
    parser.add_argument("--budget", type=int, default=50_000, help="oracle budget")
    parser.add_argument(
        "--seeds",
        type=lambda s: [int(x) for x in s.split(",")],
        default=[1, 2, 3],
        help="comma-separated per-cell seeds (the sweep's trial axis)",
    )
    parser.add_argument("--num-strata", type=int, default=5)
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--dataset", default="celeba")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="fail unless the columnar path reaches this end-to-end speedup",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="write the machine-readable run table to this path",
    )
    args = parser.parse_args()

    scenario = make_dataset(args.dataset, seed=0, size=args.size)

    def run_cell(oracle_cls, seed, use_cache):
        oracle = oracle_cls(scenario.labels, keep_log=True)
        if use_cache:
            result = run_abae(
                scenario.proxy,
                oracle,
                scenario.statistic_values,
                budget=args.budget,
                num_strata=args.num_strata,
                rng=RandomState(seed),
            )
        else:
            with stratification_cache_disabled():
                result = run_abae(
                    scenario.proxy,
                    oracle,
                    scenario.statistic_values,
                    budget=args.budget,
                    num_strata=args.num_strata,
                    rng=RandomState(seed),
                )
        return result, oracle

    # ---- Pass 1: bit-identical results and accounting, cell by cell ----------
    print(
        f"verifying bit-identical results + call logs across "
        f"{len(args.seeds)} seeds ..."
    )
    clear_stratification_cache()
    sample_result = None
    for seed in args.seeds:
        legacy_digest = cell_fingerprint(*run_cell(LegacyLogOracle, seed, False))
        result, oracle = run_cell(LabelColumnOracle, seed, True)
        columnar_digest = cell_fingerprint(result, oracle)
        if legacy_digest != columnar_digest:
            raise AssertionError(
                f"columnar hot path diverged from the legacy path at seed "
                f"{seed}; estimates / accounting are no longer bit-identical"
            )
        sample_result = result
    print(f"ok: {len(args.seeds)} cells, identical estimates, CIs and call logs\n")

    # ---- Pass 2: timed sweeps -------------------------------------------------
    def time_arm(legacy: bool) -> float:
        best = float("inf")
        for _ in range(args.repeats):
            if not legacy:
                # The cached arm is measured from a cold cache: the first
                # cell pays the one-time sort, the rest of the sweep reuses
                # it — exactly the figure-grid access pattern.
                clear_stratification_cache()
            start = time.perf_counter()
            for seed in args.seeds:
                if legacy:
                    run_cell(LegacyLogOracle, seed, False)
                else:
                    run_cell(LabelColumnOracle, seed, True)
            best = min(best, time.perf_counter() - start)
        return best

    t_columnar = time_arm(legacy=False)
    t_legacy = time_arm(legacy=True)
    speedup = t_legacy / t_columnar

    cells = len(args.seeds)
    print(
        f"dataset={args.dataset} size={args.size} budget={args.budget} "
        f"K={args.num_strata} cells={cells} repeats={args.repeats}"
    )
    print(f"{'path':>10} {'sweep wall-clock':>18} {'per cell':>12}")
    print(f"{'legacy':>10} {t_legacy * 1e3:>16.1f}ms {t_legacy / cells * 1e3:>10.2f}ms")
    print(
        f"{'columnar':>10} {t_columnar * 1e3:>16.1f}ms "
        f"{t_columnar / cells * 1e3:>10.2f}ms"
    )
    print(f"\nend-to-end speedup: {speedup:.2f}x (floor {args.min_speedup}x)")

    if args.json is not None:
        payload = {
            "schema": 1,
            "benchmark": "hotpath",
            "dataset": args.dataset,
            "size": args.size,
            "budget": args.budget,
            "num_strata": args.num_strata,
            "seeds": list(args.seeds),
            "repeats": args.repeats,
            "cells": cells,
            "legacy_seconds": t_legacy,
            "columnar_seconds": t_columnar,
            "speedup": speedup,
            "min_speedup": args.min_speedup,
            "parity": {"cells": cells, "identical": True},
            "estimate": sample_result.estimate,
            "oracle_calls": sample_result.oracle_calls,
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"[written to {args.json}]")

    if speedup < args.min_speedup:
        print("FAIL: below the speedup floor", file=sys.stderr)
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
