#!/usr/bin/env python
"""Crash-recovery benchmark: the zero-divergence kill matrix + replay cost.

The crash-recover-compare loop of :mod:`repro.serve.chaos`, swept as a
benchmark (docs/RESILIENCE.md):

1. **Baseline** — per oracle mode, the three-family workload (two_stage /
   uniform / sequential, one tenant each) runs uninterrupted through the
   *same* journaled service path as every chaos arm, so arms differ only
   in the kill.

2. **Kill matrix** — a seeded grid of scheduler-step kill points
   (default >= 20 per mode, from :class:`ChaosPolicy`) across oracle
   modes ``plain`` (in-process), ``blocking`` and ``cooperative`` (flaky
   :class:`SimulatedRemoteOracle` behind the async RPC endpoint).  Each
   arm: run to the kill point, abandon the service (the in-process
   ``kill -9``), :meth:`AQPService.recover` into a fresh service, drive
   to completion.  **Zero divergence is the gate**: every recovered
   query's estimate fingerprint and every tenant's charge must equal the
   uninterrupted baseline, or the run exits non-zero.

3. **Tamper arms** — torn-tail and appended-garbage journals (the
   torn-write crash artifacts) recover through the same comparison.

Per recovered arm the script records *recovery latency* (the
``AQPService.recover`` call: replay + rebuild + re-admission) and the
number of journal records replayed; it reports p50/p99/max latency and
aggregate replay throughput (records/s).

Usage::

    PYTHONPATH=src python scripts/bench_recovery.py \
        [--kills 20] [--max-step 60] [--modes plain,blocking,cooperative] \
        [--smoke] [--max-p99-recovery-ms 500] \
        [--json benchmarks/results/BENCH_recovery.json]

``--smoke`` shrinks to 8 kill points over the plain + cooperative modes
(the tier-2 CI configuration).  ``--max-p99-recovery-ms`` gates recovery
latency; any divergence, too-few recovered arms, or a blown gate exits
non-zero.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tests"))

from harness import estimate_fingerprint  # noqa: E402

from repro.engine.builders import (  # noqa: E402
    sequential_pipeline,
    two_stage_pipeline,
    uniform_pipeline,
)
from repro.oracle import (  # noqa: E402
    AsyncOracle,
    RemoteEndpoint,
    SimulatedRemoteOracle,
)
from repro.serve.chaos import (  # noqa: E402
    ChaosPolicy,
    ChaosQuery,
    append_garbage,
    crash_recover_run,
    tear_journal_tail,
)
from repro.synth import make_dataset  # noqa: E402

BUDGETS = {"two_stage": 320, "uniform": 240, "sequential": 260}
MODES = ("plain", "blocking", "cooperative")
JOURNAL_EVERY = 5  # crash_recover_run's snapshot cadence (task steps)
QUERIES = (
    ChaosQuery("two_stage", tenant="a", seed=3),
    ChaosQuery("uniform", tenant="b", seed=7),
    ChaosQuery("sequential", tenant="c", seed=5),
)


def build_registry(scenario, mode, endpoints):
    """``recovery_key -> pipeline factory`` for one oracle mode.

    Remote modes rebuild a fresh seeded flaky endpoint per factory call —
    exactly what recovery does in production, where oracles are not
    picklable and must be reconstructed from the registry.
    """
    sc = scenario

    def make_oracle(family):
        if mode == "plain":
            return sc.make_oracle()
        transport = SimulatedRemoteOracle(
            sc.labels,
            failure_rate=0.2,
            timeout_rate=0.05,
            seed=11,
            name=f"{family}_remote",
        )
        endpoint = RemoteEndpoint(
            transport,
            max_batch_size=64,
            max_in_flight=2,
            max_retries=10,
            backoff_base=0.0,
            sleep=lambda s: None,
        )
        endpoints.append(endpoint)
        return AsyncOracle(endpoint, blocking=(mode == "blocking"))

    return {
        "two_stage": lambda: two_stage_pipeline(
            sc.proxy,
            make_oracle("two_stage"),
            sc.statistic_values,
            budget=BUDGETS["two_stage"],
            with_ci=True,
            num_bootstrap=20,
        ),
        "uniform": lambda: uniform_pipeline(
            sc.num_records,
            make_oracle("uniform"),
            sc.statistic_values,
            budget=BUDGETS["uniform"],
            with_ci=True,
            num_bootstrap=20,
        ),
        "sequential": lambda: sequential_pipeline(
            sc.proxy,
            make_oracle("sequential"),
            sc.statistic_values,
            budget=BUDGETS["sequential"],
        ),
    }


def percentile(sorted_values, q):
    """Nearest-rank percentile of an already-sorted list (None if empty)."""
    if not sorted_values:
        return None
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def diverges(arm, baseline):
    """A human-readable divergence description, or None when bit-identical."""
    if arm.statuses != baseline.statuses:
        return f"statuses {arm.statuses} != baseline {baseline.statuses}"
    if set(arm.results) != set(baseline.results):
        return "recovered task-id set differs from baseline"
    for task_id, reference in baseline.results.items():
        if estimate_fingerprint(arm.results[task_id]) != estimate_fingerprint(
            reference
        ):
            return f"query {task_id} estimate diverged after recovery"
    if arm.charged != baseline.charged:
        return f"charges {arm.charged} != baseline {baseline.charged}"
    return None


def run_mode(scenario, mode, kill_steps, work_dir, tamper_kill=None):
    """Sweep one oracle mode's kill grid; returns the per-mode report."""
    endpoints = []
    registry = build_registry(scenario, mode, endpoints)

    def close_endpoints():
        for endpoint in endpoints:
            endpoint.close()
        endpoints.clear()

    start = time.perf_counter()
    baseline = crash_recover_run(
        work_dir / "baseline", registry, QUERIES, kill_step=None
    )
    if not baseline.completed_before_kill:
        raise AssertionError(f"{mode}: baseline arm did not complete")
    baseline_wall = time.perf_counter() - start

    arms = []
    divergences = []
    tampers = {}
    if tamper_kill is not None:
        policy = ChaosPolicy(seed=4)
        tampers = {
            "tear": lambda d: tear_journal_tail(d, policy.tear_bytes(64)),
            "garbage": lambda d: append_garbage(d),
        }

    plans = [(f"kill@{k}", k, None) for k in kill_steps]
    plans += [(f"tamper:{name}", tamper_kill, fn) for name, fn in tampers.items()]
    for label, kill, tamper in plans:
        arm = crash_recover_run(
            work_dir / label.replace(":", "-").replace("@", "-"),
            registry,
            QUERIES,
            kill_step=kill,
            tamper=tamper,
        )
        arms.append((label, arm))
        if not arm.completed_before_kill:
            problem = diverges(arm, baseline)
            if problem is not None:
                divergences.append(f"{mode} {label}: {problem}")
    close_endpoints()

    recovered = [(label, a) for label, a in arms if not a.completed_before_kill]
    latencies = sorted(a.recovery_seconds for _, a in recovered)
    replayed = sum(a.replayed_records for _, a in recovered)
    replay_seconds = sum(a.recovery_seconds for _, a in recovered)
    return {
        "mode": mode,
        "kill_steps": list(kill_steps),
        "arms": len(arms),
        "recovered": len(recovered),
        "completed_before_kill": len(arms) - len(recovered),
        "tamper_arms": sorted(tampers),
        "divergences": divergences,
        "baseline_wall_s": baseline_wall,
        "recovery_ms": {
            "p50": _ms(percentile(latencies, 0.50)),
            "p99": _ms(percentile(latencies, 0.99)),
            "max": _ms(latencies[-1] if latencies else None),
        },
        "replayed_records": replayed,
        "replay_records_per_s": (
            replayed / replay_seconds if replay_seconds > 0 else None
        ),
    }


def _ms(seconds):
    return None if seconds is None else seconds * 1000.0


def _fmt(ms):
    return "n/a" if ms is None else f"{ms:.2f}ms"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=6_000,
                        help="records in the synthetic dataset")
    parser.add_argument("--kills", type=int, default=20,
                        help="seeded kill points per oracle mode")
    parser.add_argument("--max-step", type=int, default=60,
                        help="kill points drawn from [0, max-step)")
    parser.add_argument("--modes", default=",".join(MODES),
                        help="comma-separated subset of plain,blocking,cooperative")
    parser.add_argument("--chaos-seed", type=int, default=2,
                        help="seed for the kill-point grid")
    parser.add_argument("--smoke", action="store_true",
                        help="CI configuration: 8 kill points, "
                        "plain + cooperative modes")
    parser.add_argument("--min-recovered-fraction", type=float, default=0.5,
                        help="fail unless at least this fraction of each "
                        "mode's arms genuinely exercised recovery")
    parser.add_argument("--max-p99-recovery-ms", type=float, default=None,
                        help="fail if any mode's p99 recovery latency "
                        "exceeds this")
    parser.add_argument("--json", type=Path, default=None)
    args = parser.parse_args()

    kills, max_step = args.kills, args.max_step
    modes = [m for m in args.modes.split(",") if m]
    if args.smoke:
        kills, max_step = 8, 28
        modes = ["plain", "cooperative"]
    for mode in modes:
        if mode not in MODES:
            parser.error(f"unknown mode {mode!r} (choose from {MODES})")

    scenario = make_dataset("synthetic", seed=0, size=args.size)
    # Same seeded grid for every mode: modes differ only in the oracle.
    kill_steps = ChaosPolicy(seed=args.chaos_seed).kill_steps(
        kills, max_step=max_step
    )
    # Tamper once every task has journaled a post-submit snapshot (task
    # step >= journal_every), so the tear can only cost re-executable
    # post-snapshot work — never a submit record, whose loss would model
    # a crash before the durable admission ack and legitimately drop the
    # query.  Still early enough that every family is live at the kill.
    tamper_kill = (JOURNAL_EVERY + 1) * len(QUERIES)

    print(
        f"kill matrix: {len(kill_steps)} kill points x "
        f"{len(QUERIES)} families x modes {modes} (+2 tamper arms/mode)"
    )
    results = {}
    failures = []
    header = (f"{'mode':>12} {'arms':>5} {'recov':>6} {'p50':>10} "
              f"{'p99':>10} {'replay rec/s':>13} {'diverged':>9}")
    print(header)
    for mode in modes:
        with tempfile.TemporaryDirectory(prefix=f"bench-recovery-{mode}-") as tmp:
            report = run_mode(
                scenario, mode, kill_steps, Path(tmp), tamper_kill=tamper_kill
            )
        results[mode] = report
        rec = report["recovery_ms"]
        print(
            f"{mode:>12} {report['arms']:>5} {report['recovered']:>6} "
            f"{_fmt(rec['p50']):>10} {_fmt(rec['p99']):>10} "
            f"{report['replay_records_per_s'] or 0:>13.0f} "
            f"{len(report['divergences']):>9}"
        )
        failures.extend(report["divergences"])
        if report["recovered"] < args.min_recovered_fraction * report["arms"]:
            failures.append(
                f"{mode}: only {report['recovered']} of {report['arms']} arms "
                "exercised recovery — the kill grid is too late"
            )
        if (
            args.max_p99_recovery_ms is not None
            and rec["p99"] is not None
            and rec["p99"] > args.max_p99_recovery_ms
        ):
            failures.append(
                f"{mode}: p99 recovery latency {rec['p99']:.1f}ms exceeds "
                f"the --max-p99-recovery-ms gate {args.max_p99_recovery_ms}"
            )

    if args.json is not None:
        payload = {
            "schema": 1,
            "benchmark": "recovery",
            "size": args.size,
            "modes": modes,
            "kill_points": len(kill_steps),
            "max_step": max_step,
            "chaos_seed": args.chaos_seed,
            "families": sorted(BUDGETS),
            "budgets": BUDGETS,
            "zero_divergence": not any(
                r["divergences"] for r in results.values()
            ),
            "results": results,
            "failures": failures,
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\n[written to {args.json}]")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    total_recovered = sum(r["recovered"] for r in results.values())
    print(
        f"\nok: {total_recovered} recovered arms bit-identical to their "
        "uninterrupted baselines (zero divergence)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
