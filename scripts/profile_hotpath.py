#!/usr/bin/env python
"""Micro-profiling harness: per-kernel time share for each sampler family.

Wraps the resolved :class:`repro.kernels.KernelSet` in a
``perf_counter_ns`` accumulator, runs each sampler family end-to-end on a
small fixed-seed workload, and reports how much of the family's wall
clock each dispatched kernel accounts for — the measurement that decides
which inner loop is worth porting to a native backend next.

The wrapper times the *dispatched* implementations, so running under
``REPRO_KERNEL=numpy`` vs ``REPRO_KERNEL=numba`` shows exactly where the
native backend moves the needle (selection never changes results — only
these timings).

Usage::

    PYTHONPATH=src python scripts/profile_hotpath.py [--size 20000] \
        [--families abae,sequential,until_width,groupby] [--cprofile]

``--cprofile`` additionally prints the top cumulative-time functions per
family from :mod:`cProfile`, for drilling past the kernel layer.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import time
from typing import Callable, Dict, List

import numpy as np


class TimingKernelSet:
    """A KernelSet proxy that accumulates per-kernel wall time.

    Mirrors the real set's interface (``backend``, ``native_kernels``,
    attribute-style kernel access, ``names()``/``in``/``[]``) so every
    consumer — pools, policies, the bootstrap, the group-by bucketing —
    uses it unmodified.
    """

    def __init__(self, inner, accumulator: Dict[str, List[int]]):
        self.backend = inner.backend
        self.native_kernels = inner.native_kernels
        self._inner = inner
        self._acc = accumulator
        for name in inner.names():
            setattr(self, name, self._wrap(name, inner[name]))

    def _wrap(self, name: str, fn: Callable) -> Callable:
        acc = self._acc

        def timed(*args, **kwargs):
            start = time.perf_counter_ns()
            try:
                return fn(*args, **kwargs)
            finally:
                cell = acc.setdefault(name, [0, 0])
                cell[0] += time.perf_counter_ns() - start
                cell[1] += 1

        return timed

    def __contains__(self, name: str) -> bool:
        return name in self._inner

    def __getitem__(self, name: str) -> Callable:
        return getattr(self, name)

    def names(self):
        return self._inner.names()


def install_timing_dispatch(accumulator: Dict[str, List[int]]) -> None:
    """Route every kernel_set() resolution through the timing proxy.

    Consumers bind ``kernel_set`` two ways: function-local imports (the
    config resolver, the allocation rounding) pick up a patch of
    ``repro.kernels.kernel_set`` at call time, while module-level imports
    need their own binding replaced.  Patch both.
    """
    import repro.core.allocation as allocation_mod
    import repro.core.bootstrap as bootstrap_mod
    import repro.core.groupby as groupby_mod
    import repro.engine.pipeline as pipeline_mod
    import repro.engine.policies as policies_mod
    import repro.kernels as kernels_mod

    real_kernel_set = kernels_mod.kernel_set
    proxies: Dict[int, TimingKernelSet] = {}

    def timing_kernel_set(hint=None):
        inner = real_kernel_set(hint)
        proxy = proxies.get(id(inner))
        if proxy is None:
            proxy = proxies[id(inner)] = TimingKernelSet(inner, accumulator)
        return proxy

    for mod in (
        kernels_mod,
        allocation_mod,
        bootstrap_mod,
        groupby_mod,
        pipeline_mod,
        policies_mod,
    ):
        mod.kernel_set = timing_kernel_set


# ---------------------------------------------------------------------------
# Sampler-family workloads (small, fixed-seed)
# ---------------------------------------------------------------------------


def make_workloads(size: int):
    from repro.core.abae import run_abae
    from repro.core.adaptive import run_abae_sequential, run_abae_until_width
    from repro.core.groupby import GroupSpec, run_groupby_single_oracle
    from repro.oracle.simulated import LabelColumnOracle
    from repro.stats.rng import RandomState
    from repro.synth import make_dataset, make_groupby_scenario

    scenario = make_dataset("celeba", seed=0, size=size)
    groupby_scenario = make_groupby_scenario(
        "celeba", setting="single", seed=5, size=size
    )
    budget = max(1000, size // 4)

    def abae():
        run_abae(
            scenario.proxy,
            LabelColumnOracle(scenario.labels),
            scenario.statistic_values,
            budget=budget,
            num_strata=5,
            with_ci=True,
            rng=RandomState(1),
        )

    def sequential():
        run_abae_sequential(
            scenario.proxy,
            LabelColumnOracle(scenario.labels),
            scenario.statistic_values,
            budget=budget // 2,
            num_strata=5,
            batch_size=50,
            rng=RandomState(1),
        )

    def until_width():
        run_abae_until_width(
            scenario.proxy,
            LabelColumnOracle(scenario.labels),
            scenario.statistic_values,
            target_width=0.02,
            max_budget=budget,
            num_strata=5,
            batch_size=100,
            num_bootstrap=200,
            rng=RandomState(1),
        )

    def groupby():
        run_groupby_single_oracle(
            groups=[
                GroupSpec(key=g, proxy=groupby_scenario.proxies[g])
                for g in groupby_scenario.groups
            ],
            oracle=groupby_scenario.make_single_oracle(),
            statistic=groupby_scenario.statistic_values,
            budget=budget // 2,
            rng=RandomState(1),
        )

    return {
        "abae": abae,
        "sequential": sequential,
        "until_width": until_width,
        "groupby": groupby,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=20_000, help="dataset size")
    parser.add_argument(
        "--families",
        type=lambda s: s.split(","),
        default=["abae", "sequential", "until_width", "groupby"],
        help="comma-separated sampler families to profile",
    )
    parser.add_argument(
        "--cprofile",
        action="store_true",
        help="also print cProfile top functions per family",
    )
    parser.add_argument("--top", type=int, default=12, help="cProfile rows")
    args = parser.parse_args()

    accumulator: Dict[str, List[int]] = {}
    install_timing_dispatch(accumulator)
    workloads = make_workloads(args.size)

    unknown = [f for f in args.families if f not in workloads]
    if unknown:
        parser.error(
            f"unknown families {unknown!r}; choose from {sorted(workloads)}"
        )

    from repro.kernels import kernel_set

    print(f"dispatched backend: {kernel_set().backend}  (size={args.size})\n")

    for family in args.families:
        accumulator.clear()
        run = workloads[family]
        run()  # warm caches (stratification, jit) outside the measurement
        accumulator.clear()
        start = time.perf_counter_ns()
        if args.cprofile:
            profiler = cProfile.Profile()
            profiler.enable()
            run()
            profiler.disable()
        else:
            run()
        wall_ns = time.perf_counter_ns() - start

        kernel_ns = sum(cell[0] for cell in accumulator.values())
        print(f"== {family}: wall {wall_ns / 1e6:.1f}ms, "
              f"kernels {kernel_ns / 1e6:.1f}ms "
              f"({100.0 * kernel_ns / max(wall_ns, 1):.1f}% of wall)")
        print(f"{'kernel':>26} {'calls':>8} {'total':>10} {'share':>7}")
        for name, (ns, calls) in sorted(
            accumulator.items(), key=lambda item: -item[1][0]
        ):
            print(
                f"{name:>26} {calls:>8} {ns / 1e6:>8.2f}ms "
                f"{100.0 * ns / max(wall_ns, 1):>6.1f}%"
            )
        if args.cprofile:
            stream = io.StringIO()
            stats = pstats.Stats(profiler, stream=stream)
            stats.sort_stats("cumulative").print_stats(args.top)
            print(stream.getvalue())
        print()
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
