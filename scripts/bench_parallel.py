#!/usr/bin/env python
"""Microbenchmark: sharded (multi-worker) vs serial oracle execution in ABae.

The oracle in the paper's deployments is a remote, expensive call — DNN
inference on a GPU service, a human-labeling API — so the client spends its
time *waiting*, which is exactly what worker threads can overlap even on a
single CPU core.  This benchmark models that with
:class:`repro.oracle.simulated.LatencyOracle` (a deterministic label lookup
behind a GIL-releasing per-record service delay) over the 100k synthetic
dataset, and measures the same fixed-seed ABae query at increasing
``num_workers``.

Determinism is verified in two passes before any timing is reported:

1. a zero-latency verification grid asserts that every worker count yields
   bit-identical estimates, CIs, samples and oracle call counts;
2. the timed runs' results are asserted identical again afterwards.

Usage::

    PYTHONPATH=src python scripts/bench_parallel.py [--size 100000] \
        [--budget 20000] [--workers 1,2,4] [--per-record-us 100] \
        [--repeats 2] [--min-speedup 2.5]

``--min-speedup`` makes the script exit non-zero if the largest worker
count fails to reach the given speedup over serial execution — the
regression guard for the parallel engine.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.abae import run_abae
from repro.oracle.simulated import LatencyOracle
from repro.stats.rng import RandomState
from repro.synth import make_dataset


def fingerprint(result) -> str:
    return repr(
        (
            result.estimate,
            None if result.ci is None else (result.ci.lower, result.ci.upper),
            result.oracle_calls,
            [tuple(s.indices.tolist()) for s in result.samples],
        )
    )


def run_once(scenario, oracle, budget, seed, num_workers):
    return run_abae(
        scenario.proxy,
        oracle,
        scenario.statistic_values,
        budget=budget,
        with_ci=True,
        num_bootstrap=100,
        rng=RandomState(seed),
        batch_size=None,
        num_workers=num_workers,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=100_000, help="dataset size")
    parser.add_argument("--budget", type=int, default=20_000, help="oracle budget")
    parser.add_argument(
        "--workers",
        type=lambda s: [int(w) for w in s.split(",")],
        default=[1, 2, 4],
        help="comma-separated worker counts (first should be 1 = serial)",
    )
    parser.add_argument(
        "--per-record-us",
        type=float,
        default=100.0,
        help="simulated oracle service time per record, microseconds",
    )
    parser.add_argument(
        "--per-batch-ms",
        type=float,
        default=0.5,
        help="simulated per-request dispatch overhead, milliseconds",
    )
    parser.add_argument("--repeats", type=int, default=2, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--dataset", default="synthetic")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.5,
        help="fail unless the largest worker count reaches this speedup",
    )
    args = parser.parse_args()

    scenario = make_dataset(args.dataset, seed=0, size=args.size)
    labels = scenario.make_oracle().labels

    # ---- Pass 1: determinism grid with a zero-latency oracle -----------------
    print("verifying bit-identical results across worker counts ...")
    reference = None
    for workers in args.workers:
        oracle = LatencyOracle(labels, name="verify")
        digest = fingerprint(
            run_once(scenario, oracle, args.budget, args.seed, workers)
        )
        if reference is None:
            reference = digest
        elif digest != reference:
            raise AssertionError(
                f"results diverged at num_workers={workers}; the parallel "
                "engine broke the determinism contract"
            )
        assert oracle.num_calls == args.budget, oracle.num_calls
    print(f"ok: {len(args.workers)} worker counts, identical results\n")

    # ---- Pass 2: timed runs with simulated oracle latency --------------------
    per_record = args.per_record_us * 1e-6
    per_batch = args.per_batch_ms * 1e-3
    print(
        f"dataset={args.dataset} size={args.size} budget={args.budget} "
        f"latency={args.per_record_us:.0f}us/record+{args.per_batch_ms:.1f}ms/request "
        f"repeats={args.repeats}"
    )
    print(f"{'workers':>8} {'wall-clock':>12} {'speedup':>9}  estimate")

    timings = {}
    digests = set()
    serial_time = None
    for workers in args.workers:
        best = float("inf")
        result = None
        for _ in range(args.repeats):
            oracle = LatencyOracle(
                labels,
                per_record_seconds=per_record,
                per_batch_seconds=per_batch,
                name="bench",
            )
            start = time.perf_counter()
            result = run_once(scenario, oracle, args.budget, args.seed, workers)
            best = min(best, time.perf_counter() - start)
        digests.add(fingerprint(result))
        timings[workers] = best
        if serial_time is None:
            serial_time = best
        speedup = serial_time / best
        print(
            f"{workers:>8} {best * 1e3:>10.1f}ms {speedup:>8.2f}x  "
            f"{result.estimate:.6f}"
        )

    if len(digests) != 1:
        raise AssertionError("timed runs diverged across worker counts")

    top = args.workers[-1]
    speedup = serial_time / timings[top]
    print(f"\nspeedup at {top} workers: {speedup:.2f}x (floor {args.min_speedup}x)")
    if speedup < args.min_speedup:
        print("FAIL: below the speedup floor", file=sys.stderr)
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
