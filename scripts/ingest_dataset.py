#!/usr/bin/env python
"""Ingest an emulated dataset into an on-disk column directory.

The written directory is the shared storage format of the out-of-core
dataset backends: open it with ``repro.data.MmapBackend`` (OS-paged) or
``repro.data.ChunkedBackend`` (explicit LRU residency).  Columns are
streamed shard by shard, so ingestion's peak memory is one shard — the
optional ``--payload-columns`` (stand-ins for wide per-record features)
are generated per shard and never exist densely.

Usage::

    PYTHONPATH=src python scripts/ingest_dataset.py \
        --dataset night-street --size 1000000 --seed 0 \
        --out datasets/night-street-1m [--payload-columns 12] \
        [--shard-rows 131072] [--force]

Then::

    from repro.data import MmapBackend
    from repro.proxy import BackedProxy
    from repro.oracle.simulated import LabelColumnOracle

    backend = MmapBackend("datasets/night-street-1m")
    proxy = BackedProxy(backend, "proxy_score")
    oracle = LabelColumnOracle(backend.column("label"))
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.data import MmapBackend
from repro.data.ingest import DEFAULT_SHARD_ROWS, ingest_scenario
from repro.synth import DATASET_NAMES


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dataset",
        default="night-street",
        help=f"one of {list(DATASET_NAMES) + ['synthetic']}",
    )
    parser.add_argument("--size", type=int, default=1_000_000, help="record count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, required=True, help="target directory")
    parser.add_argument(
        "--shard-rows",
        type=int,
        default=DEFAULT_SHARD_ROWS,
        help="rows per ingestion shard (peak memory is one shard)",
    )
    parser.add_argument(
        "--payload-columns",
        type=int,
        default=0,
        help="extra float64 payload columns generated shard-wise",
    )
    parser.add_argument(
        "--force", action="store_true", help="overwrite an existing directory"
    )
    args = parser.parse_args()

    manifest = ingest_scenario(
        args.dataset,
        args.out,
        size=args.size,
        seed=args.seed,
        shard_rows=args.shard_rows,
        payload_columns=args.payload_columns,
        overwrite=args.force,
    )
    backend = MmapBackend(args.out)
    info = backend.describe()
    print(f"ingested {manifest['name']!r}: {manifest['num_records']:,} records")
    for col_name, dtype in info["columns"].items():
        print(f"  {col_name:>16}  {dtype}")
    print(
        f"dense footprint: {info['dense_nbytes'] / 1e6:.1f} MB "
        f"({len(info['columns'])} columns) at {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
