"""The repro-lint engine: project-specific AST invariant checking.

The repo's correctness story rests on conventions that ordinary linters
cannot see — bit-identical determinism (all randomness through
:mod:`repro.stats.rng`, all wall-clock reads through :mod:`repro.clock`),
lock discipline (``@guarded_by`` annotations, see
:mod:`repro.analysis.annotations`), the kernel registry contract, and
``__all__``/docs consistency.  This module is the engine that runs the
project rules in :mod:`repro.analysis.rules` over the tree and reports
:class:`Finding`\\ s; ``scripts/lint_repro.py`` is the CLI and the CI
gate (see docs/STATIC_ANALYSIS.md for the rule catalog).

Suppression
-----------
A finding is suppressed by a comment on the flagged line::

    started = time.monotonic()  # repro-lint: disable=wall-clock

or for a whole file (anywhere in the file, conventionally the top)::

    # repro-lint: file-disable=ambient-rng

Suppressions name rule ids (comma-separated) or ``all``.  Every
suppression should carry a justification in the surrounding comment —
the lint gate reviews them like any other diff.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "Finding",
    "FileContext",
    "Project",
    "Rule",
    "LintEngine",
    "default_rules",
    "lint_tree",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|file-disable)=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suggestion: Optional[str] = None

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        out = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.suggestion is not None:
            out["suggestion"] = self.suggestion
        return out

    def format(self, with_suggestion: bool = False) -> str:
        text = f"{self.location}: [{self.rule}] {self.message}"
        if with_suggestion and self.suggestion:
            text += f"\n    fix: {self.suggestion}"
        return text


class FileContext:
    """One parsed source file, shared by every per-file rule."""

    def __init__(self, path: Path, root: Path):
        self.path = path
        try:
            self.rel = path.relative_to(root).as_posix()
        except ValueError:
            self.rel = path.as_posix()  # scanned path outside the root
        self.source = path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=str(path))
        self.line_suppressions: Dict[int, set] = {}
        self.file_suppressions: set = set()
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            rules = {name.strip() for name in match.group(2).split(",")}
            if match.group(1) == "file-disable":
                self.file_suppressions |= rules
            else:
                self.line_suppressions.setdefault(lineno, set()).update(rules)

    def suppressed(self, finding: Finding) -> bool:
        if {finding.rule, "all"} & self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(finding.line, ())
        return finding.rule in on_line or "all" in on_line

    @property
    def package_parts(self):
        """Path parts relative to the repo root, e.g. ("src","repro","serve")."""
        return Path(self.rel).parts


class Project:
    """The whole checked tree: contexts by relative path, plus the root."""

    def __init__(self, root: Path, contexts: Dict[str, FileContext]):
        self.root = root
        self.contexts = contexts

    def get(self, rel: str) -> Optional[FileContext]:
        return self.contexts.get(rel)

    def read_text(self, rel: str) -> Optional[str]:
        path = self.root / rel
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8")


class Rule:
    """Base class: a named check over files and/or the whole project."""

    name: str = "rule"
    description: str = ""

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule (import-safe order)."""
    from repro.analysis.rules import all_rules

    return all_rules()


class LintEngine:
    """Collect findings from the configured rules over a source tree.

    ``paths`` restricts the scanned files (defaults to ``src/repro``);
    project-wide rules always see every scanned context.  Unparseable
    files surface as ``syntax-error`` findings rather than crashing the
    run, so the gate fails loudly on a broken tree.
    """

    def __init__(
        self,
        root: Path,
        rules: Optional[Sequence[Rule]] = None,
        enabled: Optional[Sequence[str]] = None,
        disabled: Optional[Sequence[str]] = None,
    ):
        self.root = Path(root).resolve()
        selected = list(rules) if rules is not None else default_rules()
        if enabled:
            keep = set(enabled)
            selected = [rule for rule in selected if rule.name in keep]
        if disabled:
            drop = set(disabled)
            selected = [rule for rule in selected if rule.name not in drop]
        self.rules = selected

    def collect_files(self, paths: Optional[Sequence[Path]] = None) -> List[Path]:
        if paths:
            files: List[Path] = []
            for path in paths:
                path = Path(path)
                if not path.is_absolute():
                    path = self.root / path
                if path.is_dir():
                    files.extend(sorted(path.rglob("*.py")))
                else:
                    files.append(path)
            return files
        default = self.root / "src" / "repro"
        return sorted(default.rglob("*.py"))

    def run(self, paths: Optional[Sequence[Path]] = None) -> List[Finding]:
        findings: List[Finding] = []
        contexts: Dict[str, FileContext] = {}
        for path in self.collect_files(paths):
            if "__pycache__" in path.parts:
                continue
            try:
                ctx = FileContext(path, self.root)
            except SyntaxError as exc:
                findings.append(
                    Finding(
                        rule="syntax-error",
                        path=path.relative_to(self.root).as_posix(),
                        line=exc.lineno or 1,
                        col=exc.offset or 0,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
                continue
            contexts[ctx.rel] = ctx
        project = Project(self.root, contexts)
        for rule in self.rules:
            for ctx in contexts.values():
                for finding in rule.check_file(ctx):
                    if not ctx.suppressed(finding):
                        findings.append(finding)
            for finding in rule.check_project(project):
                ctx = contexts.get(finding.path)
                if ctx is None or not ctx.suppressed(finding):
                    findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings


def lint_tree(
    root: Path,
    paths: Optional[Sequence[Path]] = None,
    enabled: Optional[Sequence[str]] = None,
    disabled: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """One-call entry point: findings for the tree under ``root``."""
    return LintEngine(root, enabled=enabled, disabled=disabled).run(paths)


def findings_to_json(findings: Sequence[Finding]) -> str:
    """The machine-readable report (one object, stable key order)."""
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in findings],
            "count": len(findings),
        },
        indent=2,
        sort_keys=False,
    )
