"""Machine-checkable concurrency annotations.

These are runtime no-ops (beyond attaching metadata) whose payload is the
*static* contract they declare: the ``lock-discipline`` rule in
:mod:`repro.analysis.rules.locks` reads them from the AST and flags any
mutation of guarded state that is not inside a ``with self.<lock>`` block.

Usage::

    @guarded_by("_lock", "_store", "_hits", "_misses")
    class SharedOracleCache:
        def __init__(self):
            self._lock = threading.RLock()
            self._store = {}          # only mutated under self._lock
            ...

Several decorators stack when a class holds more than one lock; the
merged mapping is attached as ``__guarded_fields__`` (lock attribute name
-> tuple of guarded field names) so the contract is also introspectable
at runtime (the lockwatch fixture uses it to label instrumented locks).

Conventions honoured by the checker:

* ``__init__`` / ``__new__`` / ``__getstate__`` / ``__setstate__`` /
  ``__del__`` may mutate guarded fields freely — construction and
  (un)pickling happen before the object is shared;
* a method whose name ends in ``_locked`` asserts that *its caller*
  holds the lock (the repo-wide naming convention), so its direct
  mutations are not flagged;
* anything else needs an explicit suppression comment
  (``# repro-lint: disable=lock-discipline``) with a justification.

For module-level state guarded by a module-level lock, declare::

    guard_module_globals("_POOLS_LOCK", "_POOLS")

at module scope; the checker applies the same discipline to assignments
and mutations of those global names inside the module's functions.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["guarded_by", "guard_module_globals"]

#: Attribute attached to annotated classes: lock name -> guarded fields.
GUARDED_ATTR = "__guarded_fields__"


def guarded_by(lock: str, *fields: str):
    """Class decorator declaring that ``fields`` are only mutated under
    ``self.<lock>``.

    ``lock`` and every field must be attribute names (strings); the
    checker reads them straight from the decorator call in the AST, so
    they must be string literals at the call site.
    """
    if not isinstance(lock, str) or not lock:
        raise TypeError(f"lock must be a non-empty attribute name, got {lock!r}")
    if not fields:
        raise TypeError("guarded_by needs at least one guarded field name")
    for name in fields:
        if not isinstance(name, str) or not name:
            raise TypeError(f"guarded field names must be strings, got {name!r}")

    def decorate(cls):
        existing: Dict[str, Tuple[str, ...]] = dict(getattr(cls, GUARDED_ATTR, {}))
        merged = tuple(dict.fromkeys(existing.get(lock, ()) + fields))
        existing[lock] = merged
        setattr(cls, GUARDED_ATTR, existing)
        return cls

    return decorate


def guard_module_globals(lock: str, *names: str) -> None:
    """Declare module-level globals guarded by a module-level lock.

    A no-op at runtime; the ``lock-discipline`` rule reads the call from
    the module AST and checks that the named globals are only assigned or
    mutated inside ``with <lock>:`` blocks (``_locked``-suffixed helper
    functions excepted, as for methods).
    """
    if not isinstance(lock, str) or not lock:
        raise TypeError(f"lock must be a non-empty global name, got {lock!r}")
    if not names:
        raise TypeError("guard_module_globals needs at least one global name")
    for name in names:
        if not isinstance(name, str) or not name:
            raise TypeError(f"guarded global names must be strings, got {name!r}")
