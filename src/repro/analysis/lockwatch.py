"""Runtime lock-order detection: the dynamic half of the thread-safety
contract.

The static ``lock-discipline`` rule proves that guarded state is only
touched under its lock; it cannot prove that locks are *ordered* — that
no two code paths ever acquire the same pair of locks in opposite order,
the classic recipe for a deadlock that only fires under production
interleavings.  :class:`LockWatcher` closes that gap dynamically:

* every instrumented lock acquisition is recorded against the set of
  locks the acquiring thread already holds, building a process-wide
  **acquisition-order graph** whose nodes are lock *sites* (one node per
  ``module:Class.__init__`` creation site, so all instances of
  ``SharedOracleCache._lock`` aggregate into one node);
* before the acquisition proceeds, the watcher checks whether the new
  ``held -> wanted`` edges close a cycle in that graph.  A cycle means
  two paths disagree about lock order — a deadlock waiting for the right
  interleaving — and the watcher either raises
  :class:`LockOrderViolation` at the exact acquisition site
  (``raise_on_cycle=True``, the test default) or records it for a
  post-run :meth:`~LockWatcher.assert_clean`.

Instrumentation is either explicit (:meth:`LockWatcher.wrap` /
:meth:`LockWatcher.instrument` an existing lock attribute) or blanket:
:meth:`LockWatcher.patch_threading` swaps ``threading.Lock`` /
``threading.RLock`` for watched constructors inside a ``with`` block, so
every lock the code under test creates feeds the graph — this is what the
``lockwatch`` pytest fixture uses to run the real serve / remote / chaos
suites under observation (enable it suite-wide with ``REPRO_LOCKWATCH=1``;
see docs/STATIC_ANALYSIS.md).

The watcher never changes blocking semantics: acquisitions and releases
delegate to the real lock, reentrant acquisition of an ``RLock`` adds no
edges, and ``threading.Condition`` keeps working (the wrapper implements
the ``_release_save`` / ``_acquire_restore`` / ``_is_owned`` protocol).
"""

from __future__ import annotations

import sys
import threading
import _thread
from contextlib import contextmanager
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "LockOrderViolation",
    "WatchedLock",
    "LockWatcher",
    "active_watcher",
]

# The currently threading-patched watcher (at most one at a time).
_ACTIVE: Optional["LockWatcher"] = None


def active_watcher() -> Optional["LockWatcher"]:
    """The watcher currently patched into ``threading``, if any."""
    return _ACTIVE


class LockOrderViolation(RuntimeError):
    """Two code paths acquire the same locks in incompatible orders.

    ``cycle`` is the closed path of lock-site names, e.g.
    ``("a._lock", "b._lock", "a._lock")``: each consecutive pair was
    observed nested in that order somewhere in the process.
    """

    def __init__(self, cycle: Tuple[str, ...], message: str):
        super().__init__(message)
        self.cycle = cycle


class _Held:
    """One entry in a thread's held-lock stack."""

    __slots__ = ("lock", "count")

    def __init__(self, lock: "WatchedLock", count: int = 1):
        self.lock = lock
        self.count = count


class WatchedLock:
    """A drop-in ``Lock``/``RLock`` proxy that reports to a watcher."""

    def __init__(self, inner, name: str, watcher: "LockWatcher",
                 reentrant: bool):
        self._inner = inner
        self.name = name
        self._watcher = watcher
        self._reentrant = reentrant

    # -- Lock protocol --------------------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        held = self._watcher._held_stack()
        entry = self._find(held)
        if entry is not None:
            # Already held by this thread: an RLock reacquisition, or a
            # non-blocking ownership probe on a plain lock (as
            # threading.Condition's _is_owned fallback does).  Neither
            # observes a new ordering, so no edges.
            ok = self._inner.acquire(blocking, timeout)
            if ok:
                entry.count += 1
            return ok
        self._watcher._observe(self, held)
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            held.append(_Held(self))
        return ok

    def release(self) -> None:
        held = self._watcher._held_stack()
        entry = self._find(held)
        self._inner.release()
        if entry is not None:
            entry.count -= 1
            if entry.count <= 0:
                held.remove(entry)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False

    def _find(self, held: List[_Held]) -> Optional[_Held]:
        for entry in reversed(held):
            if entry.lock is self:
                return entry
        return None

    # -- threading.Condition protocol ------------------------------------------------
    # Condition uses these (when present) to fully release an RLock around
    # a wait; the held-stack must drop and restore the entry with them.
    def _release_save(self):
        held = self._watcher._held_stack()
        entry = self._find(held)
        count = entry.count if entry is not None else 1
        if entry is not None:
            held.remove(entry)
        if hasattr(self._inner, "_release_save"):
            state = self._inner._release_save()
        else:
            self._inner.release()
            state = None
        return (state, count)

    def _acquire_restore(self, saved):
        state, count = saved
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        self._watcher._held_stack().append(_Held(self, count))

    def _is_owned(self) -> bool:
        return self._find(self._watcher._held_stack()) is not None

    # -- Pickling: watched locks travel like locks (they do not) ----------------------
    def __getstate__(self):  # pragma: no cover - locks are dropped upstream
        raise TypeError("cannot pickle a WatchedLock (drop it in __getstate__)")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WatchedLock({self.name!r}, reentrant={self._reentrant})"


class LockWatcher:
    """Records the process-wide lock acquisition-order graph.

    ``raise_on_cycle=True`` (the default) raises
    :class:`LockOrderViolation` at the acquisition that would close a
    cycle — the stack trace points at one of the two conflicting sites.
    With ``raise_on_cycle=False`` violations accumulate in
    :meth:`violations` for a post-run :meth:`assert_clean`.
    """

    def __init__(self, raise_on_cycle: bool = True):
        self.raise_on_cycle = raise_on_cycle
        # name -> set of names acquired while `name` was held.
        self._edges: Dict[str, Set[str]] = {}
        self._violations: List[LockOrderViolation] = []
        self._local = threading.local()
        # Guards the graph itself; a raw lock so the watcher never watches
        # (or deadlocks on) its own bookkeeping.
        self._graph_lock = _thread.allocate_lock()

    # -- Instrumentation -------------------------------------------------------------
    def wrap(self, lock, name: str) -> WatchedLock:
        """Wrap an existing lock object under the given site name."""
        if isinstance(lock, WatchedLock):
            return lock
        reentrant = _is_rlock(lock)
        return WatchedLock(lock, name, self, reentrant)

    def instrument(self, obj, attr: str, name: Optional[str] = None) -> WatchedLock:
        """Replace ``obj.<attr>`` with a watched wrapper in place."""
        lock = getattr(obj, attr)
        label = name or f"{type(obj).__name__}.{attr}"
        watched = self.wrap(lock, label)
        setattr(obj, attr, watched)
        return watched

    @contextmanager
    def patch_threading(self):
        """Swap ``threading.Lock``/``RLock`` for watched constructors.

        Every lock created inside the block is wrapped, with its site name
        derived from the creating frame (``module:qualname``), so all
        instances created at one code site share a graph node.  At most
        one watcher may be patched at a time.
        """
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("another LockWatcher is already patched into threading")
        real_lock, real_rlock = threading.Lock, threading.RLock
        watcher = self

        def make_lock():
            return WatchedLock(real_lock(), _creation_site(), watcher, False)

        def make_rlock():
            return WatchedLock(real_rlock(), _creation_site(), watcher, True)

        threading.Lock = make_lock
        threading.RLock = make_rlock
        _ACTIVE = self
        try:
            yield self
        finally:
            threading.Lock = real_lock
            threading.RLock = real_rlock
            _ACTIVE = None

    # -- Graph recording (called from WatchedLock) -----------------------------------
    def _held_stack(self) -> List[_Held]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _observe(self, lock: WatchedLock, held: List[_Held]) -> None:
        if not held:
            with self._graph_lock:
                self._edges.setdefault(lock.name, set())
            return
        wanted = lock.name
        with self._graph_lock:
            self._edges.setdefault(wanted, set())
            cycle: Optional[Tuple[str, ...]] = None
            for entry in held:
                holder = entry.lock.name
                if holder == wanted:
                    # Distinct instances of the same lock site nested
                    # (e.g. two ThreadPoolExecutors' shutdown locks, two
                    # cache instances).  Order *within* a site cannot be
                    # asserted without per-instance identity, so no edge
                    # — cross-site inversions are still caught.
                    continue
                edges = self._edges.setdefault(holder, set())
                if wanted not in edges:
                    path = self._path(wanted, holder)
                    if path is not None:
                        cycle = tuple(path) + (wanted,)
                        break
                    edges.add(wanted)
            if cycle is None:
                return
            violation = LockOrderViolation(
                cycle,
                "lock-order cycle: " + " -> ".join(cycle)
                + f" (thread {threading.current_thread().name!r} holds "
                + ", ".join(e.lock.name for e in held)
                + f" and wants {wanted})",
            )
            self._violations.append(violation)
        if self.raise_on_cycle:
            raise violation

    def _path(self, start: str, goal: str) -> Optional[List[str]]:
        """A path start -> ... -> goal in the edge graph, if one exists."""
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    # -- Reporting -------------------------------------------------------------------
    def edges(self) -> Dict[str, Tuple[str, ...]]:
        """A snapshot of the acquisition-order graph."""
        with self._graph_lock:
            return {name: tuple(sorted(to)) for name, to in self._edges.items()}

    def violations(self) -> List[LockOrderViolation]:
        with self._graph_lock:
            return list(self._violations)

    def num_sites(self) -> int:
        with self._graph_lock:
            return len(self._edges)

    def assert_clean(self) -> None:
        """Raise the first recorded violation, if any."""
        found = self.violations()
        if found:
            raise found[0]

    def reset(self) -> None:
        with self._graph_lock:
            self._edges.clear()
            self._violations.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._graph_lock:
            n_edges = sum(len(v) for v in self._edges.values())
            return (
                f"LockWatcher(sites={len(self._edges)}, edges={n_edges}, "
                f"violations={len(self._violations)})"
            )


def _is_rlock(lock) -> bool:
    return "RLock" in type(lock).__name__


def _creation_site() -> str:
    """Name the code site creating a lock: ``module:qualname``."""
    frame = sys._getframe(1)
    this_file = __file__
    while frame is not None:
        code = frame.f_code
        if code.co_filename != this_file and "threading" not in code.co_filename:
            qualname = getattr(code, "co_qualname", code.co_name)
            module = frame.f_globals.get("__name__", "?")
            return f"{module}:{qualname}"
        frame = frame.f_back
    return "<unknown>"  # pragma: no cover - stack always has a caller
