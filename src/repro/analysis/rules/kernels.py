"""The ``kernel-contract`` rule: the registry's bit-identity invariants.

The kernel layer's contract (see ``repro/kernels/registry.py``) has three
statically checkable clauses:

1. every kernel registered in ``native.py`` has a NumPy reference in
   ``reference.py`` under the same name — the reference defines the
   bitwise contract, so a native-only kernel is untestable;
2. a native kernel's signature (parameter names, order, arity) matches
   its reference exactly — the dispatcher swaps implementations
   attribute-style, so a drifted signature breaks call sites only on the
   numba leg;
3. no kernel in ``FLOAT_REDUCTION_KERNELS`` ever gains a non-reference
   registration (a sequential native reduction cannot reproduce NumPy's
   pairwise summation bit-for-bit), and every name in that set actually
   exists in the reference — a stale entry means the fence guards
   nothing.

This is a project rule: it reads the three kernel modules from the parsed
tree (``registry.py`` for the ``FLOAT_REDUCTION_KERNELS`` literal,
``reference.py`` / ``native.py`` for ``@register_kernel`` functions).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.linter import Finding, Project, Rule

__all__ = ["KernelContractRule"]

_REGISTRY = "src/repro/kernels/registry.py"
_REFERENCE = "src/repro/kernels/reference.py"
_NATIVE = "src/repro/kernels/native.py"


def _registered(tree: ast.Module) -> Dict[str, Tuple[ast.FunctionDef, Tuple[str, ...]]]:
    """kernel name -> (function node, parameter names) for one module."""
    out: Dict[str, Tuple[ast.FunctionDef, Tuple[str, ...]]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        for deco in node.decorator_list:
            if not isinstance(deco, ast.Call):
                continue
            func = deco.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name != "register_kernel" or not deco.args:
                continue
            first = deco.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                args = node.args
                params = tuple(
                    a.arg
                    for a in (args.posonlyargs + args.args + args.kwonlyargs)
                )
                out[first.value] = (node, params)
    return out


def _reduction_set(tree: ast.Module) -> Optional[Tuple[ast.AST, Tuple[str, ...]]]:
    """The FLOAT_REDUCTION_KERNELS literal from registry.py, if present."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "FLOAT_REDUCTION_KERNELS"
            for t in node.targets
        ):
            continue
        names: List[str] = []
        for literal in ast.walk(node.value):
            if isinstance(literal, ast.Constant) and isinstance(literal.value, str):
                names.append(literal.value)
        return node, tuple(names)
    return None


class KernelContractRule(Rule):
    name = "kernel-contract"
    description = (
        "native kernels mirror the NumPy reference exactly; float-reduction "
        "kernels never gain a native override"
    )
    ids = ("kernel-contract",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []

        def report(path: str, node: Optional[ast.AST], message: str,
                   suggestion: Optional[str] = None):
            findings.append(
                Finding(
                    rule="kernel-contract",
                    path=path,
                    line=getattr(node, "lineno", 1) if node is not None else 1,
                    col=getattr(node, "col_offset", 0) if node is not None else 0,
                    message=message,
                    suggestion=suggestion,
                )
            )

        registry_ctx = project.get(_REGISTRY)
        reference_ctx = project.get(_REFERENCE)
        native_ctx = project.get(_NATIVE)
        if reference_ctx is None or registry_ctx is None:
            # Scanning a partial tree (single file / tests): nothing to check.
            return findings

        reference = _registered(reference_ctx.tree)
        native = _registered(native_ctx.tree) if native_ctx is not None else {}

        for name, (node, params) in sorted(native.items()):
            ref = reference.get(name)
            if ref is None:
                report(
                    _NATIVE,
                    node,
                    f"native kernel {name!r} has no NumPy reference in "
                    "kernels/reference.py; the reference defines the bitwise "
                    "contract",
                    "register a reference implementation first (same name, "
                    "same signature)",
                )
                continue
            ref_params = ref[1]
            if params != ref_params:
                report(
                    _NATIVE,
                    node,
                    f"native kernel {name!r} signature {params!r} differs "
                    f"from the reference {ref_params!r}",
                    "make the parameter names and order identical to the "
                    "reference",
                )

        reduction = _reduction_set(registry_ctx.tree)
        if reduction is None:
            report(
                _REGISTRY,
                None,
                "registry.py no longer defines the FLOAT_REDUCTION_KERNELS "
                "literal the contract is checked against",
                "restore the frozenset of float-reduction kernel names",
            )
            return findings
        reduction_node, reduction_names = reduction

        for name in reduction_names:
            if name not in reference:
                report(
                    _REGISTRY,
                    reduction_node,
                    f"FLOAT_REDUCTION_KERNELS entry {name!r} is not a "
                    "registered reference kernel; a stale entry guards nothing",
                    "remove the entry or register the kernel in reference.py",
                )
            if name in native:
                report(
                    _NATIVE,
                    native[name][0],
                    f"float-reduction kernel {name!r} must not gain a native "
                    "override (sequential reductions cannot match pairwise "
                    "summation bit-for-bit)",
                    "delete the native registration; the reference runs on "
                    "every backend",
                )

        return findings
