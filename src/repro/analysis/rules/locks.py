"""The ``lock-discipline`` rule: guarded state is only mutated under its
lock.

Classes declare their contract with :func:`repro.analysis.annotations.guarded_by`
(string literals, read straight from the decorator call in the AST);
modules declare theirs with ``guard_module_globals``.  This rule walks
every method / function and flags any mutation of a guarded attribute (or
module global) that is not lexically inside a ``with self.<lock>:`` (resp.
``with <LOCK>:``) block.

"Mutation" covers:

* assignment / augmented assignment / annotated assignment / ``del`` to
  ``self.<field>`` (or the bare global name);
* assignment or deletion through a subscript of the field
  (``self._store[k] = v``, ``del self._store[k]``);
* calls to well-known mutator methods on the field
  (``self._queue.append(...)``, ``self._cache.pop(...)``, ...).

Exemptions (see :mod:`repro.analysis.annotations` for the rationale):
``__init__`` / ``__new__`` / ``__getstate__`` / ``__setstate__`` /
``__del__``, and any function whose name ends in ``_locked`` (the
repo-wide "caller holds the lock" convention).  Reads are deliberately
not checked — several hot paths do racy-but-benign unlocked reads with a
locked re-check, and flagging them would bury the real signal.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.linter import FileContext, Finding, Rule

__all__ = ["LockDisciplineRule", "EXEMPT_METHODS", "MUTATOR_METHODS"]

EXEMPT_METHODS = {"__init__", "__new__", "__getstate__", "__setstate__", "__del__"}

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = {
    "append",
    "appendleft",
    "extend",
    "extendleft",
    "insert",
    "add",
    "remove",
    "discard",
    "pop",
    "popleft",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "move_to_end",
    "rotate",
    "sort",
    "reverse",
}


def _decorator_guards(cls: ast.ClassDef) -> Dict[str, Tuple[str, ...]]:
    """lock name -> guarded fields, from stacked @guarded_by decorators."""
    guards: Dict[str, Tuple[str, ...]] = {}
    for deco in cls.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        func = deco.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "guarded_by" or not deco.args:
            continue
        literals = [
            arg.value
            for arg in deco.args
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
        ]
        if len(literals) != len(deco.args) or len(literals) < 2:
            continue  # non-literal args: the runtime decorator validates
        lock, fields = literals[0], tuple(literals[1:])
        guards[lock] = tuple(dict.fromkeys(guards.get(lock, ()) + fields))
    return guards


def _module_guards(tree: ast.Module) -> Dict[str, Tuple[str, ...]]:
    """lock global -> guarded globals, from guard_module_globals(...) calls."""
    guards: Dict[str, Tuple[str, ...]] = {}
    for node in tree.body:
        if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
            continue
        call = node.value
        func = call.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "guard_module_globals" or not call.args:
            continue
        literals = [
            arg.value
            for arg in call.args
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
        ]
        if len(literals) != len(call.args) or len(literals) < 2:
            continue
        lock, names = literals[0], tuple(literals[1:])
        guards[lock] = tuple(dict.fromkeys(guards.get(lock, ()) + names))
    return guards


def _self_attr(node: ast.AST) -> Optional[str]:
    """The attribute name if ``node`` is ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _FunctionChecker(ast.NodeVisitor):
    """Walk one function body tracking ``with``-held locks.

    ``field_to_lock`` maps each guarded name to its lock.  ``is_self``
    selects attribute mode (``self.<field>``) vs module-global mode (bare
    names).  Nested function/class definitions get a fresh walk only in
    module-global mode (closures still touch the globals); in attribute
    mode nested defs are skipped — they rebind ``self`` semantics we
    cannot track.
    """

    def __init__(
        self,
        field_to_lock: Dict[str, str],
        is_self: bool,
        report,
    ):
        self.field_to_lock = field_to_lock
        self.is_self = is_self
        self.report = report
        self.held: List[str] = []

    # -- lock tracking ---------------------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            lock = self._lock_name(item.context_expr)
            if lock is not None:
                acquired.append(lock)
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        for item in node.items:
            self.visit(item.context_expr)
        del self.held[len(self.held) - len(acquired):]

    visit_AsyncWith = visit_With

    def _lock_name(self, expr: ast.AST) -> Optional[str]:
        if self.is_self:
            return _self_attr(expr)
        if isinstance(expr, ast.Name):
            return expr.id
        return None

    def _guarded(self, name: Optional[str]) -> Optional[str]:
        """The lock for ``name`` if it is guarded and not currently held."""
        if name is None:
            return None
        lock = self.field_to_lock.get(name)
        if lock is None or lock in self.held:
            return None
        return lock

    def _target_name(self, node: ast.AST) -> Optional[str]:
        """The guarded base name of an assignment/delete/mutation target."""
        # Peel subscripts/attribute chains down to the rooted access.
        while isinstance(node, ast.Subscript):
            node = node.value
        if self.is_self:
            return _self_attr(node)
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _flag(self, node: ast.AST, name: str, lock: str, verb: str) -> None:
        subject = f"self.{name}" if self.is_self else name
        holder = f"self.{lock}" if self.is_self else lock
        self.report(
            node,
            f"{verb} of guarded {'attribute' if self.is_self else 'global'} "
            f"`{subject}` outside `with {holder}`",
            f"wrap the mutation in `with {holder}:`, or rename the enclosing "
            "function with a `_locked` suffix if the caller holds the lock",
        )

    # -- mutation sites ---------------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target)
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target)

    def _check_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element)
            return
        if isinstance(target, ast.Starred):
            self._check_target(target.value)
            return
        name = self._target_name(target)
        lock = self._guarded(name)
        if lock is not None:
            self._flag(target, name, lock, "mutation")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            name = self._target_name(func.value)
            lock = self._guarded(name)
            if lock is not None:
                self._flag(node, name, lock, f"`.{func.attr}()` mutation")
        self.generic_visit(node)

    # -- nested definitions -----------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self.is_self:
            return  # nested def: `self` tracking does not transfer
        if node.name.endswith("_locked") or node.name in EXEMPT_METHODS:
            return
        # Closures share module globals; check the body with a fresh
        # held-stack (the closure may run after the with-block exits).
        nested = _FunctionChecker(self.field_to_lock, self.is_self, self.report)
        for stmt in node.body:
            nested.visit(stmt)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        if self.is_self:
            return
        nested = _FunctionChecker(self.field_to_lock, self.is_self, self.report)
        nested.visit(node.body)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return  # nested class bodies have their own scoping


class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "@guarded_by / guard_module_globals state must only be mutated "
        "while holding the declared lock"
    )
    ids = ("lock-discipline",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []

        def reporter(node: ast.AST, message: str, suggestion: str):
            findings.append(
                Finding(
                    rule="lock-discipline",
                    path=ctx.rel,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    message=message,
                    suggestion=suggestion,
                )
            )

        # Class-level contracts.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            guards = _decorator_guards(node)
            if not guards:
                continue
            field_to_lock = {
                field: lock for lock, fields in guards.items() for field in fields
            }
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name in EXEMPT_METHODS or item.name.endswith("_locked"):
                    continue
                checker = _FunctionChecker(field_to_lock, True, reporter)
                for stmt in item.body:
                    checker.visit(stmt)

        # Module-level contracts.  Methods are checked too: a classmethod
        # mutating a module-global cache is just as racy as a function.
        module_guards = _module_guards(ctx.tree)
        if module_guards:
            global_to_lock = {
                name: lock for lock, names in module_guards.items() for name in names
            }
            functions = [
                item for item in ctx.tree.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            for item in ctx.tree.body:
                if isinstance(item, ast.ClassDef):
                    functions.extend(
                        member for member in item.body
                        if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                    )
            for item in functions:
                if item.name in EXEMPT_METHODS or item.name.endswith("_locked"):
                    continue
                checker = _FunctionChecker(global_to_lock, False, reporter)
                for stmt in item.body:
                    checker.visit(stmt)

        return findings
