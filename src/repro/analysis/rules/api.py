"""The ``api-hygiene`` rule: ``__all__`` is real and documented.

Two clauses:

1. **per module** — every name in a module's ``__all__`` is actually
   bound at module level (a def, class, assignment or import), and no
   name appears twice.  A dangling ``__all__`` entry turns
   ``from repro.x import *`` into an ``AttributeError`` at a customer
   call site, which no test that imports names explicitly will catch;
2. **for the package root** — every public name exported by
   ``repro/__init__.py`` is mentioned in ``docs/API.md`` (word-boundary
   match), so the façade cannot silently outgrow its documentation.
   ``__version__`` is exempt.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional, Set

from repro.analysis.linter import FileContext, Finding, Project, Rule

__all__ = ["ApiHygieneRule"]

_ROOT_INIT = "src/repro/__init__.py"
_API_DOC = "docs/API.md"
_DOC_EXEMPT = {"__version__"}


def _all_entries(tree: ast.Module):
    """(assign node, list of (name, entry node)) for a module's __all__."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            continue
        entries = []
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    entries.append((element.value, element))
        yield node, entries


def _module_bindings(tree: ast.Module) -> Set[str]:
    """Names bound at module level (defs, classes, assigns, imports)."""
    bound: Set[str] = set()

    def add_target(target: ast.AST):
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                add_target(element)
        elif isinstance(target, ast.Starred):
            add_target(target.value)

    def scan(body):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    add_target(target)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                add_target(node.target)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        continue  # star imports defeat static binding checks
                    bound.add(alias.asname or alias.name)
            elif isinstance(node, (ast.If, ast.Try)):
                scan(node.body)
                scan(getattr(node, "orelse", []))
                for handler in getattr(node, "handlers", []):
                    scan(handler.body)
                scan(getattr(node, "finalbody", []))
            elif isinstance(node, (ast.With, ast.For, ast.While)):
                scan(node.body)
                scan(getattr(node, "orelse", []))

    scan(tree.body)
    return bound


class ApiHygieneRule(Rule):
    name = "api-hygiene"
    description = (
        "__all__ entries are bound and unique; the package façade's exports "
        "are documented in docs/API.md"
    )
    ids = ("api-hygiene",)

    def _finding(self, path: str, node: Optional[ast.AST], message: str,
                 suggestion: Optional[str] = None) -> Finding:
        return Finding(
            rule="api-hygiene",
            path=path,
            line=getattr(node, "lineno", 1) if node is not None else 1,
            col=getattr(node, "col_offset", 0) if node is not None else 0,
            message=message,
            suggestion=suggestion,
        )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        has_star_import = any(
            isinstance(node, ast.ImportFrom)
            and any(alias.name == "*" for alias in node.names)
            for node in ast.walk(ctx.tree)
        )
        bound = _module_bindings(ctx.tree)
        for _assign, entries in _all_entries(ctx.tree):
            seen: Set[str] = set()
            for name, node in entries:
                if name in seen:
                    findings.append(
                        self._finding(
                            ctx.rel,
                            node,
                            f"duplicate __all__ entry {name!r}",
                            "remove the repeated entry",
                        )
                    )
                seen.add(name)
                if name not in bound and not has_star_import:
                    findings.append(
                        self._finding(
                            ctx.rel,
                            node,
                            f"__all__ names {name!r} but the module never binds "
                            "it; star-imports of this module will fail",
                            "bind (or import) the name at module level, or drop "
                            "it from __all__",
                        )
                    )
        return findings

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        root = project.get(_ROOT_INIT)
        if root is None:
            return findings
        doc = project.read_text(_API_DOC)
        if doc is None:
            findings.append(
                self._finding(
                    _ROOT_INIT,
                    None,
                    f"{_API_DOC} is missing, so the façade exports cannot be "
                    "checked against the documentation",
                )
            )
            return findings
        for _assign, entries in _all_entries(root.tree):
            for name, node in entries:
                if name in _DOC_EXEMPT:
                    continue
                if not re.search(rf"\b{re.escape(name)}\b", doc):
                    findings.append(
                        self._finding(
                            _ROOT_INIT,
                            node,
                            f"public export {name!r} is not mentioned anywhere "
                            f"in {_API_DOC}",
                            f"document {name!r} in {_API_DOC} (or stop "
                            "exporting it)",
                        )
                    )
        return findings
