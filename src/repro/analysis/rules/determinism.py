"""Determinism rules: all randomness through ``repro.stats.rng``, all
wall-clock reads through ``repro.clock``, no hash-order-sensitive
iteration.

The fingerprint harness (``tests/harness.py``) pins that every sampler,
backend, batch size, worker count and serving interleaving produces
bit-identical results.  That guarantee dies the moment an execution-path
module draws from an ambient RNG, reads the wall clock, or iterates a
``set`` (whose order depends on ``PYTHONHASHSEED`` for str keys).  These
rules mechanically enforce the conventions in the packages on the
execution path: ``core``, ``engine``, ``kernels``, ``oracle``, ``serve``,
plus the top-level ``repro`` modules.

Three rule ids (suppressible independently):

* ``ambient-rng`` — ``np.random.*`` (except type references),
  ``random`` module imports, and argless ``RandomState()`` (which seeds
  from OS entropy);
* ``wall-clock`` — references to ``time.time`` / ``monotonic`` /
  ``perf_counter`` / ``sleep`` (and friends) or naive ``datetime.now``
  anywhere outside the one allowlisted seam module, ``src/repro/clock.py``;
* ``unordered-iteration`` — iterating (or materializing into an ordered
  container) a ``set`` expression directly; wrap in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from repro.analysis.linter import FileContext, Finding, Rule

__all__ = ["CHECKED_PACKAGES", "WALL_CLOCK_ALLOWLIST", "DeterminismRule"]

#: Sub-packages of ``src/repro`` on the deterministic execution path.
CHECKED_PACKAGES = ("core", "engine", "kernels", "oracle", "serve")

#: The single module allowed to read the wall clock (the Clock seam).
WALL_CLOCK_ALLOWLIST = ("src/repro/clock.py",)

_TIME_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "sleep",
}
_DATETIME_ATTRS = {"now", "utcnow", "today"}
# np.random attributes that are type/infrastructure references, not draws.
_NP_RANDOM_TYPES = {"SeedSequence", "Generator", "BitGenerator"}


def _in_scope(ctx: FileContext) -> bool:
    parts = ctx.package_parts
    if len(parts) < 3 or parts[0] != "src" or parts[1] != "repro":
        return False
    if len(parts) == 3:  # top-level repro module (repro/__init__.py, clock.py)
        return True
    return parts[2] in CHECKED_PACKAGES


class _Aliases:
    """Import aliases relevant to the checks, collected per file."""

    def __init__(self, tree: ast.Module):
        self.numpy: Set[str] = set()
        self.np_random: Set[str] = set()
        self.time_mod: Set[str] = set()
        self.datetime_mod: Set[str] = set()
        self.datetime_types: Set[str] = set()
        # Directly imported flagged callables: local name -> qualified name.
        self.time_names: Dict[str, str] = {}
        self.random_imports: List[ast.stmt] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name in ("numpy", "numpy.random"):
                        if alias.name == "numpy.random" and alias.asname:
                            self.np_random.add(local)
                        else:
                            self.numpy.add(local)
                    elif alias.name == "time":
                        self.time_mod.add(local)
                    elif alias.name == "datetime":
                        self.datetime_mod.add(local)
                    elif alias.name == "random" or alias.name.startswith("random."):
                        self.random_imports.append(node)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    self.random_imports.append(node)
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.np_random.add(alias.asname or "random")
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_ATTRS:
                            local = alias.asname or alias.name
                            self.time_names[local] = f"time.{alias.name}"
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            self.datetime_types.add(alias.asname or alias.name)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "ambient RNG, wall-clock reads and hash-order iteration on the "
        "deterministic execution path"
    )
    # The ids actually attached to findings (one rule class, three ids,
    # so suppressions can target exactly one hazard).
    ids = ("ambient-rng", "wall-clock", "unordered-iteration")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not _in_scope(ctx):
            return []
        aliases = _Aliases(ctx.tree)
        findings: List[Finding] = []
        wall_clock_ok = ctx.rel in WALL_CLOCK_ALLOWLIST

        def report(rule: str, node: ast.AST, message: str, suggestion: str):
            findings.append(
                Finding(
                    rule=rule,
                    path=ctx.rel,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    message=message,
                    suggestion=suggestion,
                )
            )

        for node in aliases.random_imports:
            report(
                "ambient-rng",
                node,
                "import of the ambient `random` module; all randomness must "
                "flow through repro.stats.rng",
                "draw from a repro.stats.rng.RandomState threaded from the caller",
            )

        for node in ast.walk(ctx.tree):
            # -- ambient numpy RNG ------------------------------------------------
            if isinstance(node, ast.Attribute):
                value = node.value
                # np.random.<attr>
                if (
                    isinstance(value, ast.Attribute)
                    and value.attr == "random"
                    and isinstance(value.value, ast.Name)
                    and value.value.id in aliases.numpy
                ) or (
                    isinstance(value, ast.Name) and value.id in aliases.np_random
                ):
                    if node.attr not in _NP_RANDOM_TYPES:
                        report(
                            "ambient-rng",
                            node,
                            f"reference to ambient numpy RNG `np.random.{node.attr}`",
                            "thread a repro.stats.rng.RandomState through instead "
                            "of touching the global numpy generator",
                        )
                # time.<attr> on the time module
                if (
                    isinstance(value, ast.Name)
                    and value.id in aliases.time_mod
                    and node.attr in _TIME_ATTRS
                    and not wall_clock_ok
                ):
                    report(
                        "wall-clock",
                        node,
                        f"wall-clock reference `time.{node.attr}` outside the "
                        "repro.clock seam",
                        "accept an injectable clock/sleep defaulting to "
                        "repro.clock.monotonic / repro.clock.sleep",
                    )
                # datetime.datetime.now / datetime.now / date.today ...
                if node.attr in _DATETIME_ATTRS and not wall_clock_ok:
                    value_name = None
                    if isinstance(value, ast.Name):
                        value_name = value.id
                    elif isinstance(value, ast.Attribute) and isinstance(
                        value.value, ast.Name
                    ):
                        if value.value.id in aliases.datetime_mod:
                            value_name = value.attr
                    if value_name in aliases.datetime_types or (
                        isinstance(value, ast.Attribute)
                        and isinstance(value.value, ast.Name)
                        and value.value.id in aliases.datetime_mod
                    ):
                        report(
                            "wall-clock",
                            node,
                            f"wall-clock reference `datetime.{node.attr}` outside "
                            "the repro.clock seam",
                            "inject a Clock (repro.clock) instead of reading "
                            "calendar time",
                        )
            # from time import monotonic → bare-name references
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                qual = aliases.time_names.get(node.id)
                if qual is not None and not wall_clock_ok:
                    report(
                        "wall-clock",
                        node,
                        f"wall-clock reference `{qual}` outside the repro.clock seam",
                        "accept an injectable clock/sleep defaulting to "
                        "repro.clock.monotonic / repro.clock.sleep",
                    )
            # -- argless RandomState() -------------------------------------------
            if isinstance(node, ast.Call) and not node.args and not node.keywords:
                func = node.func
                callee = None
                if isinstance(func, ast.Name):
                    callee = func.id
                elif isinstance(func, ast.Attribute):
                    callee = func.attr
                if callee == "RandomState":
                    report(
                        "ambient-rng",
                        node,
                        "argless RandomState() seeds from OS entropy and is "
                        "nondeterministic",
                        "pass an explicit seed or a parent RandomState",
                    )
            # -- set iteration ----------------------------------------------------
            iter_exprs: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_exprs.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iter_exprs.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ("list", "tuple", "iter", "enumerate") and node.args:
                    iter_exprs.append(node.args[0])
            for expr in iter_exprs:
                if _is_set_expr(expr):
                    report(
                        "unordered-iteration",
                        expr,
                        "iteration over a set is hash-order dependent "
                        "(PYTHONHASHSEED-sensitive for str keys)",
                        "wrap the set in sorted(...) to fix the order",
                    )
        return findings
