"""The project rule set for repro-lint.

Each module contributes one :class:`~repro.analysis.linter.Rule`
subclass; :func:`all_rules` is the registry the engine instantiates
(see docs/STATIC_ANALYSIS.md for the catalog, and for how to add a
rule: write the class, add it here, give it a positive and a negative
test in ``tests/test_analysis.py``).
"""

from __future__ import annotations

from typing import List

from repro.analysis.linter import Rule
from repro.analysis.rules.api import ApiHygieneRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.kernels import KernelContractRule
from repro.analysis.rules.locks import LockDisciplineRule

__all__ = [
    "ApiHygieneRule",
    "DeterminismRule",
    "KernelContractRule",
    "LockDisciplineRule",
    "all_rules",
]


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in report order."""
    return [
        DeterminismRule(),
        LockDisciplineRule(),
        KernelContractRule(),
        ApiHygieneRule(),
    ]
