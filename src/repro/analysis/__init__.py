"""Static and dynamic enforcement of the repo's concurrency and
determinism contracts.

Two halves:

* **repro-lint** (:mod:`repro.analysis.linter` + :mod:`repro.analysis.rules`)
  — an AST invariant checker for the contracts ordinary linters cannot
  see: all randomness through ``repro.stats.rng``, all wall-clock reads
  through ``repro.clock``, guarded state only mutated under its declared
  lock (``@guarded_by``), the kernel registry's bit-identity clauses, and
  ``__all__``/docs consistency.  CLI: ``scripts/lint_repro.py``.
* **lockwatch** (:mod:`repro.analysis.lockwatch`) — a runtime
  acquisition-order detector that runs the real serve / remote / chaos
  suites under instrumented locks and raises on lock-order cycles before
  they become production deadlocks.

See docs/STATIC_ANALYSIS.md for the rule catalog and workflow.
"""

from repro.analysis.annotations import guard_module_globals, guarded_by
from repro.analysis.linter import (
    FileContext,
    Finding,
    LintEngine,
    Project,
    Rule,
    default_rules,
    findings_to_json,
    lint_tree,
)
from repro.analysis.lockwatch import (
    LockOrderViolation,
    LockWatcher,
    WatchedLock,
    active_watcher,
)

__all__ = [
    "FileContext",
    "Finding",
    "LintEngine",
    "LockOrderViolation",
    "LockWatcher",
    "Project",
    "Rule",
    "WatchedLock",
    "active_watcher",
    "default_rules",
    "findings_to_json",
    "guard_module_globals",
    "guarded_by",
    "lint_tree",
]
