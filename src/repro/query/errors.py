"""Exception types raised by the query layer."""

from __future__ import annotations

__all__ = ["QueryError", "ParseError", "BindingError", "PlanningError"]


class QueryError(Exception):
    """Base class for every error the query layer raises."""


class ParseError(QueryError):
    """The query text does not conform to the Figure-1 grammar.

    Carries the character position where parsing failed, when known, so the
    message can point at the offending token.
    """

    def __init__(self, message: str, position: int = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class BindingError(QueryError):
    """The query references a predicate, statistic or proxy that the
    :class:`~repro.query.executor.QueryContext` does not know about."""


class PlanningError(QueryError):
    """The query is syntactically valid but cannot be planned
    (e.g. a GROUP BY query without a registered group binding)."""
