"""Tokenizer for the Figure-1 query language.

Token kinds are deliberately few: keywords, identifiers, numbers,
single-quoted strings, and punctuation (parentheses, comma, comparators).
Keywords are case-insensitive, identifiers preserve case, numbers may use
underscores or commas as thousands separators (the paper writes
``ORACLE LIMIT 10,000``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.query.errors import ParseError

__all__ = ["TokenKind", "Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "ORACLE",
    "LIMIT",
    "USING",
    "WITH",
    "PROBABILITY",
    "AND",
    "OR",
    "NOT",
    "IN",
}

_COMPARATORS = (">=", "<=", "!=", "<>", "=", ">", "<")


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    COMPARATOR = "comparator"
    LPAREN = "lparen"
    RPAREN = "rparen"
    COMMA = "comma"
    END = "end"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.value!r}, pos={self.position})"


def tokenize(text: str) -> List[Token]:
    """Convert query text into a token list ending with an END token."""
    tokens: List[Token] = []
    i = 0
    length = len(text)
    while i < length:
        char = text[i]
        if char.isspace():
            i += 1
            continue
        if char == "(":
            tokens.append(Token(TokenKind.LPAREN, "(", i))
            i += 1
            continue
        if char == ")":
            tokens.append(Token(TokenKind.RPAREN, ")", i))
            i += 1
            continue
        if char == ",":
            # A comma may separate arguments OR be a thousands separator
            # inside a number (``10,000``).  The number branch consumes
            # digit-comma-digit runs, so a comma reaching here is a real
            # separator.
            tokens.append(Token(TokenKind.COMMA, ",", i))
            i += 1
            continue
        comparator = _match_comparator(text, i)
        if comparator is not None:
            tokens.append(Token(TokenKind.COMPARATOR, comparator, i))
            i += len(comparator)
            continue
        if char == "'":
            value, consumed = _read_string(text, i)
            tokens.append(Token(TokenKind.STRING, value, i))
            i += consumed
            continue
        if char.isdigit() or (char == "." and i + 1 < length and text[i + 1].isdigit()):
            value, consumed = _read_number(text, i)
            tokens.append(Token(TokenKind.NUMBER, value, i))
            i += consumed
            continue
        if char.isalpha() or char == "_":
            value, consumed = _read_identifier(text, i)
            kind = (
                TokenKind.KEYWORD if value.upper() in KEYWORDS else TokenKind.IDENTIFIER
            )
            token_value = value.upper() if kind is TokenKind.KEYWORD else value
            tokens.append(Token(kind, token_value, i))
            i += consumed
            continue
        raise ParseError(f"unexpected character {char!r}", position=i)
    tokens.append(Token(TokenKind.END, "", length))
    return tokens


def _match_comparator(text: str, i: int):
    for candidate in _COMPARATORS:
        if text.startswith(candidate, i):
            return candidate
    return None


def _read_string(text: str, start: int):
    """Read a single-quoted string; quotes are not included in the value."""
    i = start + 1
    chars = []
    while i < len(text):
        if text[i] == "'":
            return "".join(chars).strip(), i - start + 1
        chars.append(text[i])
        i += 1
    raise ParseError("unterminated string literal", position=start)


def _read_number(text: str, start: int):
    """Read a number; underscores and digit-group commas are stripped."""
    i = start
    chars = []
    while i < len(text):
        char = text[i]
        if char.isdigit() or char in "._":
            chars.append(char)
            i += 1
            continue
        # A comma only continues the number when followed by a digit
        # (thousands separator); otherwise it terminates the number.
        if char == "," and i + 1 < len(text) and text[i + 1].isdigit():
            chars.append(char)
            i += 1
            continue
        break
    raw = "".join(chars)
    cleaned = raw.replace(",", "").replace("_", "")
    return cleaned, i - start


def _read_identifier(text: str, start: int):
    i = start
    while i < len(text) and (text[i].isalnum() or text[i] == "_"):
        i += 1
    return text[start:i], i - start
