"""Recursive-descent parser for the Figure-1 query language.

Grammar (keywords case-insensitive)::

    query      := SELECT aggregate FROM identifier
                  WHERE predicate
                  [GROUP BY call]
                  ORACLE LIMIT number USING proxy {, proxy}
                  WITH PROBABILITY number
    aggregate  := (AVG | SUM | COUNT | PERCENTAGE) '(' call ')'
    predicate  := or_expr
    or_expr    := and_expr { OR and_expr }
    and_expr   := unary { AND unary }
    unary      := NOT unary | '(' predicate ')' | atom
    atom       := call [ comparator literal ]
                | call IN '(' literal {, literal} ')'
    call       := identifier [ '(' [arg {, arg}] ')' ]

An ``IN`` atom desugars to a disjunction of equality atoms, matching how
the paper's group-by example (``WHERE person IN ('Biden', 'Trump')``) is
executed.
"""

from __future__ import annotations

from typing import List, Union

from repro.query.ast import (
    Aggregate,
    AggregateKind,
    AndExpr,
    FunctionCall,
    GroupByClause,
    NotExpr,
    OracleClause,
    OrExpr,
    PredicateAtom,
    PredicateNode,
    Query,
)
from repro.query.errors import ParseError
from repro.query.lexer import Token, TokenKind, tokenize

__all__ = ["parse_query"]


def parse_query(text: str) -> Query:
    """Parse a query string into a :class:`~repro.query.ast.Query`."""
    return _Parser(tokenize(text)).parse()


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- Token plumbing -------------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.END:
            self._pos += 1
        return token

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if token.kind is TokenKind.KEYWORD and token.value == keyword:
            return self._advance()
        raise ParseError(
            f"expected keyword {keyword}, found {token.value!r}", position=token.position
        )

    def _expect(self, kind: TokenKind) -> Token:
        token = self._peek()
        if token.kind is kind:
            return self._advance()
        raise ParseError(
            f"expected {kind.value}, found {token.value!r}", position=token.position
        )

    def _matches_keyword(self, keyword: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.KEYWORD and token.value == keyword

    # -- Grammar productions ----------------------------------------------------------
    def parse(self) -> Query:
        self._expect_keyword("SELECT")
        aggregate = self._parse_aggregate()
        self._expect_keyword("FROM")
        table = self._expect(TokenKind.IDENTIFIER).value
        self._expect_keyword("WHERE")
        predicate = self._parse_or_expr()

        group_by = None
        if self._matches_keyword("GROUP"):
            self._advance()
            self._expect_keyword("BY")
            group_by = GroupByClause(key=self._parse_call())

        self._expect_keyword("ORACLE")
        self._expect_keyword("LIMIT")
        limit_token = self._expect(TokenKind.NUMBER)
        limit = int(float(limit_token.value))

        self._expect_keyword("USING")
        proxies = [self._parse_call().name]
        while self._peek().kind is TokenKind.COMMA:
            self._advance()
            proxies.append(self._parse_call().name)

        self._expect_keyword("WITH")
        self._expect_keyword("PROBABILITY")
        probability = float(self._expect(TokenKind.NUMBER).value)

        end = self._peek()
        if end.kind is not TokenKind.END:
            raise ParseError(
                f"unexpected trailing input starting with {end.value!r}",
                position=end.position,
            )
        return Query(
            aggregate=aggregate,
            table=table,
            predicate=predicate,
            oracle=OracleClause(limit=limit, proxies=tuple(proxies)),
            probability=probability,
            group_by=group_by,
        )

    def _parse_aggregate(self) -> Aggregate:
        token = self._expect(TokenKind.IDENTIFIER)
        try:
            kind = AggregateKind(token.value.upper())
        except ValueError:
            raise ParseError(
                f"unknown aggregate {token.value!r}; expected "
                f"{[k.value for k in AggregateKind]}",
                position=token.position,
            ) from None
        self._expect(TokenKind.LPAREN)
        expression = self._parse_call()
        self._expect(TokenKind.RPAREN)
        return Aggregate(kind=kind, expression=expression)

    def _parse_call(self) -> FunctionCall:
        name_token = self._expect(TokenKind.IDENTIFIER)
        if self._peek().kind is not TokenKind.LPAREN:
            return FunctionCall(name=name_token.value)
        self._advance()
        args: List[str] = []
        if self._peek().kind is not TokenKind.RPAREN:
            args.append(self._parse_call_argument())
            while self._peek().kind is TokenKind.COMMA:
                self._advance()
                args.append(self._parse_call_argument())
        self._expect(TokenKind.RPAREN)
        return FunctionCall(name=name_token.value, args=tuple(args))

    def _parse_call_argument(self) -> str:
        token = self._peek()
        if token.kind is TokenKind.IDENTIFIER or token.kind is TokenKind.NUMBER:
            return self._advance().value
        if token.kind is TokenKind.STRING:
            return f"'{self._advance().value}'"
        raise ParseError(
            f"expected a call argument, found {token.value!r}", position=token.position
        )

    def _parse_or_expr(self) -> PredicateNode:
        operands = [self._parse_and_expr()]
        while self._matches_keyword("OR"):
            self._advance()
            operands.append(self._parse_and_expr())
        if len(operands) == 1:
            return operands[0]
        return OrExpr(operands=tuple(operands))

    def _parse_and_expr(self) -> PredicateNode:
        operands = [self._parse_unary()]
        while self._matches_keyword("AND"):
            self._advance()
            operands.append(self._parse_unary())
        if len(operands) == 1:
            return operands[0]
        return AndExpr(operands=tuple(operands))

    def _parse_unary(self) -> PredicateNode:
        if self._matches_keyword("NOT"):
            self._advance()
            return NotExpr(operand=self._parse_unary())
        if self._peek().kind is TokenKind.LPAREN:
            self._advance()
            inner = self._parse_or_expr()
            self._expect(TokenKind.RPAREN)
            return inner
        return self._parse_atom()

    def _parse_atom(self) -> PredicateNode:
        call = self._parse_call()
        token = self._peek()
        if token.kind is TokenKind.COMPARATOR:
            comparator = self._advance().value
            if comparator == "<>":
                comparator = "!="
            literal = self._parse_literal()
            return PredicateAtom(expression=call, comparator=comparator, literal=literal)
        if self._matches_keyword("IN"):
            self._advance()
            self._expect(TokenKind.LPAREN)
            literals = [self._parse_literal()]
            while self._peek().kind is TokenKind.COMMA:
                self._advance()
                literals.append(self._parse_literal())
            self._expect(TokenKind.RPAREN)
            atoms = tuple(
                PredicateAtom(expression=call, comparator="=", literal=lit)
                for lit in literals
            )
            if len(atoms) == 1:
                return atoms[0]
            return OrExpr(operands=atoms)
        return PredicateAtom(expression=call)

    def _parse_literal(self) -> Union[str, float]:
        token = self._peek()
        if token.kind is TokenKind.STRING:
            return self._advance().value
        if token.kind is TokenKind.NUMBER:
            value = self._advance().value
            number = float(value)
            return number
        raise ParseError(
            f"expected a literal, found {token.value!r}", position=token.position
        )
