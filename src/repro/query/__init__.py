"""The query layer: Figure-1 syntax, planner and executor.

The paper extends SQL aggregation syntax with an oracle budget, a proxy,
and a success probability::

    SELECT {AVG | SUM | COUNT | PERCENTAGE} (expr)
    FROM table_name
    WHERE filter_predicate
    [GROUP BY key]
    ORACLE LIMIT o USING proxy
    WITH PROBABILITY p

This package provides a tokenizer and recursive-descent parser producing a
typed AST (:mod:`repro.query.ast`), a planner that decides which ABae
variant answers a query (:mod:`repro.query.planner`), an executor binding
predicate names to oracles/proxies through a :class:`QueryContext`
(:mod:`repro.query.executor`), and an exhaustive "exact" executor used to
compute ground truth for evaluation (:mod:`repro.query.exact`).
"""

from repro.query.ast import (
    AggregateKind,
    Aggregate,
    PredicateAtom,
    NotExpr,
    AndExpr,
    OrExpr,
    GroupByClause,
    OracleClause,
    Query,
)
from repro.query.errors import QueryError, ParseError, BindingError
from repro.query.lexer import Token, TokenKind, tokenize
from repro.query.parser import parse_query
from repro.query.planner import QueryPlan, PlanKind, plan_query
from repro.query.executor import (
    PreparedQuery,
    QueryContext,
    QueryResult,
    execute_query,
    prepare_query,
)
from repro.query.exact import exact_answer

__all__ = [
    "AggregateKind",
    "Aggregate",
    "PredicateAtom",
    "NotExpr",
    "AndExpr",
    "OrExpr",
    "GroupByClause",
    "OracleClause",
    "Query",
    "QueryError",
    "ParseError",
    "BindingError",
    "Token",
    "TokenKind",
    "tokenize",
    "parse_query",
    "QueryPlan",
    "PlanKind",
    "plan_query",
    "QueryContext",
    "QueryResult",
    "execute_query",
    "PreparedQuery",
    "prepare_query",
    "exact_answer",
]
