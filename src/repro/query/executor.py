"""Query executor: bind a parsed query to oracles / proxies and run ABae.

The executor is driven by a :class:`QueryContext`, which is where the user
(or the examples / benchmark harness) registers

* **statistics** — the per-record values of expressions like ``views`` or
  ``count_cars(frame)``;
* **predicates** — for each predicate atom appearing in WHERE clauses, the
  expensive oracle and its proxy (plus, optionally, the ground-truth label
  array used by the exact executor);
* **group bindings** — for GROUP BY queries, the list of group keys, the
  per-group proxies, and either a single group-key oracle or per-group
  membership oracles.

Binding keys are the canonical text of the expression, so
``register_predicate("hair_color(img) = 'blonde'", ...)`` binds the atom
``WHERE hair_color(img) = 'blonde'``; a registration under just the
function name (``"hair_color"``) acts as a fallback for any atom using
that function.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Union

import numpy as np

from repro.core.abae import run_abae
from repro.core.stratification import stratification_cache_disabled
from repro.engine.builders import multipred_pipeline, two_stage_pipeline
from repro.engine.pipeline import SamplingPipeline
from repro.engine.config import (
    UNSET,
    ExecutionConfig,
    ExecutionConfigError,
    resolve_execution_config,
)
from repro.core.bootstrap import bootstrap_aggregate_interval
from repro.core.groupby import (
    GroupSpec,
    run_groupby_multi_oracle,
    run_groupby_single_oracle,
)
from repro.core.multipred import And, Not, Or, PredicateExpr, PredicateLeaf
from repro.core.multipred import run_abae_multipred
from repro.core.results import ConfidenceInterval, EstimateResult, GroupByResult
from repro.oracle.groupkey import GroupKeyOracle, PerGroupOracles
from repro.proxy.base import Proxy, memoized_proxy_object
from repro.query.ast import (
    AggregateKind,
    AndExpr,
    FunctionCall,
    NotExpr,
    OrExpr,
    PredicateAtom,
    PredicateNode,
    Query,
)
from repro.query.errors import BindingError, PlanningError
from repro.query.parser import parse_query
from repro.query.planner import PlanKind, plan_query
from repro.stats.rng import RandomState

__all__ = [
    "PredicateBinding",
    "GroupBinding",
    "QueryContext",
    "QueryResult",
    "execute_query",
    "PreparedQuery",
    "prepare_query",
]


@dataclass
class PredicateBinding:
    """The oracle / proxy pair registered for one predicate atom.

    ``proxy`` may be a :class:`~repro.proxy.base.Proxy`, a raw score
    sequence, a dataset-backend column handle, or a *column name* (a
    string) resolved at execution time against the plan's backend.
    """

    oracle: Callable[[int], bool]
    proxy: Union[Proxy, Sequence[float], str]
    labels: Optional[np.ndarray] = None

    def proxy_object(self, backend=None) -> Proxy:
        """The binding's proxy as a :class:`Proxy` (memoized).

        Raw score sequences are wrapped once and the wrapper reused for
        every execution, so the plan-level stratification cache (keyed on
        proxy identity) hits across repeated queries instead of seeing a
        fresh wrapper per run.  A string proxy is resolved through
        ``backend`` (the plan's dataset backend), memoized per backend so
        repeated queries against the same backend share one wrapper.
        """
        if isinstance(self.proxy, str):
            if backend is None:
                raise BindingError(
                    f"predicate proxy is the column name {self.proxy!r} but "
                    "the query has no dataset backend; pass backend= to "
                    "execute_query or register the scores directly"
                )
            cached = getattr(self, "_backend_proxy", None)
            if cached is not None and cached[0] is backend:
                return cached[1]
            from repro.proxy.base import BackedProxy

            wrapped = BackedProxy(backend, self.proxy, name=f"bound:{self.proxy}")
            self._backend_proxy = (backend, wrapped)
            return wrapped
        return memoized_proxy_object(self, self.proxy, name="bound_proxy")


@dataclass
class GroupBinding:
    """Everything needed to execute a GROUP BY query on one key."""

    groups: List[Hashable]
    proxies: Dict[Hashable, Union[Proxy, Sequence[float]]]
    group_key_oracle: Optional[GroupKeyOracle] = None
    per_group_oracles: Optional[PerGroupOracles] = None
    group_labels: Optional[np.ndarray] = None

    def __post_init__(self):
        if self.group_key_oracle is None and self.per_group_oracles is None:
            raise BindingError(
                "a group binding needs a group-key oracle or per-group oracles"
            )
        missing = [g for g in self.groups if g not in self.proxies]
        if missing:
            raise BindingError(f"missing proxies for groups: {missing}")

    @property
    def setting(self) -> str:
        """"single" when a group-key oracle is available, else "multi"."""
        return "single" if self.group_key_oracle is not None else "multi"

    def group_specs(self) -> List[GroupSpec]:
        return [GroupSpec(key=g, proxy=self.proxies[g]) for g in self.groups]


class QueryContext:
    """Registry binding query text to data, oracles and proxies.

    ``backend`` (optional) is the context's default dataset backend:
    statistics and proxies registered as *column names* are resolved
    against it (or against the ``backend=`` hint given at execution time,
    which takes precedence).  :meth:`from_backend` builds a context
    directly over a backend.
    """

    def __init__(self, num_records: int, backend=None):
        if num_records <= 0:
            raise ValueError(f"num_records must be positive, got {num_records}")
        self.num_records = int(num_records)
        self.backend = backend
        self._statistics: Dict[str, Union[np.ndarray, str]] = {}
        self._predicates: Dict[str, PredicateBinding] = {}
        self._groups: Dict[str, GroupBinding] = {}

    @classmethod
    def from_backend(cls, backend) -> "QueryContext":
        """A context over a dataset backend (its records, its columns)."""
        return cls(backend.num_records, backend=backend)

    # -- Registration ---------------------------------------------------------------
    def register_statistic(
        self, name: str, values: Union[Sequence[float], str]
    ) -> "QueryContext":
        """Register per-record values for an expression (by canonical name).

        ``values`` may be a dense array, a dataset-backend column handle,
        or a *column name* (a string) resolved lazily against the query's
        backend at execution time — the out-of-core registration style,
        which never materializes the column.
        """
        if isinstance(values, str):
            self._statistics[name] = values
            return self
        from repro.data.backend import is_column_handle

        if is_column_handle(values):
            if len(values) != self.num_records:
                raise ValueError(
                    f"statistic {name!r} has {len(values)} values, "
                    f"expected {self.num_records}"
                )
            self._statistics[name] = values
            return self
        arr = np.asarray(values, dtype=float)
        if arr.shape[0] != self.num_records:
            raise ValueError(
                f"statistic {name!r} has {arr.shape[0]} values, expected {self.num_records}"
            )
        self._statistics[name] = arr
        return self

    def register_predicate(
        self,
        key: str,
        oracle: Callable[[int], bool],
        proxy: Union[Proxy, Sequence[float]],
        labels: Optional[Sequence] = None,
    ) -> "QueryContext":
        """Register the oracle / proxy for a predicate atom (by canonical key)."""
        label_arr = None
        if labels is not None:
            label_arr = np.asarray(labels, dtype=bool)
            if label_arr.shape[0] != self.num_records:
                raise ValueError(
                    f"labels for {key!r} have {label_arr.shape[0]} entries, "
                    f"expected {self.num_records}"
                )
        self._predicates[key] = PredicateBinding(
            oracle=oracle, proxy=proxy, labels=label_arr
        )
        return self

    def register_groupby(self, key: str, binding: GroupBinding) -> "QueryContext":
        """Register a group binding for a GROUP BY key (by canonical name)."""
        self._groups[key] = binding
        return self

    # -- Resolution -----------------------------------------------------------------
    def resolve_statistic(self, expression: FunctionCall, backend=None):
        """The statistic's values: a dense array or a backend column handle.

        ``backend`` (defaulting to the context's own) resolves string
        registrations; the returned handle feeds the samplers directly,
        which gather only the records they draw.
        """
        backend = backend if backend is not None else self.backend
        for candidate in (expression.canonical(), expression.name):
            if candidate in self._statistics:
                registered = self._statistics[candidate]
                if not isinstance(registered, str):
                    return registered
                if backend is None:
                    raise BindingError(
                        f"statistic {candidate!r} is registered as column "
                        f"{registered!r} but the query has no dataset "
                        "backend; pass backend= to execute_query"
                    )
                try:
                    handle = backend.column(registered)
                except KeyError as exc:
                    raise BindingError(str(exc)) from None
                if len(handle) != self.num_records:
                    raise BindingError(
                        f"backend column {registered!r} has {len(handle)} "
                        f"records, the context expects {self.num_records}"
                    )
                return handle
        raise BindingError(
            f"no statistic registered for {expression.canonical()!r}; "
            f"registered statistics: {sorted(self._statistics)}"
        )

    def resolve_predicate(self, atom: PredicateAtom) -> PredicateBinding:
        for candidate in (atom.key(), atom.expression.canonical(), atom.expression.name):
            if candidate in self._predicates:
                return self._predicates[candidate]
        raise BindingError(
            f"no predicate binding for {atom.key()!r}; "
            f"registered predicates: {sorted(self._predicates)}"
        )

    def resolve_groupby(self, key: FunctionCall) -> GroupBinding:
        for candidate in (key.canonical(), key.name):
            if candidate in self._groups:
                return self._groups[candidate]
        raise BindingError(
            f"no group binding for {key.canonical()!r}; "
            f"registered group keys: {sorted(self._groups)}"
        )


@dataclass
class QueryResult:
    """The executor's answer: a scalar (or per-group values) plus diagnostics."""

    value: Optional[float] = None
    ci: Optional[ConfidenceInterval] = None
    group_values: Dict[Hashable, float] = field(default_factory=dict)
    group_cis: Dict[Hashable, ConfidenceInterval] = field(default_factory=dict)
    oracle_calls: int = 0
    plan_kind: Optional[PlanKind] = None
    method: str = ""
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def is_group_by(self) -> bool:
        return bool(self.group_values)


def execute_query(
    query: Union[str, Query],
    context: QueryContext,
    num_strata: int = 5,
    stage1_fraction: float = 0.5,
    num_bootstrap: int = 1000,
    with_ci: bool = True,
    seed: Optional[int] = None,
    rng: Optional[RandomState] = None,
    batch_size=UNSET,
    num_workers=UNSET,
    plan_cache=UNSET,
    config: Optional[ExecutionConfig] = None,
    backend=None,
) -> QueryResult:
    """Parse (if needed), plan and execute a query against a context.

    ``config`` is recorded on the plan and carries every physical
    execution knob: how many records each oracle invocation batch labels
    (``None`` = whole draw sets at once, ``1`` = strictly sequential), how
    many workers each batch is sharded across (``None`` = serial), and
    whether execution may reuse the process-wide proxy-scores /
    stratification caches across repeated queries (``plan_cache``, default
    on).  ``backend`` is the dataset-backend hint (validated at planning
    time like ``plan_cache``): the storage that string column
    registrations resolve against, overriding the context's default.  The
    legacy ``batch_size`` / ``num_workers`` / ``plan_cache`` kwargs remain
    as deprecated aliases.  No knob ever changes the query answer, the
    confidence interval, or the oracle call count — backends serve
    bit-identical column values.
    """
    if isinstance(query, str):
        query = parse_query(query)
    try:
        config = resolve_execution_config(
            config,
            "execute_query",
            stacklevel=3,
            batch_size=batch_size,
            num_workers=num_workers,
            plan_cache=plan_cache,
        )
    except ExecutionConfigError as exc:
        raise PlanningError(str(exc)) from None
    plan = plan_query(
        query,
        config=config,
        backend=backend if backend is not None else context.backend,
    )
    if (
        plan.backend is not None
        and plan.backend.num_records != context.num_records
    ):
        # Caught here, once, for every plan shape: per-column resolution
        # would let a COUNT query (which resolves no statistic) stratify a
        # differently-sized backend and silently mis-answer.
        raise PlanningError(
            f"backend {plan.backend.name!r} has {plan.backend.num_records} "
            f"records but the context covers {context.num_records}; the "
            "query would sample the wrong population"
        )
    # Explicit seed wins; otherwise the config's rng policy (historically a
    # fresh nondeterministic state when neither is given).
    rng = rng or RandomState(seed if seed is not None else config.seed)

    cache_scope = (
        nullcontext() if plan.plan_cache else stratification_cache_disabled()
    )
    with cache_scope:
        if plan.kind is PlanKind.GROUP_BY:
            return _execute_group_by(plan, context, num_strata, stage1_fraction, rng)
        if plan.kind is PlanKind.MULTI_PREDICATE:
            return _execute_multi_predicate(
                plan, context, num_strata, stage1_fraction, num_bootstrap, with_ci, rng
            )
        return _execute_single_predicate(
            plan, context, num_strata, stage1_fraction, num_bootstrap, with_ci, rng
        )


# ---------------------------------------------------------------------------
# Session-servable preparation (the serving layer's entry point)
# ---------------------------------------------------------------------------


@dataclass
class PreparedQuery:
    """A planned query as a servable pipeline plus its finalizer.

    :func:`prepare_query` performs everything :func:`execute_query` does
    up to (but not including) running the sampler: parse, plan, validate,
    bind, stratify.  What remains is a
    :class:`~repro.engine.pipeline.SamplingPipeline` to be driven
    step-by-step — the serving layer schedules it among many live
    queries — and :meth:`finalize` to convert the finished session's
    :class:`~repro.core.results.EstimateResult` into the
    :class:`QueryResult` ``execute_query`` would have returned.
    """

    query: Query
    plan_kind: PlanKind
    pipeline: SamplingPipeline
    num_bootstrap: int
    with_ci: bool

    @property
    def budget(self) -> int:
        """The pipeline's oracle budget (the query's ORACLE LIMIT)."""
        return self.pipeline.budget

    def finalize(self, result: EstimateResult, rng: RandomState) -> QueryResult:
        """The query's answer from a finished session's estimate result.

        Pass the *session's own* ``state.rng`` (not a fresh one): the
        SUM/COUNT aggregate bootstrap then consumes exactly the stream
        position ``execute_query`` would have, keeping served results
        bit-identical to solo execution.
        """
        if self.plan_kind is PlanKind.MULTI_PREDICATE:
            # Mirror run_abae_multipred: constituent accounting lives on
            # the (possibly sharding-wrapped) composite oracle.
            composite = getattr(self.pipeline.oracle, "inner", self.pipeline.oracle)
            if hasattr(composite, "total_children_calls"):
                result.details["constituent_oracle_calls"] = (
                    composite.total_children_calls
                )
        return _finalize_scalar(
            self.query, result, self.plan_kind, self.num_bootstrap, self.with_ci, rng
        )


def prepare_query(
    query: Union[str, Query],
    context: QueryContext,
    *,
    num_strata: int = 5,
    stage1_fraction: float = 0.5,
    num_bootstrap: int = 1000,
    with_ci: bool = True,
    config: Optional[ExecutionConfig] = None,
    backend=None,
    oracle_transform: Optional[Callable] = None,
) -> PreparedQuery:
    """Parse and plan a query into a servable :class:`PreparedQuery`.

    The construction path is ``execute_query``'s own — same planning,
    same validation, same binding resolution order, stratification built
    under the same plan-cache scope — so driving the prepared pipeline's
    session to completion and calling
    :meth:`PreparedQuery.finalize` with the session's ``state.rng``
    reproduces ``execute_query`` bit-for-bit.

    ``oracle_transform(identity, oracle)``, when given, wraps every bound
    predicate oracle; ``identity`` is the predicate atom's canonical key,
    stable across queries, which is how the serving layer plugs in its
    process-wide shared answer cache.  The transform must preserve answer
    semantics — it may only change *who pays* for a call.

    Only the session-servable plans are supported: a GROUP BY query
    raises :class:`~repro.query.errors.PlanningError` (serve it through
    ``execute_query``, which runs its multi-pipeline driver to
    completion).
    """
    if isinstance(query, str):
        query = parse_query(query)
    try:
        config = resolve_execution_config(config, "prepare_query", stacklevel=3)
    except ExecutionConfigError as exc:
        raise PlanningError(str(exc)) from None
    plan = plan_query(
        query,
        config=config,
        backend=backend if backend is not None else context.backend,
    )
    if (
        plan.backend is not None
        and plan.backend.num_records != context.num_records
    ):
        raise PlanningError(
            f"backend {plan.backend.name!r} has {plan.backend.num_records} "
            f"records but the context covers {context.num_records}; the "
            "query would sample the wrong population"
        )
    if plan.kind is PlanKind.GROUP_BY:
        raise PlanningError(
            "GROUP BY queries are not session-servable: the group-by "
            "drivers run multiple coupled pipelines; execute them with "
            "execute_query instead"
        )

    cache_scope = (
        nullcontext() if plan.plan_cache else stratification_cache_disabled()
    )
    with cache_scope:
        if plan.kind is PlanKind.MULTI_PREDICATE:
            expression = _build_expression(
                query.predicate,
                context,
                backend=plan.backend,
                oracle_transform=oracle_transform,
            )
            statistic = _statistic_for(query, context, backend=plan.backend)
            pipeline = multipred_pipeline(
                expression=expression,
                statistic=statistic,
                budget=query.oracle.limit,
                num_strata=num_strata,
                stage1_fraction=stage1_fraction,
                with_ci=with_ci,
                alpha=query.alpha,
                num_bootstrap=num_bootstrap,
                config=plan.config,
            )
        else:
            atom = plan.atoms[0]
            binding = context.resolve_predicate(atom)
            oracle = binding.oracle
            if oracle_transform is not None:
                oracle = oracle_transform(atom.key(), oracle)
            statistic = _statistic_for(query, context, backend=plan.backend)
            pipeline = two_stage_pipeline(
                proxy=binding.proxy_object(backend=plan.backend),
                oracle=oracle,
                statistic=statistic,
                budget=query.oracle.limit,
                num_strata=num_strata,
                stage1_fraction=stage1_fraction,
                with_ci=with_ci,
                alpha=query.alpha,
                num_bootstrap=num_bootstrap,
                config=plan.config,
            )
    return PreparedQuery(
        query=query,
        plan_kind=plan.kind,
        pipeline=pipeline,
        num_bootstrap=num_bootstrap,
        with_ci=with_ci,
    )


# ---------------------------------------------------------------------------
# Plan execution
# ---------------------------------------------------------------------------


def _statistic_for(query: Query, context: QueryContext, backend=None):
    """The per-record statistic (array or column handle); COUNT uses 1."""
    if query.aggregate.kind is AggregateKind.COUNT:
        return np.ones(context.num_records, dtype=float)
    return context.resolve_statistic(query.aggregate.expression, backend=backend)


def _finalize_scalar(
    query: Query,
    result: EstimateResult,
    plan_kind: PlanKind,
    num_bootstrap: int,
    with_ci: bool,
    rng: RandomState,
) -> QueryResult:
    """Convert an AVG-space :class:`EstimateResult` into the query's aggregate."""
    kind = query.aggregate.kind
    stratum_sizes = result.details.get("stratum_sizes")
    if kind in (AggregateKind.AVG, AggregateKind.PERCENTAGE):
        value = result.estimate
        ci = result.ci
    else:
        # SUM and COUNT need the per-stratum sizes to scale positive rates
        # into absolute record counts.
        if stratum_sizes is None:
            raise PlanningError(
                f"{kind.value} queries require per-stratum sizes from the sampler"
            )
        sizes = np.asarray(stratum_sizes, dtype=float)
        p_hats = np.array([e.p_hat for e in result.strata_estimates])
        mu_hats = np.array([e.mu_hat for e in result.strata_estimates])
        counts = p_hats * sizes
        if kind is AggregateKind.COUNT:
            value = float(counts.sum())
        else:
            value = float((counts * mu_hats).sum())
        ci = None
        if with_ci and result.samples:
            ci = bootstrap_aggregate_interval(
                result.samples,
                stratum_sizes=sizes,
                kind="count" if kind is AggregateKind.COUNT else "sum",
                alpha=query.alpha,
                num_bootstrap=num_bootstrap,
                rng=rng,
            )
    return QueryResult(
        value=value,
        ci=ci,
        oracle_calls=result.oracle_calls,
        plan_kind=plan_kind,
        method=result.method,
        details=dict(result.details),
    )


def _execute_single_predicate(
    plan, context, num_strata, stage1_fraction, num_bootstrap, with_ci, rng
) -> QueryResult:
    query = plan.query
    atom = plan.atoms[0]
    binding = context.resolve_predicate(atom)
    statistic = _statistic_for(query, context, backend=plan.backend)
    result = run_abae(
        proxy=binding.proxy_object(backend=plan.backend),
        oracle=binding.oracle,
        statistic=statistic,
        budget=query.oracle.limit,
        num_strata=num_strata,
        stage1_fraction=stage1_fraction,
        with_ci=with_ci,
        alpha=query.alpha,
        num_bootstrap=num_bootstrap,
        rng=rng,
        config=plan.config,
    )
    return _finalize_scalar(
        query, result, PlanKind.SINGLE_PREDICATE, num_bootstrap, with_ci, rng
    )


def _build_expression(
    node: PredicateNode, context: QueryContext, backend=None, oracle_transform=None
) -> PredicateExpr:
    """Translate a WHERE tree into an executable MultiPred expression.

    ``oracle_transform(identity, oracle)``, when given, wraps each leaf
    oracle; ``identity`` is the atom's canonical key, so the same
    predicate text maps to the same identity in every query (the serving
    layer keys its shared cross-query answer cache on it).
    """
    if isinstance(node, PredicateAtom):
        binding = context.resolve_predicate(node)
        oracle = binding.oracle
        if oracle_transform is not None:
            oracle = oracle_transform(node.key(), oracle)
        return PredicateLeaf(
            proxy=binding.proxy_object(backend=backend),
            oracle=oracle,
            name=node.key(),
        )
    if isinstance(node, NotExpr):
        return Not(
            _build_expression(node.operand, context, backend, oracle_transform)
        )
    if isinstance(node, AndExpr):
        return And(
            [
                _build_expression(op, context, backend, oracle_transform)
                for op in node.operands
            ]
        )
    if isinstance(node, OrExpr):
        return Or(
            [
                _build_expression(op, context, backend, oracle_transform)
                for op in node.operands
            ]
        )
    raise PlanningError(f"unsupported predicate node: {node!r}")


def _execute_multi_predicate(
    plan, context, num_strata, stage1_fraction, num_bootstrap, with_ci, rng
) -> QueryResult:
    query = plan.query
    expression = _build_expression(query.predicate, context, backend=plan.backend)
    statistic = _statistic_for(query, context, backend=plan.backend)
    result = run_abae_multipred(
        expression=expression,
        statistic=statistic,
        budget=query.oracle.limit,
        num_strata=num_strata,
        stage1_fraction=stage1_fraction,
        with_ci=with_ci,
        alpha=query.alpha,
        num_bootstrap=num_bootstrap,
        rng=rng,
        config=plan.config,
    )
    return _finalize_scalar(
        query, result, PlanKind.MULTI_PREDICATE, num_bootstrap, with_ci, rng
    )


def _execute_group_by(
    plan, context, num_strata, stage1_fraction, rng
) -> QueryResult:
    query = plan.query
    binding = context.resolve_groupby(query.group_by.key)
    kind = query.aggregate.kind

    if kind is AggregateKind.COUNT:
        statistic = np.ones(context.num_records, dtype=float)
    else:
        statistic = context.resolve_statistic(
            query.aggregate.expression, backend=plan.backend
        )

    if binding.setting == "single":
        group_result: GroupByResult = run_groupby_single_oracle(
            groups=binding.group_specs(),
            oracle=binding.group_key_oracle,
            statistic=statistic,
            budget=query.oracle.limit,
            num_strata=num_strata,
            stage1_fraction=stage1_fraction,
            rng=rng,
            config=plan.config,
        )
    else:
        group_result = run_groupby_multi_oracle(
            groups=binding.group_specs(),
            oracles=binding.per_group_oracles,
            statistic=statistic,
            budget=query.oracle.limit,
            num_strata=num_strata,
            stage1_fraction=stage1_fraction,
            rng=rng,
            config=plan.config,
        )

    values = group_result.estimates()
    if kind is AggregateKind.COUNT:
        # Per-group COUNT: rescale the per-group positive-rate estimate by
        # the dataset size.  The group-by samplers estimate AVG of 1 over
        # group members (which is 1); the group membership rate is exposed
        # through the per-stratum p_hats, which are combined here.
        values = {
            group: _estimate_group_count(result, context.num_records)
            for group, result in group_result.group_results.items()
        }

    return QueryResult(
        group_values=values,
        oracle_calls=group_result.oracle_calls,
        plan_kind=PlanKind.GROUP_BY,
        method=group_result.method,
        details={"allocation": group_result.allocation, **group_result.details},
    )


def _estimate_group_count(result: EstimateResult, num_records: int) -> float:
    """Estimate a group's record count from the per-stratum positive rates."""
    samples = result.samples
    if not samples:
        return 0.0
    total_draws = sum(s.num_draws for s in samples)
    total_positive = sum(s.num_positive for s in samples)
    if total_draws == 0:
        return 0.0
    # The samplers draw (approximately) proportional to stratum sizes only in
    # Stage 1, so the simple ratio is an approximation; it is exact for the
    # uniform allocation and close otherwise.
    return num_records * total_positive / total_draws
