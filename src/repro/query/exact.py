"""Exact (exhaustive-oracle) query evaluation.

Used to compute the ground truth every experiment measures errors against.
It requires that every predicate binding in the context carries its
ground-truth ``labels`` array (and that group bindings carry
``group_labels``); it never touches the oracles, so it does not distort
their accounting.
"""

from __future__ import annotations

from typing import Dict, Hashable, Union

import numpy as np

from repro.query.ast import (
    AggregateKind,
    AndExpr,
    NotExpr,
    OrExpr,
    PredicateAtom,
    PredicateNode,
    Query,
)
from repro.query.errors import BindingError
from repro.query.executor import QueryContext
from repro.query.parser import parse_query

__all__ = ["exact_answer", "exact_predicate_mask"]


def exact_predicate_mask(node: PredicateNode, context: QueryContext) -> np.ndarray:
    """Evaluate a WHERE tree exactly using registered ground-truth labels."""
    if isinstance(node, PredicateAtom):
        binding = context.resolve_predicate(node)
        if binding.labels is None:
            raise BindingError(
                f"exact evaluation of {node.key()!r} requires ground-truth labels "
                "in its predicate binding"
            )
        return binding.labels.astype(bool)
    if isinstance(node, NotExpr):
        return ~exact_predicate_mask(node.operand, context)
    if isinstance(node, AndExpr):
        mask = exact_predicate_mask(node.operands[0], context)
        for operand in node.operands[1:]:
            mask = mask & exact_predicate_mask(operand, context)
        return mask
    if isinstance(node, OrExpr):
        mask = exact_predicate_mask(node.operands[0], context)
        for operand in node.operands[1:]:
            mask = mask | exact_predicate_mask(operand, context)
        return mask
    raise TypeError(f"not a predicate node: {node!r}")


def exact_answer(
    query: Union[str, Query], context: QueryContext
) -> Union[float, Dict[Hashable, float]]:
    """The exact query answer (a scalar, or a per-group dict for GROUP BY)."""
    if isinstance(query, str):
        query = parse_query(query)

    if query.group_by is not None:
        return _exact_group_by(query, context)

    mask = exact_predicate_mask(query.predicate, context)
    return _aggregate(query, context, mask)


def _aggregate(query: Query, context: QueryContext, mask: np.ndarray) -> float:
    kind = query.aggregate.kind
    if kind is AggregateKind.COUNT:
        return float(mask.sum())
    # Exact evaluation is an exhaustive scan by definition, so backend
    # column handles are materialized here.
    from repro.data.backend import as_dense

    values = as_dense(
        context.resolve_statistic(query.aggregate.expression), dtype=float
    )
    selected = values[mask]
    if kind is AggregateKind.SUM:
        return float(selected.sum())
    # AVG and PERCENTAGE
    if selected.size == 0:
        return 0.0
    return float(selected.mean())


def _exact_group_by(query: Query, context: QueryContext) -> Dict[Hashable, float]:
    binding = context.resolve_groupby(query.group_by.key)
    if binding.group_labels is None:
        raise BindingError(
            "exact evaluation of a GROUP BY query requires group_labels in the "
            "group binding"
        )
    group_labels = np.asarray(binding.group_labels, dtype=object)
    answers: Dict[Hashable, float] = {}
    for group in binding.groups:
        mask = np.array([label == group for label in group_labels], dtype=bool)
        answers[group] = _aggregate(query, context, mask)
    return answers
