"""Query planner: decide which ABae variant answers a parsed query.

The decision tree is small:

* a ``GROUP BY`` clause → a group-by plan (single- vs multiple-oracle is
  decided at execution time from the registered group binding);
* more than one predicate atom in the WHERE clause → ABae-MultiPred;
* otherwise → plain single-predicate ABae.

``plan_query`` also performs the query-level validations that do not need
the binding context (e.g. group-by queries are only supported for AVG /
PERCENTAGE / COUNT aggregates).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.query.ast import AggregateKind, PredicateAtom, Query
from repro.query.errors import PlanningError

__all__ = ["PlanKind", "QueryPlan", "plan_query"]


class PlanKind(enum.Enum):
    SINGLE_PREDICATE = "single_predicate"
    MULTI_PREDICATE = "multi_predicate"
    GROUP_BY = "group_by"


@dataclass
class QueryPlan:
    """The chosen execution strategy plus per-plan annotations.

    ``batch_size`` is the plan's oracle-batching hint: how many records the
    executor labels per oracle invocation batch (``None`` = whole draw sets
    at once, ``1`` = strictly sequential).  It is a pure execution knob —
    estimates, CIs and call counts are identical for every value — so the
    planner records it as part of the physical plan rather than the logical
    decision tree.
    """

    kind: PlanKind
    query: Query
    atoms: List[PredicateAtom] = field(default_factory=list)
    notes: Dict[str, object] = field(default_factory=dict)
    batch_size: Optional[int] = None

    @property
    def budget(self) -> int:
        return self.query.oracle.limit

    @property
    def alpha(self) -> float:
        return self.query.alpha


def plan_query(query: Query, batch_size: Optional[int] = None) -> QueryPlan:
    """Build a :class:`QueryPlan` for a parsed query.

    ``batch_size`` is attached to the plan as its oracle-batching hint and
    validated here so a bad knob fails at planning time, not mid-sampling.
    """
    if batch_size is not None and batch_size < 1:
        raise PlanningError(
            f"batch_size must be a positive integer or None, got {batch_size}"
        )
    atoms = query.atoms()
    if not atoms:
        raise PlanningError("the WHERE clause references no predicates")

    if query.group_by is not None:
        if query.aggregate.kind is AggregateKind.SUM:
            raise PlanningError(
                "SUM with GROUP BY is not supported by the reproduction; "
                "use AVG, PERCENTAGE or COUNT"
            )
        group_key = query.group_by.key.canonical()
        mismatched = [
            atom
            for atom in atoms
            if atom.expression.canonical() != query.group_by.key.canonical()
        ]
        return QueryPlan(
            kind=PlanKind.GROUP_BY,
            query=query,
            atoms=atoms,
            notes={
                "group_key": group_key,
                "non_group_atoms": [a.key() for a in mismatched],
            },
            batch_size=batch_size,
        )

    if len(atoms) > 1:
        return QueryPlan(
            kind=PlanKind.MULTI_PREDICATE, query=query, atoms=atoms,
            batch_size=batch_size,
        )
    return QueryPlan(
        kind=PlanKind.SINGLE_PREDICATE, query=query, atoms=atoms,
        batch_size=batch_size,
    )
