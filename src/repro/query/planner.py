"""Query planner: decide which ABae variant answers a parsed query.

The decision tree is small:

* a ``GROUP BY`` clause → a group-by plan (single- vs multiple-oracle is
  decided at execution time from the registered group binding);
* more than one predicate atom in the WHERE clause → ABae-MultiPred;
* otherwise → plain single-predicate ABae.

``plan_query`` also performs the query-level validations that do not need
the binding context (e.g. group-by queries are only supported for AVG /
PERCENTAGE / COUNT aggregates), and validates the plan's physical
:class:`~repro.engine.config.ExecutionConfig` eagerly so a bad execution
knob raises a clear :class:`~repro.query.errors.PlanningError` at planning
time instead of surfacing mid-sampling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.data.backend import DatasetBackend
from repro.engine.config import (
    UNSET,
    ExecutionConfig,
    ExecutionConfigError,
    resolve_execution_config,
)
from repro.query.ast import AggregateKind, PredicateAtom, Query
from repro.query.errors import PlanningError

__all__ = ["PlanKind", "QueryPlan", "plan_query"]


class PlanKind(enum.Enum):
    SINGLE_PREDICATE = "single_predicate"
    MULTI_PREDICATE = "multi_predicate"
    GROUP_BY = "group_by"


@dataclass
class QueryPlan:
    """The chosen execution strategy plus per-plan annotations.

    ``config`` is the plan's physical-execution half: how many records the
    executor labels per oracle invocation batch, how many workers each
    batch is sharded across, whether execution may reuse the process-wide
    stratification caches, and the rng / progress policies (see
    :class:`~repro.engine.config.ExecutionConfig`).  All of it is purely
    physical — estimates, CIs and call counts are bit-identical for every
    setting — so the planner records it as part of the physical plan
    rather than the logical decision tree.  The historical ``batch_size``
    / ``num_workers`` / ``plan_cache`` attributes remain as read-only
    views of the config.
    """

    kind: PlanKind
    query: Query
    atoms: List[PredicateAtom] = field(default_factory=list)
    notes: Dict[str, object] = field(default_factory=dict)
    config: ExecutionConfig = field(default_factory=ExecutionConfig)
    # The dataset backend the executor resolves column references against
    # (``None`` = the context's dense registered arrays, today's default).
    # Like every physical hint it never changes results: backends serve
    # bit-identical column values (see repro.data).
    backend: Optional[DatasetBackend] = None

    @property
    def budget(self) -> int:
        return self.query.oracle.limit

    @property
    def alpha(self) -> float:
        return self.query.alpha

    # -- Legacy knob views ----------------------------------------------------------
    @property
    def batch_size(self) -> Optional[int]:
        return self.config.batch_size

    @property
    def num_workers(self) -> Optional[int]:
        return self.config.num_workers

    @property
    def plan_cache(self) -> bool:
        return self.config.plan_cache

    @property
    def kernel(self) -> str:
        """The plan's sampler-kernel backend hint (see :mod:`repro.kernels`)."""
        return self.config.kernel


def plan_query(
    query: Query,
    batch_size=UNSET,
    num_workers=UNSET,
    plan_cache=UNSET,
    config: Optional[ExecutionConfig] = None,
    backend: Optional[DatasetBackend] = None,
    kernel=UNSET,
) -> QueryPlan:
    """Build a :class:`QueryPlan` for a parsed query.

    ``config`` (an :class:`~repro.engine.config.ExecutionConfig`) is
    attached to the plan as its physical-execution hints; the legacy
    ``batch_size`` / ``num_workers`` / ``plan_cache`` kwargs keep working
    as deprecated aliases.  ``backend`` is the plan's dataset-backend
    hint: the storage the executor resolves string column references
    against (see :mod:`repro.data`), validated here exactly like
    ``plan_cache``.  ``kernel`` is the plan's sampler-kernel backend hint
    (``"auto"`` / ``"numpy"`` / ``"numba"``, see :mod:`repro.kernels`) —
    a modern hint, so passing it does not warn like the legacy knobs but
    validates identically.  Validation happens at planning time — through the
    config's one shared error path — so a bad knob raises a clear
    :class:`~repro.query.errors.PlanningError` (a ``QueryError``) instead
    of surfacing as a ``ValueError`` from deep inside the execution
    engine mid-sampling.
    """
    try:
        config = resolve_execution_config(
            config,
            "plan_query",
            stacklevel=3,
            batch_size=batch_size,
            num_workers=num_workers,
            plan_cache=plan_cache,
            kernel=kernel,
        )
    except ExecutionConfigError as exc:
        raise PlanningError(str(exc)) from None
    if backend is not None and not isinstance(backend, DatasetBackend):
        raise PlanningError(
            f"backend must be a repro.data.DatasetBackend or None, "
            f"got {backend!r}"
        )
    atoms = query.atoms()
    if not atoms:
        raise PlanningError("the WHERE clause references no predicates")

    if query.group_by is not None:
        if query.aggregate.kind is AggregateKind.SUM:
            raise PlanningError(
                "SUM with GROUP BY is not supported by the reproduction; "
                "use AVG, PERCENTAGE or COUNT"
            )
        group_key = query.group_by.key.canonical()
        mismatched = [
            atom
            for atom in atoms
            if atom.expression.canonical() != query.group_by.key.canonical()
        ]
        return QueryPlan(
            kind=PlanKind.GROUP_BY,
            query=query,
            atoms=atoms,
            notes={
                "group_key": group_key,
                "non_group_atoms": [a.key() for a in mismatched],
            },
            config=config,
            backend=backend,
        )

    if len(atoms) > 1:
        return QueryPlan(
            kind=PlanKind.MULTI_PREDICATE,
            query=query,
            atoms=atoms,
            config=config,
            backend=backend,
        )
    return QueryPlan(
        kind=PlanKind.SINGLE_PREDICATE,
        query=query,
        atoms=atoms,
        config=config,
        backend=backend,
    )
