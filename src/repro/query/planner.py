"""Query planner: decide which ABae variant answers a parsed query.

The decision tree is small:

* a ``GROUP BY`` clause → a group-by plan (single- vs multiple-oracle is
  decided at execution time from the registered group binding);
* more than one predicate atom in the WHERE clause → ABae-MultiPred;
* otherwise → plain single-predicate ABae.

``plan_query`` also performs the query-level validations that do not need
the binding context (e.g. group-by queries are only supported for AVG /
PERCENTAGE / COUNT aggregates).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.parallel import resolve_num_workers
from repro.query.ast import AggregateKind, PredicateAtom, Query
from repro.query.errors import PlanningError

__all__ = ["PlanKind", "QueryPlan", "plan_query"]


class PlanKind(enum.Enum):
    SINGLE_PREDICATE = "single_predicate"
    MULTI_PREDICATE = "multi_predicate"
    GROUP_BY = "group_by"


@dataclass
class QueryPlan:
    """The chosen execution strategy plus per-plan annotations.

    ``batch_size`` and ``num_workers`` are the plan's physical-execution
    hints: how many records the executor labels per oracle invocation batch
    (``None`` = whole draw sets at once, ``1`` = strictly sequential), and
    how many workers each batch is sharded across (``None`` = serial).
    ``plan_cache`` controls whether execution may reuse the process-wide
    proxy-scores / stratification caches (see
    :mod:`repro.core.stratification`); disabling it forces every trial to
    re-score and re-sort, which only matters when proxy score arrays are
    mutated in place between executions.  All three are pure execution
    knobs — estimates, CIs and call counts are bit-identical for every
    value — so the planner records them as part of the physical plan
    rather than the logical decision tree.
    """

    kind: PlanKind
    query: Query
    atoms: List[PredicateAtom] = field(default_factory=list)
    notes: Dict[str, object] = field(default_factory=dict)
    batch_size: Optional[int] = None
    num_workers: Optional[int] = None
    plan_cache: bool = True

    @property
    def budget(self) -> int:
        return self.query.oracle.limit

    @property
    def alpha(self) -> float:
        return self.query.alpha


def plan_query(
    query: Query,
    batch_size: Optional[int] = None,
    num_workers: Optional[int] = None,
    plan_cache: bool = True,
) -> QueryPlan:
    """Build a :class:`QueryPlan` for a parsed query.

    ``batch_size``, ``num_workers`` and ``plan_cache`` are attached to the
    plan as its physical-execution hints and validated here, so a bad knob
    raises a clear :class:`~repro.query.errors.PlanningError` (a
    ``QueryError``) at planning time instead of surfacing as a
    ``ValueError`` from deep inside ``batch_slices`` or the worker-pool
    layer mid-sampling.
    """
    if not isinstance(plan_cache, bool):
        raise PlanningError(
            f"plan_cache must be a boolean, got {plan_cache!r}"
        )
    if batch_size is not None:
        if (
            not isinstance(batch_size, (int, np.integer))
            or isinstance(batch_size, bool)
            or batch_size < 1
        ):
            raise PlanningError(
                f"batch_size must be a positive integer or None, got {batch_size!r}"
            )
    # Delegate to the engine's own validator so the planner and the sampler
    # APIs can never drift on what counts as a valid worker knob.
    try:
        resolve_num_workers(num_workers)
    except ValueError as exc:
        raise PlanningError(str(exc)) from None
    atoms = query.atoms()
    if not atoms:
        raise PlanningError("the WHERE clause references no predicates")

    if query.group_by is not None:
        if query.aggregate.kind is AggregateKind.SUM:
            raise PlanningError(
                "SUM with GROUP BY is not supported by the reproduction; "
                "use AVG, PERCENTAGE or COUNT"
            )
        group_key = query.group_by.key.canonical()
        mismatched = [
            atom
            for atom in atoms
            if atom.expression.canonical() != query.group_by.key.canonical()
        ]
        return QueryPlan(
            kind=PlanKind.GROUP_BY,
            query=query,
            atoms=atoms,
            notes={
                "group_key": group_key,
                "non_group_atoms": [a.key() for a in mismatched],
            },
            batch_size=batch_size,
            num_workers=num_workers,
            plan_cache=plan_cache,
        )

    if len(atoms) > 1:
        return QueryPlan(
            kind=PlanKind.MULTI_PREDICATE, query=query, atoms=atoms,
            batch_size=batch_size, num_workers=num_workers,
            plan_cache=plan_cache,
        )
    return QueryPlan(
        kind=PlanKind.SINGLE_PREDICATE, query=query, atoms=atoms,
        batch_size=batch_size, num_workers=num_workers,
        plan_cache=plan_cache,
    )
