"""Query planner: decide which ABae variant answers a parsed query.

The decision tree is small:

* a ``GROUP BY`` clause → a group-by plan (single- vs multiple-oracle is
  decided at execution time from the registered group binding);
* more than one predicate atom in the WHERE clause → ABae-MultiPred;
* otherwise → plain single-predicate ABae.

``plan_query`` also performs the query-level validations that do not need
the binding context (e.g. group-by queries are only supported for AVG /
PERCENTAGE / COUNT aggregates).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from repro.query.ast import AggregateKind, PredicateAtom, Query
from repro.query.errors import PlanningError

__all__ = ["PlanKind", "QueryPlan", "plan_query"]


class PlanKind(enum.Enum):
    SINGLE_PREDICATE = "single_predicate"
    MULTI_PREDICATE = "multi_predicate"
    GROUP_BY = "group_by"


@dataclass
class QueryPlan:
    """The chosen execution strategy plus per-plan annotations."""

    kind: PlanKind
    query: Query
    atoms: List[PredicateAtom] = field(default_factory=list)
    notes: Dict[str, object] = field(default_factory=dict)

    @property
    def budget(self) -> int:
        return self.query.oracle.limit

    @property
    def alpha(self) -> float:
        return self.query.alpha


def plan_query(query: Query) -> QueryPlan:
    """Build a :class:`QueryPlan` for a parsed query."""
    atoms = query.atoms()
    if not atoms:
        raise PlanningError("the WHERE clause references no predicates")

    if query.group_by is not None:
        if query.aggregate.kind is AggregateKind.SUM:
            raise PlanningError(
                "SUM with GROUP BY is not supported by the reproduction; "
                "use AVG, PERCENTAGE or COUNT"
            )
        group_key = query.group_by.key.canonical()
        mismatched = [
            atom
            for atom in atoms
            if atom.expression.canonical() != query.group_by.key.canonical()
        ]
        return QueryPlan(
            kind=PlanKind.GROUP_BY,
            query=query,
            atoms=atoms,
            notes={
                "group_key": group_key,
                "non_group_atoms": [a.key() for a in mismatched],
            },
        )

    if len(atoms) > 1:
        return QueryPlan(kind=PlanKind.MULTI_PREDICATE, query=query, atoms=atoms)
    return QueryPlan(kind=PlanKind.SINGLE_PREDICATE, query=query, atoms=atoms)
