"""Typed AST for the Figure-1 query language."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Union

__all__ = [
    "AggregateKind",
    "FunctionCall",
    "Aggregate",
    "PredicateAtom",
    "NotExpr",
    "AndExpr",
    "OrExpr",
    "PredicateNode",
    "GroupByClause",
    "OracleClause",
    "Query",
]


class AggregateKind(enum.Enum):
    """The aggregation functions ABae supports (plus PERCENTAGE sugar).

    ``PERCENTAGE`` appears in the paper's celeba query; it is the AVG of a
    0/1 expression and is planned identically to AVG.
    """

    AVG = "AVG"
    SUM = "SUM"
    COUNT = "COUNT"
    PERCENTAGE = "PERCENTAGE"


@dataclass(frozen=True)
class FunctionCall:
    """A call expression such as ``count_cars(frame)``.

    Arguments are kept as raw strings — the query layer never evaluates
    them; they only participate in the canonical key used to bind the
    expression to a registered statistic or oracle.
    """

    name: str
    args: tuple = ()

    def canonical(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}({', '.join(self.args)})"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.canonical()


@dataclass(frozen=True)
class Aggregate:
    """``AVG(expr)`` / ``SUM(expr)`` / ``COUNT(expr)`` / ``PERCENTAGE(expr)``."""

    kind: AggregateKind
    expression: FunctionCall

    def canonical(self) -> str:
        return f"{self.kind.value}({self.expression.canonical()})"


@dataclass(frozen=True)
class PredicateAtom:
    """A single predicate: a call/identifier, optionally compared to a literal.

    Examples: ``is_spam(text)``, ``hair_color(img) = 'blonde'``,
    ``count_cars(frame) > 0``.  The canonical key of the atom is what the
    :class:`~repro.query.executor.QueryContext` binds oracles and proxies to.
    """

    expression: FunctionCall
    comparator: Optional[str] = None
    literal: Optional[Union[str, float]] = None

    def __post_init__(self):
        if (self.comparator is None) != (self.literal is None):
            raise ValueError(
                "a PredicateAtom needs both a comparator and a literal, or neither"
            )

    def key(self) -> str:
        """Canonical binding key, e.g. ``"hair_color(img) = 'blonde'"``."""
        base = self.expression.canonical()
        if self.comparator is None:
            return base
        literal = self.literal
        if isinstance(literal, str):
            literal = f"'{literal}'"
        return f"{base} {self.comparator} {literal}"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.key()


@dataclass(frozen=True)
class NotExpr:
    """Logical negation of a predicate subtree."""

    operand: "PredicateNode"


@dataclass(frozen=True)
class AndExpr:
    """Conjunction of predicate subtrees (two or more)."""

    operands: tuple

    def __post_init__(self):
        if len(self.operands) < 2:
            raise ValueError("AndExpr requires at least two operands")


@dataclass(frozen=True)
class OrExpr:
    """Disjunction of predicate subtrees (two or more)."""

    operands: tuple

    def __post_init__(self):
        if len(self.operands) < 2:
            raise ValueError("OrExpr requires at least two operands")


PredicateNode = Union[PredicateAtom, NotExpr, AndExpr, OrExpr]


def predicate_atoms(node: PredicateNode) -> List[PredicateAtom]:
    """All atoms in a predicate tree, left to right."""
    if isinstance(node, PredicateAtom):
        return [node]
    if isinstance(node, NotExpr):
        return predicate_atoms(node.operand)
    if isinstance(node, (AndExpr, OrExpr)):
        atoms: List[PredicateAtom] = []
        for operand in node.operands:
            atoms.extend(predicate_atoms(operand))
        return atoms
    raise TypeError(f"not a predicate node: {node!r}")


@dataclass(frozen=True)
class GroupByClause:
    """``GROUP BY key`` — the key is a call or identifier."""

    key: FunctionCall

    def canonical(self) -> str:
        return self.key.canonical()


@dataclass(frozen=True)
class OracleClause:
    """``ORACLE LIMIT o USING proxy [, proxy...]``."""

    limit: int
    proxies: tuple

    def __post_init__(self):
        if self.limit <= 0:
            raise ValueError(f"ORACLE LIMIT must be positive, got {self.limit}")
        if not self.proxies:
            raise ValueError("ORACLE clause requires at least one proxy name")


@dataclass(frozen=True)
class Query:
    """A parsed Figure-1 query."""

    aggregate: Aggregate
    table: str
    predicate: PredicateNode
    oracle: OracleClause
    probability: float
    group_by: Optional[GroupByClause] = None

    def __post_init__(self):
        if not 0.0 < self.probability < 1.0:
            raise ValueError(
                f"WITH PROBABILITY must be strictly between 0 and 1, got {self.probability}"
            )

    @property
    def alpha(self) -> float:
        """The CI failure probability implied by WITH PROBABILITY."""
        return 1.0 - self.probability

    def atoms(self) -> List[PredicateAtom]:
        """All predicate atoms referenced by the WHERE clause."""
        return predicate_atoms(self.predicate)
