"""A from-scratch NumPy logistic regression.

Section 3.4: "ABae can combine proxies by sampling randomly in Stage 1 and
using these samples to train a logistic regression model using the proxies
as features and the predicate as the target."  Rather than depend on
scikit-learn (not available offline here), we implement a small, well-tested
batch gradient-descent logistic regression with L2 regularization.  It is
deliberately simple: pilot samples number in the hundreds-to-thousands and
feature counts equal the number of candidate proxies (a handful), so plain
full-batch gradient descent converges quickly.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.proxy.base import Proxy, validate_scores

__all__ = ["LogisticRegression", "LogisticProxy", "sigmoid"]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    z = np.asarray(z, dtype=float)
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegression:
    """Binary logistic regression trained with full-batch gradient descent.

    Parameters
    ----------
    learning_rate:
        Step size for gradient descent.
    max_iter:
        Maximum number of gradient steps.
    l2:
        L2 regularization strength (not applied to the intercept).
    tol:
        Stop early when the max absolute gradient component falls below this.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        max_iter: int = 2000,
        l2: float = 1e-4,
        tol: float = 1e-6,
    ):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if max_iter <= 0:
            raise ValueError(f"max_iter must be positive, got {max_iter}")
        if l2 < 0:
            raise ValueError(f"l2 must be non-negative, got {l2}")
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.l2 = l2
        self.tol = tol
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    # -- Fitting ------------------------------------------------------------------
    def fit(self, features: Sequence, labels: Sequence) -> "LogisticRegression":
        """Fit on an (n, d) feature matrix and binary labels of length n."""
        x = np.asarray(features, dtype=float)
        y = np.asarray(labels, dtype=float)
        if x.ndim == 1:
            x = x.reshape(-1, 1)
        if x.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {x.shape}")
        if y.ndim != 1 or y.shape[0] != x.shape[0]:
            raise ValueError(
                f"labels must be 1-D with length {x.shape[0]}, got shape {y.shape}"
            )
        if not np.all(np.isin(y, (0.0, 1.0))):
            raise ValueError("labels must be binary (0/1 or False/True)")

        n, d = x.shape
        # Degenerate but legal cases: all-positive or all-negative labels.
        # Gradient descent would push the intercept to +/- infinity; we just
        # fit the intercept to the empirical log-odds with light smoothing.
        positive_rate = y.mean()
        if positive_rate in (0.0, 1.0):
            smoothed = (y.sum() + 1.0) / (n + 2.0)
            self.coef_ = np.zeros(d)
            self.intercept_ = float(np.log(smoothed / (1.0 - smoothed)))
            self.n_iter_ = 0
            return self

        weights = np.zeros(d)
        intercept = 0.0
        for iteration in range(1, self.max_iter + 1):
            logits = x @ weights + intercept
            probs = sigmoid(logits)
            error = probs - y
            grad_w = x.T @ error / n + self.l2 * weights
            grad_b = float(error.mean())
            weights -= self.learning_rate * grad_w
            intercept -= self.learning_rate * grad_b
            self.n_iter_ = iteration
            if max(np.abs(grad_w).max(initial=0.0), abs(grad_b)) < self.tol:
                break

        self.coef_ = weights
        self.intercept_ = float(intercept)
        return self

    # -- Prediction ---------------------------------------------------------------
    def decision_function(self, features: Sequence) -> np.ndarray:
        """Raw logits for a feature matrix."""
        self._check_fitted()
        x = np.asarray(features, dtype=float)
        if x.ndim == 1:
            x = x.reshape(-1, 1)
        if x.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"expected {self.coef_.shape[0]} features, got {x.shape[1]}"
            )
        return x @ self.coef_ + self.intercept_

    def predict_proba(self, features: Sequence) -> np.ndarray:
        """Predicted probability of the positive class."""
        return sigmoid(self.decision_function(features))

    def predict(self, features: Sequence, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(features) >= threshold).astype(int)

    def _check_fitted(self) -> None:
        if self.coef_ is None:
            raise RuntimeError("LogisticRegression used before fit()")


class LogisticProxy(Proxy):
    """A proxy scoring records with a fitted :class:`LogisticRegression`.

    Wraps a fitted model and the dataset's (n, d) feature matrix (typically
    the stacked score vectors of the candidate proxies, Section 3.4).  The
    full score vector is computed lazily and cached; :meth:`scores_batch`
    runs the model over just the requested rows until the cache exists
    (stratification still needs the full vector, but subset consumers such
    as pilot feature extraction in
    :func:`repro.core.proxy_selection.combine_proxies` stay cheap).
    """

    def __init__(
        self,
        model: LogisticRegression,
        features: Sequence,
        name: str = "logistic_proxy",
    ):
        super().__init__(name=name)
        model._check_fitted()
        feats = np.asarray(features, dtype=float)
        if feats.ndim == 1:
            feats = feats.reshape(-1, 1)
        if feats.ndim != 2 or feats.shape[0] == 0:
            raise ValueError(
                f"features must be a non-empty 2-D matrix, got shape {feats.shape}"
            )
        self._model = model
        self._features = feats
        self._cached: Optional[np.ndarray] = None

    @property
    def model(self) -> LogisticRegression:
        return self._model

    def scores(self) -> np.ndarray:
        if self._cached is None:
            raw = np.clip(self._model.predict_proba(self._features), 0.0, 1.0)
            self._cached = validate_scores(raw, name=self._name)
            self._cached.setflags(write=False)
        return self._cached

    def scores_batch(self, record_indices) -> np.ndarray:
        """Run the model over only the requested rows (vectorized)."""
        idx = np.asarray(record_indices, dtype=np.int64)
        if self._cached is not None:
            return self._cached[idx]
        return np.clip(self._model.predict_proba(self._features[idx]), 0.0, 1.0)

    def __len__(self) -> int:
        return int(self._features.shape[0])
