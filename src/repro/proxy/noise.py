"""Proxies of controllable quality, derived from ground-truth labels.

The reproduction needs to emulate proxies ranging from excellent
(specialized MobileNetV2 on celeba) to mediocre (keyword rules on spam).
Two noise models are provided:

* :class:`NoisyLabelProxy` — the score is the true label pushed toward 0.5
  with Gaussian noise, parameterized by a single ``quality`` knob in [0, 1]
  where 1 is a perfectly separating proxy and 0 is uninformative.
* :class:`BetaNoiseProxy` — positive and negative records draw their scores
  from two Beta distributions; the overlap of the Betas controls quality.
  This matches how classifier scores actually look (skewed, bounded).
* :class:`RandomProxy` — scores independent of the label, the adversarial
  case the paper's correctness guarantee must survive.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.proxy.base import Proxy, validate_scores
from repro.stats.rng import RandomState

__all__ = ["NoisyLabelProxy", "BetaNoiseProxy", "RandomProxy"]


class NoisyLabelProxy(Proxy):
    """Label + Gaussian noise, squashed back into [0, 1].

    ``quality = 1`` gives scores equal to the label; ``quality = 0`` gives
    scores centred at 0.5 regardless of label.  In between, the score is
    ``0.5 + quality * (label - 0.5) + noise`` with noise scaled by
    ``(1 - quality)``, then clipped.
    """

    def __init__(
        self,
        labels: Sequence,
        quality: float = 0.8,
        noise_scale: float = 0.15,
        rng: Optional[RandomState] = None,
        name: str = "noisy_label_proxy",
    ):
        super().__init__(name=name)
        if not 0.0 <= quality <= 1.0:
            raise ValueError(f"quality must be in [0, 1], got {quality}")
        if noise_scale < 0:
            raise ValueError(f"noise_scale must be non-negative, got {noise_scale}")
        rng = rng or RandomState(0)
        y = np.asarray(labels).astype(float)
        if y.ndim != 1:
            raise ValueError("labels must be one-dimensional")
        noise = rng.normal(0.0, noise_scale * (1.0 - quality) + 1e-12, y.shape[0])
        raw = 0.5 + quality * (y - 0.5) + noise
        self._scores = validate_scores(np.clip(raw, 0.0, 1.0), name=name)
        self._scores.setflags(write=False)
        self._quality = quality

    @property
    def quality(self) -> float:
        return self._quality

    def scores(self) -> np.ndarray:
        return self._scores


class BetaNoiseProxy(Proxy):
    """Scores drawn from class-conditional Beta distributions.

    Positive records draw from ``Beta(a_pos, b_pos)`` (right-skewed by
    default) and negative records from ``Beta(a_neg, b_neg)`` (left-skewed).
    Widening the overlap between the two distributions lowers proxy quality
    smoothly, which is how we match the informativeness of the paper's six
    real proxies without their underlying models.
    """

    def __init__(
        self,
        labels: Sequence,
        a_pos: float = 6.0,
        b_pos: float = 2.0,
        a_neg: float = 2.0,
        b_neg: float = 6.0,
        rng: Optional[RandomState] = None,
        name: str = "beta_noise_proxy",
    ):
        super().__init__(name=name)
        for param, value in (
            ("a_pos", a_pos),
            ("b_pos", b_pos),
            ("a_neg", a_neg),
            ("b_neg", b_neg),
        ):
            if value <= 0:
                raise ValueError(f"{param} must be positive, got {value}")
        rng = rng or RandomState(0)
        y = np.asarray(labels).astype(bool)
        if y.ndim != 1:
            raise ValueError("labels must be one-dimensional")
        scores = np.empty(y.shape[0], dtype=float)
        num_pos = int(y.sum())
        num_neg = y.shape[0] - num_pos
        if num_pos:
            scores[y] = rng.beta(a_pos, b_pos, num_pos)
        if num_neg:
            scores[~y] = rng.beta(a_neg, b_neg, num_neg)
        self._scores = validate_scores(scores, name=name)
        self._scores.setflags(write=False)

    def scores(self) -> np.ndarray:
        return self._scores


class RandomProxy(Proxy):
    """Scores drawn uniformly at random, independent of the predicate.

    The paper guarantees correctness regardless of proxy quality; this is
    the proxy the tests use to confirm that guarantee (ABae with a useless
    proxy should roughly match uniform sampling, never break).
    """

    def __init__(
        self,
        num_records: int,
        rng: Optional[RandomState] = None,
        name: str = "random_proxy",
    ):
        super().__init__(name=name)
        if num_records <= 0:
            raise ValueError(f"num_records must be positive, got {num_records}")
        rng = rng or RandomState(0)
        self._scores = validate_scores(rng.uniform(0.0, 1.0, num_records), name=name)
        self._scores.setflags(write=False)

    def scores(self) -> np.ndarray:
        return self._scores
