"""A TASTI-like embedding-index proxy.

The video datasets in the paper (night-street, taipei) use TASTI [35] as
the proxy: a small set of records is labelled with the expensive oracle,
every record is embedded with a cheap embedding model, and a record's proxy
score is derived from the labels of its nearest labelled neighbours in
embedding space.  We reproduce that mechanism over synthetic embeddings:

* the dataset generator produces an embedding per record whose geometry is
  correlated with the ground-truth label (positives cluster);
* :class:`EmbeddingIndexProxy` picks ``num_reps`` representative records,
  looks up their labels (this is the only oracle cost the proxy incurs, and
  it is charged to the provided oracle), and scores every record by the
  distance-weighted fraction of positive representatives among its k nearest
  representatives.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.proxy.base import Proxy, validate_scores
from repro.stats.rng import RandomState

__all__ = ["EmbeddingIndexProxy"]


class EmbeddingIndexProxy(Proxy):
    """kNN-over-representatives proxy (TASTI-style).

    Parameters
    ----------
    embeddings:
        (n, d) array of per-record embeddings.
    representative_labels:
        Ground-truth boolean labels *for the representative records only*;
        alternatively pass ``oracle`` and the proxy will query it for the
        chosen representatives (charging the oracle's usual cost).
    num_reps:
        Number of representative records to label.
    k:
        Number of nearest representatives used to score each record.
    """

    def __init__(
        self,
        embeddings: Sequence,
        oracle=None,
        labels: Optional[Sequence] = None,
        num_reps: int = 100,
        k: int = 8,
        rng: Optional[RandomState] = None,
        name: str = "embedding_index_proxy",
    ):
        super().__init__(name=name)
        emb = np.asarray(embeddings, dtype=float)
        if emb.ndim != 2:
            raise ValueError(f"embeddings must be 2-D (n, d), got shape {emb.shape}")
        n = emb.shape[0]
        if n == 0:
            raise ValueError("embeddings must contain at least one record")
        if num_reps <= 0:
            raise ValueError(f"num_reps must be positive, got {num_reps}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if oracle is None and labels is None:
            raise ValueError("provide either an oracle or a full label array")

        rng = rng or RandomState(0)
        num_reps = min(num_reps, n)
        k = min(k, num_reps)
        rep_indices = np.sort(rng.choice(np.arange(n), size=num_reps, replace=False))

        if oracle is not None:
            rep_labels = np.array(
                [bool(oracle(int(idx))) for idx in rep_indices], dtype=float
            )
        else:
            label_arr = np.asarray(labels).astype(float)
            if label_arr.shape[0] != n:
                raise ValueError(
                    "labels must cover every record when no oracle is given"
                )
            rep_labels = label_arr[rep_indices]

        rep_embeddings = emb[rep_indices]
        scores = self._knn_scores(emb, rep_embeddings, rep_labels, k)
        self._scores = validate_scores(scores, name=name)
        self._scores.setflags(write=False)
        self._rep_indices = rep_indices
        self._k = k

    @property
    def representative_indices(self) -> np.ndarray:
        """Indices of the records that were labelled to build the index."""
        return np.array(self._rep_indices)

    @property
    def k(self) -> int:
        return self._k

    def scores(self) -> np.ndarray:
        return self._scores

    def scores_batch(self, record_indices) -> np.ndarray:
        """Vectorized subset lookup into the precomputed kNN scores."""
        return self._scores[np.asarray(record_indices, dtype=np.int64)]

    @staticmethod
    def _knn_scores(
        embeddings: np.ndarray,
        rep_embeddings: np.ndarray,
        rep_labels: np.ndarray,
        k: int,
    ) -> np.ndarray:
        """Distance-weighted positive fraction among the k nearest representatives."""
        # Pairwise squared distances, computed blockwise to bound memory on
        # large datasets (the paper's video datasets have ~1M frames).
        n = embeddings.shape[0]
        scores = np.empty(n, dtype=float)
        block = 4096
        rep_sq = np.sum(rep_embeddings**2, axis=1)
        for start in range(0, n, block):
            stop = min(start + block, n)
            chunk = embeddings[start:stop]
            dists = (
                np.sum(chunk**2, axis=1)[:, None]
                - 2.0 * chunk @ rep_embeddings.T
                + rep_sq[None, :]
            )
            np.maximum(dists, 0.0, out=dists)
            nearest = np.argpartition(dists, kth=min(k - 1, dists.shape[1] - 1), axis=1)[
                :, :k
            ]
            row_idx = np.arange(stop - start)[:, None]
            near_d = np.sqrt(dists[row_idx, nearest])
            weights = 1.0 / (near_d + 1e-6)
            weights /= weights.sum(axis=1, keepdims=True)
            scores[start:stop] = np.sum(weights * rep_labels[nearest], axis=1)
        return np.clip(scores, 0.0, 1.0)
