"""Proxy calibration utilities.

The stratification argument in the paper assumes a *monotone* relationship
between proxy score and the probability of matching the predicate (a "mild
monotonicity assumption", Section 1).  Calibration does not change ABae's
correctness, but a calibrated proxy makes the MultiPred score algebra
(products for AND, etc.) behave like probabilities, which is the regime
where that algebra is exact.  We provide:

* :class:`PlattCalibrator` — a one-dimensional logistic (Platt) fit mapping
  raw scores to calibrated probabilities, trained on labelled pilot samples;
* :func:`reliability_curve` — binned (score, empirical positive rate) pairs
  for diagnostics;
* :func:`brier_score` — the standard calibration quality metric.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.proxy.base import Proxy, PrecomputedProxy
from repro.proxy.logistic import LogisticRegression

__all__ = ["PlattCalibrator", "reliability_curve", "brier_score"]


class PlattCalibrator:
    """Platt scaling: fit ``sigmoid(a * score + b)`` to labelled examples."""

    def __init__(self, max_iter: int = 500, learning_rate: float = 0.5):
        self._model = LogisticRegression(
            max_iter=max_iter, learning_rate=learning_rate
        )
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(
        self, scores: Sequence[float], labels: Sequence[bool]
    ) -> "PlattCalibrator":
        """Fit the calibration map on (score, label) pairs from pilot samples."""
        x = np.asarray(scores, dtype=float).reshape(-1, 1)
        y = np.asarray(labels, dtype=float)
        if x.shape[0] != y.shape[0]:
            raise ValueError("scores and labels must have the same length")
        if x.shape[0] < 2:
            raise ValueError("calibration requires at least two labelled examples")
        self._model.fit(x, y)
        self._fitted = True
        return self

    def transform(self, scores: Sequence[float]) -> np.ndarray:
        """Map raw scores to calibrated probabilities."""
        if not self._fitted:
            raise RuntimeError("PlattCalibrator.transform called before fit")
        x = np.asarray(scores, dtype=float).reshape(-1, 1)
        return self._model.predict_proba(x)

    def calibrate_proxy(self, proxy: Proxy, name: str = None) -> PrecomputedProxy:
        """Return a new proxy whose scores are the calibrated probabilities."""
        calibrated = self.transform(proxy.scores())
        return PrecomputedProxy(
            np.clip(calibrated, 0.0, 1.0),
            name=name or f"calibrated({proxy.name})",
        )


def reliability_curve(
    scores: Sequence[float], labels: Sequence[bool], num_bins: int = 10
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Binned calibration curve.

    Returns (bin_centers, empirical_positive_rate, bin_counts); bins with no
    members report a positive rate of NaN so plots can skip them.
    """
    if num_bins <= 0:
        raise ValueError(f"num_bins must be positive, got {num_bins}")
    s = np.asarray(scores, dtype=float)
    y = np.asarray(labels, dtype=float)
    if s.shape != y.shape:
        raise ValueError("scores and labels must have the same shape")
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    centers = (edges[:-1] + edges[1:]) / 2.0
    rates = np.full(num_bins, np.nan)
    counts = np.zeros(num_bins, dtype=int)
    bin_index = np.clip(np.digitize(s, edges[1:-1]), 0, num_bins - 1)
    for b in range(num_bins):
        members = bin_index == b
        counts[b] = int(members.sum())
        if counts[b] > 0:
            rates[b] = float(y[members].mean())
    return centers, rates, counts


def brier_score(scores: Sequence[float], labels: Sequence[bool]) -> float:
    """Mean squared difference between scores and binary outcomes."""
    s = np.asarray(scores, dtype=float)
    y = np.asarray(labels, dtype=float)
    if s.shape != y.shape:
        raise ValueError("scores and labels must have the same shape")
    if s.size == 0:
        raise ValueError("brier_score requires at least one example")
    return float(np.mean((s - y) ** 2))
