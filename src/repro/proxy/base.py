"""Proxy interface.

Proxies are assumed cheap enough to run over the whole dataset (Section
2.1), so the core interface is "give me the score vector for all records".
Scores must lie in [0, 1]; the constructor validates this once so the
stratification code can rely on it.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Proxy",
    "PrecomputedProxy",
    "CallableProxy",
    "BackedProxy",
    "validate_scores",
    "memoized_proxy_object",
]


def memoized_proxy_object(holder, raw, name: str = "bound_proxy") -> "Proxy":
    """Wrap raw scores as a :class:`Proxy`, memoized on ``holder``.

    Bindings and group specs hold proxies either as :class:`Proxy` objects
    (returned as-is), as raw score sequences, or as dataset-backend column
    handles.  Wrapping the raw scores freshly per execution would defeat
    the identity-keyed stratification cache, so the wrapper is stored on
    ``holder`` (as ``_proxy_object``) and reused until the raw reference
    is swapped out.  Column handles wrap into a :class:`BackedProxy`,
    everything else into a :class:`PrecomputedProxy`.
    """
    if isinstance(raw, Proxy):
        return raw
    cached = getattr(holder, "_proxy_object", None)
    if cached is not None and cached[0] is raw:
        return cached[1]
    from repro.data.backend import is_column_handle

    if is_column_handle(raw):
        wrapped = BackedProxy(raw, name=name)
    else:
        wrapped = PrecomputedProxy(np.asarray(raw, dtype=float), name=name)
    holder._proxy_object = (raw, wrapped)
    return wrapped


def validate_scores(scores: np.ndarray, name: str = "proxy") -> np.ndarray:
    """Validate and normalize a proxy score vector (1-D, finite, within [0, 1])."""
    arr = np.asarray(scores, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name}: scores must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name}: scores must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name}: scores contain NaN or infinity")
    if arr.min() < 0.0 or arr.max() > 1.0:
        raise ValueError(
            f"{name}: scores must lie in [0, 1], got range "
            f"[{arr.min():.4f}, {arr.max():.4f}]"
        )
    return arr


class Proxy(abc.ABC):
    """Base class for proxy models."""

    def __init__(self, name: str = "proxy"):
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    @abc.abstractmethod
    def scores(self) -> np.ndarray:
        """Per-record scores in [0, 1] for the whole dataset."""

    def score(self, record_index: int) -> float:
        """Score for a single record (default: index into :meth:`scores`)."""
        return float(self.scores()[record_index])

    def scores_batch(self, record_indices: Sequence[int]) -> np.ndarray:
        """Scores for a subset of records, aligned with ``record_indices``.

        The default fancy-indexes the full :meth:`scores` vector, which is
        already vectorized for precomputed proxies; lazily-computed proxies
        can override this to score only the requested records.
        """
        return self.scores()[np.asarray(record_indices, dtype=np.int64)]

    def __len__(self) -> int:
        return int(self.scores().shape[0])

    def correlation_with(self, labels: Sequence) -> float:
        """Pearson correlation between scores and binary labels.

        A diagnostic only — correctness never depends on it — but useful in
        examples and tests to confirm a proxy is informative (or not).
        Returns 0.0 when either side is constant.
        """
        s = self.scores()
        y = np.asarray(labels, dtype=float)
        if y.shape != s.shape:
            raise ValueError(
                f"labels shape {y.shape} does not match scores shape {s.shape}"
            )
        if np.std(s) == 0 or np.std(y) == 0:
            return 0.0
        return float(np.corrcoef(s, y)[0, 1])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self._name!r}, n={len(self)})"


class PrecomputedProxy(Proxy):
    """A proxy whose scores were computed ahead of time (the common case)."""

    def __init__(self, scores: Sequence[float], name: str = "precomputed_proxy"):
        super().__init__(name=name)
        self._scores = validate_scores(np.asarray(scores, dtype=float), name=name)
        self._scores.setflags(write=False)

    def scores(self) -> np.ndarray:
        return self._scores


class BackedProxy(Proxy):
    """A proxy reading its scores from a dataset-backend column.

    Construct from a :class:`~repro.data.backend.DatasetBackend` plus a
    column name, or directly from a
    :class:`~repro.data.backend.ColumnHandle`::

        proxy = BackedProxy(backend, "proxy_score")
        proxy = BackedProxy(backend.column("proxy_score"))

    :meth:`scores_batch` gathers only the requested records through the
    backend — the samplers' access pattern, which never materializes the
    column.  :meth:`scores` (needed once per stratification) materializes
    through the handle: a dense read-only array for the in-memory
    backend, the lazily-paged memmap view for the mmap backend, and one
    dense allocation for the chunked backend.  Either way the full score
    vector is validated exactly once, on first access.
    """

    def __init__(self, source, column: str = None, name: str = None):
        from repro.data.backend import DatasetBackend, is_column_handle

        if isinstance(source, DatasetBackend):
            if column is None:
                raise ValueError(
                    "BackedProxy(backend) requires the column name to read "
                    "scores from, e.g. BackedProxy(backend, 'proxy_score')"
                )
            handle = source.column(column)
        elif is_column_handle(source):
            if column is not None:
                raise ValueError(
                    "pass either a backend plus column name or a column "
                    "handle, not both"
                )
            handle = source
        else:
            raise TypeError(
                f"BackedProxy expects a DatasetBackend or ColumnHandle, "
                f"got {type(source).__name__}"
            )
        super().__init__(name=name if name is not None else f"backed:{handle.name}")
        self._handle = handle
        self._cached: np.ndarray = None

    @property
    def handle(self):
        """The backing column handle."""
        return self._handle

    def scores(self) -> np.ndarray:
        if self._cached is None:
            arr = np.asarray(self._handle.to_numpy(), dtype=float)
            self._cached = validate_scores(arr, name=self._name)
            if self._cached.flags.writeable:
                self._cached.setflags(write=False)
        return self._cached

    def scores_batch(self, record_indices: Sequence[int]) -> np.ndarray:
        idx = np.asarray(record_indices, dtype=np.int64)
        if self._cached is not None:
            return self._cached[idx]
        if idx.size == 0:
            return np.empty(0, dtype=float)
        return validate_scores(
            np.asarray(self._handle.gather(idx), dtype=float), name=self._name
        )

    def __len__(self) -> int:
        return len(self._handle)


class CallableProxy(Proxy):
    """A proxy computed lazily from a per-record function, then cached."""

    def __init__(
        self,
        fn: Callable[[int], float],
        num_records: int,
        name: str = "callable_proxy",
    ):
        super().__init__(name=name)
        if num_records <= 0:
            raise ValueError(f"num_records must be positive, got {num_records}")
        self._fn = fn
        self._num_records = num_records
        self._cached: np.ndarray = None

    def scores(self) -> np.ndarray:
        if self._cached is None:
            raw = np.array(
                [float(self._fn(i)) for i in range(self._num_records)], dtype=float
            )
            self._cached = validate_scores(raw, name=self._name)
            self._cached.setflags(write=False)
        return self._cached

    def scores_batch(self, record_indices: Sequence[int]) -> np.ndarray:
        """Score only the requested records, without materializing the rest.

        Once the full vector has been cached by :meth:`scores`, batches are
        served from it; before that, only the requested records pay the
        per-record function cost.
        """
        idx = np.asarray(record_indices, dtype=np.int64)
        if self._cached is not None:
            return self._cached[idx]
        if idx.size == 0:
            return np.empty(0, dtype=float)
        raw = np.array([float(self._fn(int(i))) for i in idx], dtype=float)
        return validate_scores(raw, name=self._name)
