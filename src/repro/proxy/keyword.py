"""Keyword-rule proxies (the trec05p spam proxy).

The paper's spam experiments use "a manual, keyword-based proxy based on
the presence of words (e.g. 'money', 'please')".  We reproduce that: a
:class:`KeywordProxy` scores a document by the (optionally weighted)
fraction of its keyword list that appears in the document's token set.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

import numpy as np

from repro.proxy.base import Proxy, validate_scores

__all__ = ["KeywordProxy", "tokenize"]


def tokenize(text: str) -> List[str]:
    """Lowercase, punctuation-insensitive whitespace tokenizer."""
    cleaned = []
    for char in text.lower():
        if char.isalnum() or char in "$'":
            cleaned.append(char)
        else:
            cleaned.append(" ")
    return [token for token in "".join(cleaned).split() if token]


class KeywordProxy(Proxy):
    """Score documents by weighted keyword hits.

    ``keywords`` is either a list of keywords (weight 1 each) or a mapping
    of keyword to weight.  A document's raw score is the sum of weights of
    keywords present in it, normalized by the total weight, so scores land
    in [0, 1] with 1 meaning "every keyword present".
    """

    def __init__(
        self,
        documents: Sequence[Union[str, Sequence[str]]],
        keywords: Union[Sequence[str], Dict[str, float]],
        name: str = "keyword_proxy",
    ):
        super().__init__(name=name)
        if isinstance(keywords, dict):
            weights = {kw.lower(): float(w) for kw, w in keywords.items()}
        else:
            weights = {kw.lower(): 1.0 for kw in keywords}
        if not weights:
            raise ValueError("KeywordProxy requires at least one keyword")
        if any(w < 0 for w in weights.values()):
            raise ValueError("keyword weights must be non-negative")
        total_weight = sum(weights.values())
        if total_weight == 0:
            raise ValueError("keyword weights must not all be zero")

        scores = np.empty(len(documents), dtype=float)
        for i, doc in enumerate(documents):
            tokens = self._token_set(doc)
            hit_weight = sum(w for kw, w in weights.items() if kw in tokens)
            scores[i] = hit_weight / total_weight
        self._scores = validate_scores(scores, name=name)
        self._scores.setflags(write=False)
        self._keywords = weights

    @property
    def keywords(self) -> Dict[str, float]:
        return dict(self._keywords)

    def scores(self) -> np.ndarray:
        return self._scores

    def scores_batch(self, record_indices: Sequence[int]) -> np.ndarray:
        """Vectorized subset lookup into the precomputed keyword scores."""
        return self._scores[np.asarray(record_indices, dtype=np.int64)]

    @staticmethod
    def _token_set(doc: Union[str, Iterable[str]]) -> set:
        if isinstance(doc, str):
            return set(tokenize(doc))
        return {str(token).lower() for token in doc}
