"""Proxy substrate: cheap approximations of the expensive predicate.

A proxy assigns every record a score in [0, 1] that is (ideally) correlated
with the oracle predicate.  The paper uses specialized MobileNetV2 models,
a TASTI embedding index, keyword rules, and NLTK sentiment as proxies; what
the sampling algorithm consumes is only the score vector.  This package
provides:

* :class:`~repro.proxy.base.Proxy` — the interface (scores for all records,
  exhaustively precomputable because proxies are cheap);
* :class:`~repro.proxy.base.BackedProxy` — scores read from a
  :mod:`repro.data` dataset backend column (in-memory, mmap or chunked),
  gathering per batch instead of materializing;
* :class:`~repro.proxy.noise.NoisyLabelProxy` and
  :class:`~repro.proxy.noise.BetaNoiseProxy` — proxies of controllable
  quality derived from the ground-truth labels, used to emulate the real
  datasets' proxy informativeness;
* :class:`~repro.proxy.keyword.KeywordProxy` — the trec05p-style rule
  proxy over token lists;
* :mod:`~repro.proxy.calibration` — Platt-style calibration and reliability
  diagnostics;
* :class:`~repro.proxy.logistic.LogisticRegression` — a from-scratch NumPy
  logistic regression used for proxy combination (Section 3.4);
* :class:`~repro.proxy.embedding.EmbeddingIndexProxy` — a TASTI-like kNN
  proxy over (synthetic) embeddings.
"""

from repro.proxy.base import Proxy, PrecomputedProxy, CallableProxy, BackedProxy
from repro.proxy.noise import NoisyLabelProxy, BetaNoiseProxy, RandomProxy
from repro.proxy.keyword import KeywordProxy
from repro.proxy.calibration import PlattCalibrator, reliability_curve, brier_score
from repro.proxy.logistic import LogisticProxy, LogisticRegression
from repro.proxy.embedding import EmbeddingIndexProxy

__all__ = [
    "Proxy",
    "PrecomputedProxy",
    "CallableProxy",
    "BackedProxy",
    "NoisyLabelProxy",
    "BetaNoiseProxy",
    "RandomProxy",
    "KeywordProxy",
    "PlattCalibrator",
    "reliability_curve",
    "brier_score",
    "LogisticRegression",
    "LogisticProxy",
    "EmbeddingIndexProxy",
]
