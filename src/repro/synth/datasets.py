"""Generators emulating the paper's six evaluation datasets (Table 2).

Each generator draws, per record:

* a hidden ground-truth predicate label with the dataset's positive rate,
* a statistic value from a distribution shaped like the dataset's statistic
  (car counts, link counts, star ratings, smile indicator, ...), and
* a proxy score whose informativeness matches the dataset's proxy
  (TASTI index, specialized MobileNetV2, keyword rules, NLTK sentiment),
  modelled with class-conditional Beta distributions whose overlap controls
  quality (see :class:`repro.proxy.noise.BetaNoiseProxy`).

The real datasets are large (up to 1.19M frames); by default the emulators
are scaled down to ``DEFAULT_SIZE`` records so that 1,000-trial experiment
sweeps finish on a laptop, but the original sizes are preserved in the
specs and any size can be requested explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

from repro.dataset.catalog import Catalog, DatasetEntry
from repro.dataset.table import Table
from repro.proxy.noise import BetaNoiseProxy
from repro.stats.rng import RandomState
from repro.synth.base import Scenario

__all__ = [
    "DatasetSpec",
    "DATASET_SPECS",
    "DATASET_NAMES",
    "make_dataset",
    "default_catalog",
    "to_backend",
]

DEFAULT_SIZE = 50_000


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one emulated dataset."""

    name: str
    paper_size: int
    positive_rate: float
    predicate: str
    target_dnn: str
    proxy_model: str
    # Class-conditional Beta parameters controlling proxy informativeness.
    proxy_beta_pos: tuple
    proxy_beta_neg: tuple
    statistic_description: str


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "night-street": DatasetSpec(
        name="night-street",
        paper_size=973_136,
        positive_rate=0.42,
        predicate="At least one car",
        target_dnn="Mask R-CNN",
        proxy_model="TASTI embedding index",
        proxy_beta_pos=(8.0, 2.0),
        proxy_beta_neg=(2.0, 8.0),
        statistic_description="number of cars in the frame",
    ),
    "taipei": DatasetSpec(
        name="taipei",
        paper_size=1_187_850,
        positive_rate=0.52,
        predicate="At least one car",
        target_dnn="Mask R-CNN",
        proxy_model="TASTI embedding index",
        proxy_beta_pos=(7.0, 2.5),
        proxy_beta_neg=(2.5, 7.0),
        statistic_description="number of cars in the frame",
    ),
    "celeba": DatasetSpec(
        name="celeba",
        paper_size=202_599,
        positive_rate=0.15,
        predicate="Blonde hair",
        target_dnn="Human labels",
        proxy_model="MobileNetV2 (specialized)",
        proxy_beta_pos=(9.0, 2.0),
        proxy_beta_neg=(1.5, 9.0),
        statistic_description="smiling indicator (0/1)",
    ),
    "amazon-movies": DatasetSpec(
        name="amazon-movies",
        paper_size=35_815,
        positive_rate=0.26,
        predicate="Poster contains a woman",
        target_dnn="MT-CNN + VGGFace",
        proxy_model="MobileNetV2 (specialized)",
        proxy_beta_pos=(6.0, 2.5),
        proxy_beta_neg=(2.0, 6.0),
        statistic_description="movie rating (1-5 stars)",
    ),
    "trec05p": DatasetSpec(
        name="trec05p",
        paper_size=52_578,
        positive_rate=0.57,
        predicate="Is spam",
        target_dnn="Human labels",
        proxy_model="Keyword rules",
        proxy_beta_pos=(5.0, 2.0),
        proxy_beta_neg=(2.0, 5.0),
        statistic_description="number of links in the email",
    ),
    "amazon-office": DatasetSpec(
        name="amazon-office",
        paper_size=800_144,
        positive_rate=0.38,
        predicate="Strong positive sentiment",
        target_dnn="FlairNLP BERT sentiment",
        proxy_model="NLTK (VADER) sentiment",
        proxy_beta_pos=(5.0, 2.0),
        proxy_beta_neg=(2.0, 5.0),
        statistic_description="review rating (1-5 stars)",
    ),
}

DATASET_NAMES = tuple(DATASET_SPECS)


# ---------------------------------------------------------------------------
# Per-dataset statistic generators
# ---------------------------------------------------------------------------


def _car_counts(
    labels: np.ndarray, rng: RandomState, scores: np.ndarray, mean_cars: float
) -> np.ndarray:
    """Car counts: zero when no car present; 1 + Poisson otherwise.

    Frames that look more "car-like" to the proxy (higher score) also tend to
    contain more cars, as they do in the real video data, so the Poisson rate
    grows with the proxy score.  This is what gives the per-stratum means and
    variances the spread the paper's datasets exhibit.
    """
    counts = np.zeros(labels.shape[0], dtype=float)
    num_pos = int(labels.sum())
    if num_pos:
        rates = (mean_cars - 1.0) * (0.5 + scores[labels])
        counts[labels] = 1.0 + rng.poisson(rates, num_pos)
    return counts


def _binary_attribute(
    labels: np.ndarray, rng: RandomState, scores: np.ndarray,
    rate_if_positive: float, rate_if_negative: float,
) -> np.ndarray:
    """A 0/1 statistic (e.g. is_smiling) whose rate depends on the predicate."""
    rates = np.where(labels, rate_if_positive, rate_if_negative)
    return (rng.random(labels.shape[0]) < rates).astype(float)


def _star_ratings(
    labels: np.ndarray, rng: RandomState, scores: np.ndarray,
    mean_if_positive: float, mean_if_negative: float,
) -> np.ndarray:
    """1-5 star ratings centred differently for matching / non-matching records.

    Ratings drift mildly with the proxy score (clearly positive reviews score
    higher on both the cheap and the expensive sentiment model).
    """
    means = np.where(labels, mean_if_positive, mean_if_negative) + 0.6 * (scores - 0.5)
    raw = rng.normal(means, 0.9)
    return np.clip(np.round(raw), 1.0, 5.0)


def _link_counts(labels: np.ndarray, rng: RandomState, scores: np.ndarray) -> np.ndarray:
    """Number of links in an email: heavier tail for spam.

    Spammier-looking emails (higher keyword-proxy score) carry more links,
    matching the real corpus where keyword density and link count co-vary.
    """
    counts = np.empty(labels.shape[0], dtype=float)
    num_pos = int(labels.sum())
    num_neg = labels.shape[0] - num_pos
    if num_pos:
        rates = 2.0 + 6.0 * scores[labels]
        counts[labels] = rng.poisson(rates, num_pos) + rng.poisson(1.0, num_pos)
    if num_neg:
        counts[~labels] = rng.poisson(0.8, num_neg)
    return counts


_STATISTIC_GENERATORS: Dict[str, Callable[..., np.ndarray]] = {
    "night-street": lambda labels, rng, scores: _car_counts(labels, rng, scores, mean_cars=2.6),
    "taipei": lambda labels, rng, scores: _car_counts(labels, rng, scores, mean_cars=3.4),
    "celeba": lambda labels, rng, scores: _binary_attribute(labels, rng, scores, 0.55, 0.45),
    "amazon-movies": lambda labels, rng, scores: _star_ratings(labels, rng, scores, 3.9, 3.4),
    "trec05p": _link_counts,
    "amazon-office": lambda labels, rng, scores: _star_ratings(labels, rng, scores, 4.6, 3.2),
}


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------


def make_dataset(
    name: str,
    seed: int = 0,
    size: Optional[int] = None,
) -> Scenario:
    """Build the named scenario.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES`, or ``"synthetic"`` for the fully
        parametric generator used in several of the paper's synthetic
        experiments (Bernoulli predicate, normal statistic, noisy proxy).
    seed:
        Seed for the generator; two calls with the same (name, seed, size)
        produce identical scenarios.
    size:
        Number of records; defaults to :data:`DEFAULT_SIZE` (the paper's
        full sizes are recorded in the spec but are unnecessarily large for
        the sampling experiments, which never touch most records).
    """
    if name == "synthetic":
        return make_synthetic_scenario(
            seed=seed, size=DEFAULT_SIZE if size is None else size
        )
    try:
        spec = DATASET_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; expected one of {list(DATASET_NAMES) + ['synthetic']}"
        ) from None
    size = DEFAULT_SIZE if size is None else size
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")

    rng = RandomState(seed)
    label_rng, stat_rng, proxy_rng = rng.spawn(3)

    labels = label_rng.random(size) < spec.positive_rate
    # Guarantee at least one positive so the query answer is defined.
    if not labels.any():
        labels[int(label_rng.integers(0, size))] = True
    proxy = BetaNoiseProxy(
        labels,
        a_pos=spec.proxy_beta_pos[0],
        b_pos=spec.proxy_beta_pos[1],
        a_neg=spec.proxy_beta_neg[0],
        b_neg=spec.proxy_beta_neg[1],
        rng=proxy_rng,
        name=f"{name}_proxy",
    )
    statistic = _STATISTIC_GENERATORS[name](labels, stat_rng, proxy.scores())
    table = Table(
        {
            "statistic": statistic,
            "proxy_score": proxy.scores(),
        },
        name=name,
    )
    return Scenario(
        name=name,
        labels=labels,
        statistic_values=statistic,
        proxy=proxy,
        table=table,
        description=(
            f"{spec.predicate} (oracle: {spec.target_dnn}, proxy: {spec.proxy_model}); "
            f"statistic: {spec.statistic_description}"
        ),
        extra={"spec": spec},
    )


def make_synthetic_scenario(
    seed: int = 0,
    size: int = DEFAULT_SIZE,
    num_strata: int = 5,
    positive_rates: Optional[np.ndarray] = None,
    statistic_means: Optional[np.ndarray] = None,
    statistic_stds: Optional[np.ndarray] = None,
) -> Scenario:
    """The parametric synthetic generator used by several paper experiments.

    Records are split into ``num_strata`` latent groups; each group has its
    own predicate positive rate (drawn from a Beta(2, 5) by default, as in
    the Figure-6 synthetic) and its own statistic distribution (normal).
    The proxy score for a record equals its group's positive rate plus a
    little noise, so proxy-quantile stratification approximately recovers
    the latent groups — the regime the theory analyzes.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if num_strata <= 0:
        raise ValueError(f"num_strata must be positive, got {num_strata}")
    rng = RandomState(seed)
    p_rng, label_rng, stat_rng, noise_rng = rng.spawn(4)

    if positive_rates is None:
        positive_rates = np.sort(p_rng.beta(2.0, 5.0, num_strata))
    else:
        positive_rates = np.asarray(positive_rates, dtype=float)
        num_strata = positive_rates.shape[0]
    if statistic_means is None:
        statistic_means = np.linspace(1.0, 3.0, num_strata)
    else:
        statistic_means = np.asarray(statistic_means, dtype=float)
    if statistic_stds is None:
        statistic_stds = np.linspace(0.5, 1.5, num_strata)
    else:
        statistic_stds = np.asarray(statistic_stds, dtype=float)
    if not (len(positive_rates) == len(statistic_means) == len(statistic_stds)):
        raise ValueError("positive_rates, statistic_means and statistic_stds must align")

    group_of = np.repeat(np.arange(num_strata), int(np.ceil(size / num_strata)))[:size]
    labels = label_rng.random(size) < positive_rates[group_of]
    if not labels.any():
        labels[0] = True
    statistic = stat_rng.normal(
        statistic_means[group_of], np.maximum(statistic_stds[group_of], 1e-9)
    )
    proxy_scores = np.clip(
        positive_rates[group_of] + noise_rng.normal(0.0, 0.02, size), 0.0, 1.0
    )
    from repro.proxy.base import PrecomputedProxy

    proxy = PrecomputedProxy(proxy_scores, name="synthetic_proxy")
    table = Table(
        {
            "statistic": statistic,
            "proxy_score": proxy_scores,
            "latent_group": group_of,
        },
        name="synthetic",
    )
    return Scenario(
        name="synthetic",
        labels=labels,
        statistic_values=statistic,
        proxy=proxy,
        table=table,
        description="parametric synthetic scenario (Bernoulli predicate, normal statistic)",
        extra={
            "positive_rates": positive_rates,
            "statistic_means": statistic_means,
            "statistic_stds": statistic_stds,
        },
    )


def to_backend(
    scenario: Scenario,
    kind: str = "memory",
    path=None,
    chunk_size: Optional[int] = None,
    max_resident_chunks: int = 16,
    overwrite: bool = False,
):
    """Export a scenario's columns as a :mod:`repro.data` dataset backend.

    The backend carries the three columns every sampler consumes —
    ``statistic``, ``proxy_score`` and the hidden ``label`` answer column
    — plus any additional numeric columns the scenario's table holds
    (e.g. ``latent_group``).

    ``kind`` selects the storage: ``"memory"`` wraps the dense arrays
    (no ``path`` needed); ``"mmap"`` and ``"chunked"`` write the columns
    to a column directory at ``path`` (reused as-is when it already holds
    a valid directory, unless ``overwrite``) and open the corresponding
    out-of-core backend over it.  All three return bit-identical column
    values, so sampler results are invariant to the choice.
    """
    from repro.data import (
        ChunkedBackend,
        InMemoryBackend,
        MmapBackend,
        read_manifest,
        write_column_dir,
    )
    from repro.data.chunked import DEFAULT_CHUNK_SIZE

    columns = {
        "statistic": np.asarray(scenario.statistic_values, dtype=float),
        "proxy_score": np.asarray(scenario.proxy.scores(), dtype=float),
        "label": np.asarray(scenario.labels, dtype=bool),
    }
    for col_name in scenario.table.column_names:
        if col_name in columns:
            continue
        values = np.asarray(scenario.table.values(col_name))
        if values.dtype.kind != "O":
            columns[col_name] = values

    if kind == "memory":
        return InMemoryBackend(columns, name=scenario.name)
    if kind not in ("mmap", "chunked"):
        raise ValueError(
            f"unknown backend kind {kind!r}; expected 'memory', 'mmap' "
            "or 'chunked'"
        )
    if path is None:
        raise ValueError(f"kind={kind!r} requires a path to write the columns to")
    manifest = None
    if not overwrite:
        try:
            manifest = read_manifest(path)
        except (FileNotFoundError, ValueError):
            manifest = None  # absent or corrupt: (re)write below
    if manifest is not None:
        # Reuse only a directory that demonstrably holds *this* scenario:
        # name and size must match, and the proxy-score column must be
        # byte-identical (one O(n) read — cheap next to a silent run
        # over stale data from an earlier export at the same path).
        spec = manifest["columns"].get("proxy_score")
        matches = (
            manifest.get("name") == scenario.name
            and manifest["num_records"] == len(columns["proxy_score"])
            and spec is not None
            and np.array_equal(
                np.fromfile(
                    Path(path) / spec["file"], dtype=np.dtype(spec["dtype"])
                ),
                columns["proxy_score"],
            )
        )
        if not matches:
            raise ValueError(
                f"{path} holds a different dataset "
                f"({manifest.get('name')!r}, {manifest['num_records']} "
                f"records) than scenario {scenario.name!r}; pass "
                "overwrite=True to replace it"
            )
    else:
        write_column_dir(path, columns, name=scenario.name, overwrite=overwrite)
    if kind == "mmap":
        return MmapBackend(path)
    return ChunkedBackend(
        path,
        chunk_size=chunk_size if chunk_size is not None else DEFAULT_CHUNK_SIZE,
        max_resident_chunks=max_resident_chunks,
    )


def default_catalog(seed: int = 0, size: Optional[int] = None) -> Catalog:
    """A catalog with every emulated dataset registered lazily."""
    catalog = Catalog()
    for name in DATASET_NAMES:
        def factory(dataset_name=name):
            scenario = make_dataset(dataset_name, seed=seed, size=size)
            return DatasetEntry(
                name=dataset_name,
                table=scenario.table.with_column("label", scenario.labels),
                statistic_column="statistic",
                label_column="label",
                proxy_column="proxy_score",
                predicate_description=scenario.description,
            )
        catalog.register_lazy(name, factory)
    return catalog
