"""Synthetic emulators of the paper's evaluation datasets.

The six real datasets (Table 2) cannot be redistributed here and their
oracles are heavyweight DNNs, but ABae's behaviour depends only on the
joint distribution of (proxy score, predicate outcome, statistic value)
per record.  Each generator in this package matches a dataset's published
characteristics — size (scaled down for laptop-speed experiments by
default), predicate positive rate, statistic distribution shape, and proxy
informativeness — so the reproduction exercises the same code paths and
shows the same qualitative behaviour.

Entry points:

* :func:`make_dataset` — build a single-predicate scenario by name
  ("night-street", "taipei", "celeba", "amazon-movies", "trec05p",
  "amazon-office", or "synthetic");
* :func:`make_multipred_scenario` — the Figure-6 workloads (night-street
  with a red-light predicate; a two-predicate synthetic);
* :func:`make_groupby_scenario` — the Figure-7/8 workloads (celeba hair
  colour groups; 4-group synthetics);
* :func:`make_proxy_combination_scenario` — the Figure-12 workloads;
* :func:`default_catalog` — a :class:`repro.dataset.Catalog` with every
  dataset registered lazily;
* :func:`to_backend` — export a scenario's columns as a
  :mod:`repro.data` dataset backend (in-memory, mmap or chunked).
"""

from repro.synth.base import Scenario, MultiPredicateScenario, GroupByScenario
from repro.synth.datasets import (
    DATASET_NAMES,
    DATASET_SPECS,
    make_dataset,
    default_catalog,
    to_backend,
)
from repro.synth.scenarios import (
    make_multipred_scenario,
    make_groupby_scenario,
    make_proxy_combination_scenario,
)

__all__ = [
    "Scenario",
    "MultiPredicateScenario",
    "GroupByScenario",
    "DATASET_NAMES",
    "DATASET_SPECS",
    "make_dataset",
    "default_catalog",
    "to_backend",
    "make_multipred_scenario",
    "make_groupby_scenario",
    "make_proxy_combination_scenario",
]
