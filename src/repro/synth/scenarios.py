"""Multi-predicate, group-by and proxy-combination workloads.

These mirror the specific workloads in the paper's evaluation beyond the
six single-predicate queries:

* :func:`make_multipred_scenario` — Figure 6: the night-street query with
  an extra red-light predicate (combined positive rate 0.17), and a
  five-stratum synthetic with two predicates whose per-stratum positive
  rates are drawn from Beta distributions.
* :func:`make_groupby_scenario` — Figures 7/8: the celeba query grouped by
  hair colour (gray vs blonde) and two 4-group synthetics whose per-group
  positive rates match the paper's (3.3/3.3/3.4/3.5% for the single-oracle
  figure, 16/12/9/5% for the multiple-oracle figure).
* :func:`make_proxy_combination_scenario` — Figure 12: several proxies of
  varying quality for one predicate (keyword-style for trec05p; Bernoulli
  parameters with noise for the synthetic).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.proxy.base import PrecomputedProxy
from repro.proxy.noise import BetaNoiseProxy, NoisyLabelProxy, RandomProxy
from repro.stats.rng import RandomState
from repro.synth.base import GroupByScenario, MultiPredicateScenario, Scenario
from repro.synth.datasets import DEFAULT_SIZE, make_dataset

__all__ = [
    "make_multipred_scenario",
    "make_groupby_scenario",
    "make_proxy_combination_scenario",
]


# ---------------------------------------------------------------------------
# Figure 6: multiple predicates
# ---------------------------------------------------------------------------


def make_multipred_scenario(
    name: str = "night-street",
    seed: int = 0,
    size: Optional[int] = None,
) -> MultiPredicateScenario:
    """Build a two-predicate workload ("night-street" or "synthetic")."""
    size = size or DEFAULT_SIZE
    if name == "night-street":
        return _night_street_red_light(seed=seed, size=size)
    if name == "synthetic":
        return _synthetic_two_predicates(seed=seed, size=size)
    raise KeyError(
        f"unknown multi-predicate scenario {name!r}; expected 'night-street' or 'synthetic'"
    )


def _night_street_red_light(seed: int, size: int) -> MultiPredicateScenario:
    """Night-street with an added red-light predicate; joint positive rate ~0.17."""
    base = make_dataset("night-street", seed=seed, size=size)
    rng = RandomState(seed + 1)
    label_rng, proxy_rng = rng.spawn(2)

    cars_labels = base.labels
    # Red lights occur on ~40% of frames, independent of cars, so the joint
    # rate lands near the paper's reported 0.17 (0.42 * 0.40 ≈ 0.17).
    red_light_labels = label_rng.random(size) < 0.40
    combined = cars_labels & red_light_labels

    red_light_proxy = BetaNoiseProxy(
        red_light_labels,
        a_pos=6.0,
        b_pos=2.0,
        a_neg=2.0,
        b_neg=6.0,
        rng=proxy_rng,
        name="red_light_proxy",
    )
    return MultiPredicateScenario(
        name="night-street-multipred",
        predicate_labels={
            "has_cars": cars_labels,
            "red_light": red_light_labels,
        },
        statistic_values=base.statistic_values,
        proxies={
            "has_cars": base.proxy,
            "red_light": red_light_proxy,
        },
        combined_labels=combined,
        description=(
            "AVG(count_cars) WHERE count_cars > 0 AND red_light "
            "(combined positive rate ≈ 0.17)"
        ),
    )


def _synthetic_two_predicates(seed: int, size: int) -> MultiPredicateScenario:
    """Five latent strata; each predicate's per-stratum rate drawn from a Beta.

    The Beta is skewed (most strata nearly empty of positives, a couple
    dense), which is the regime where the combined-proxy stratification has
    real work to do — the same character as the paper's synthetic workload.
    """
    rng = RandomState(seed)
    p_rng, label_rng, stat_rng, proxy_rng = rng.spawn(4)
    num_strata = 5
    group_of = np.repeat(np.arange(num_strata), int(np.ceil(size / num_strata)))[:size]

    rates_a = p_rng.beta(0.7, 3.0, num_strata)
    rates_b = p_rng.beta(0.7, 3.0, num_strata)
    labels_a = label_rng.random(size) < rates_a[group_of]
    labels_b = label_rng.random(size) < rates_b[group_of]
    combined = labels_a & labels_b
    if not combined.any():
        labels_a[0] = labels_b[0] = True
        combined = labels_a & labels_b

    statistic = stat_rng.normal(2.0 + group_of * 0.5, 0.5 + 0.3 * group_of)

    noise_a, noise_b = proxy_rng.spawn(2)
    proxy_a = PrecomputedProxy(
        np.clip(rates_a[group_of] + noise_a.normal(0, 0.05, size), 0, 1),
        name="synthetic_proxy_a",
    )
    proxy_b = PrecomputedProxy(
        np.clip(rates_b[group_of] + noise_b.normal(0, 0.05, size), 0, 1),
        name="synthetic_proxy_b",
    )
    return MultiPredicateScenario(
        name="synthetic-multipred",
        predicate_labels={"pred_a": labels_a, "pred_b": labels_b},
        statistic_values=statistic,
        proxies={"pred_a": proxy_a, "pred_b": proxy_b},
        combined_labels=combined,
        description="synthetic two-predicate conjunction, Beta-drawn per-stratum rates",
    )


# ---------------------------------------------------------------------------
# Figures 7 and 8: group bys
# ---------------------------------------------------------------------------


def make_groupby_scenario(
    name: str = "celeba",
    setting: str = "single",
    seed: int = 0,
    size: Optional[int] = None,
) -> GroupByScenario:
    """Build a group-by workload.

    ``name`` is ``"celeba"`` (smiling percentage grouped by hair colour) or
    ``"synthetic"``; ``setting`` is ``"single"`` or ``"multi"``, which for
    the synthetic workload selects the paper's respective positive-rate
    profiles (3.3–3.5% vs 16/12/9/5%).
    """
    size = size or DEFAULT_SIZE
    if setting not in ("single", "multi"):
        raise ValueError(f"setting must be 'single' or 'multi', got {setting!r}")
    if name == "celeba":
        return _celeba_hair_groups(seed=seed, size=size)
    if name == "synthetic":
        if setting == "single":
            rates = [0.033, 0.033, 0.034, 0.035]
        else:
            rates = [0.16, 0.12, 0.09, 0.05]
        return _synthetic_groups(seed=seed, size=size, rates=rates)
    raise KeyError(
        f"unknown group-by scenario {name!r}; expected 'celeba' or 'synthetic'"
    )


def _celeba_hair_groups(seed: int, size: int) -> GroupByScenario:
    """celeba grouped by hair colour: gray (rare) and blonde (more common)."""
    rng = RandomState(seed)
    key_rng, stat_rng, proxy_rng = rng.spawn(3)

    draws = key_rng.random(size)
    # Hair-colour marginals roughly matching celeba annotations.
    group_keys = np.where(
        draws < 0.04, "gray", np.where(draws < 0.19, "blond", None)
    ).astype(object)

    is_gray = np.array([k == "gray" for k in group_keys])
    is_blond = np.array([k == "blond" for k in group_keys])
    smiling_rate = np.where(is_gray, 0.62, np.where(is_blond, 0.52, 0.47))
    statistic = (stat_rng.random(size) < smiling_rate).astype(float)

    gray_rng, blond_rng = proxy_rng.spawn(2)
    proxies = {
        "gray": BetaNoiseProxy(
            is_gray, a_pos=8.0, b_pos=2.0, a_neg=1.5, b_neg=9.0,
            rng=gray_rng, name="gray_proxy",
        ),
        "blond": BetaNoiseProxy(
            is_blond, a_pos=8.0, b_pos=2.0, a_neg=1.5, b_neg=9.0,
            rng=blond_rng, name="blond_proxy",
        ),
    }
    return GroupByScenario(
        name="celeba-groupby",
        group_keys=group_keys,
        statistic_values=statistic,
        proxies=proxies,
        groups=["gray", "blond"],
        description="PERCENTAGE(is_smiling) GROUP BY hair colour in {gray, blond}",
    )


def _synthetic_groups(seed: int, size: int, rates: List[float]) -> GroupByScenario:
    """Synthetic groups: Bernoulli membership, normal statistic per group."""
    rng = RandomState(seed)
    key_rng, stat_rng, proxy_rng = rng.spawn(3)
    num_groups = len(rates)
    groups = [f"group_{g}" for g in range(num_groups)]

    # Assign each record to at most one group using the cumulative rates.
    cumulative = np.cumsum(rates)
    if cumulative[-1] >= 1.0:
        raise ValueError("group positive rates must sum to less than 1")
    draws = key_rng.random(size)
    group_keys = np.full(size, None, dtype=object)
    lower = 0.0
    for g, upper in enumerate(cumulative):
        member = (draws >= lower) & (draws < upper)
        group_keys[member] = groups[g]
        lower = upper

    statistic = np.zeros(size, dtype=float)
    for g, group in enumerate(groups):
        member = np.array([k == group for k in group_keys])
        statistic[member] = stat_rng.normal(2.0 + g, 1.0, int(member.sum()))
    outside = np.array([k is None for k in group_keys])
    statistic[outside] = stat_rng.normal(1.0, 1.0, int(outside.sum()))

    proxies = {}
    for group, child in zip(groups, proxy_rng.spawn(num_groups)):
        member = np.array([k == group for k in group_keys])
        proxies[group] = BetaNoiseProxy(
            member, a_pos=7.0, b_pos=2.0, a_neg=2.0, b_neg=7.0,
            rng=child, name=f"{group}_proxy",
        )
    return GroupByScenario(
        name="synthetic-groupby",
        group_keys=group_keys,
        statistic_values=statistic,
        proxies=proxies,
        groups=groups,
        description=f"synthetic group-by with positive rates {rates}",
    )


# ---------------------------------------------------------------------------
# Figure 12: combining proxies
# ---------------------------------------------------------------------------


def make_proxy_combination_scenario(
    name: str = "trec05p",
    seed: int = 0,
    size: Optional[int] = None,
    num_proxies: int = 3,
) -> Scenario:
    """A single-predicate scenario carrying several candidate proxies.

    Figure 12's setting: the user has several *individually mediocre*
    proxies for the same predicate (for trec05p, different keyword lists;
    for the synthetic, noisy Bernoulli parameters) plus at least one
    uninformative one.  No single candidate is as good as the dataset's
    main proxy; combining them with logistic regression recovers most of
    the lost signal while "ignoring" the useless candidate.

    The candidates live in ``extra["candidate_proxies"]`` ordered from the
    strongest individual proxy to the random one; single-proxy baselines
    should use ``candidate_proxies[0]``.
    """
    size = size or DEFAULT_SIZE
    if num_proxies < 2:
        raise ValueError(f"num_proxies must be at least 2, got {num_proxies}")
    if name == "trec05p":
        base = make_dataset("trec05p", seed=seed, size=size)
    elif name == "synthetic":
        base = make_dataset("synthetic", seed=seed, size=size)
    else:
        raise KeyError(
            f"unknown proxy-combination scenario {name!r}; expected 'trec05p' or 'synthetic'"
        )

    rng = RandomState(seed + 17)
    children = rng.spawn(num_proxies)
    # Individually mediocre proxies: each captures only part of the signal.
    qualities = np.linspace(0.5, 0.3, num_proxies - 1)
    candidates = []
    for quality, child in zip(qualities, children[:-1]):
        candidates.append(
            NoisyLabelProxy(
                base.labels,
                quality=float(quality),
                noise_scale=0.4,
                rng=child,
                name=f"{base.name}_proxy_q{quality:.2f}",
            )
        )
    candidates.append(
        RandomProxy(base.num_records, rng=children[-1], name=f"{base.name}_proxy_random")
    )
    base.extra["candidate_proxies"] = candidates
    return base
