"""Scenario containers produced by the synthetic dataset generators.

A *scenario* bundles everything an experiment needs: the record table, the
hidden ground-truth labels, the statistic values, the proxy (or proxies),
fresh oracles with zeroed accounting, and the exact query answer for error
measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List

import numpy as np

from repro.dataset.table import Table
from repro.oracle.groupkey import GroupKeyOracle, PerGroupOracles
from repro.oracle.simulated import LabelColumnOracle
from repro.proxy.base import Proxy
from repro.stats.descriptive import safe_mean

__all__ = ["Scenario", "MultiPredicateScenario", "GroupByScenario"]


@dataclass
class Scenario:
    """A single-predicate aggregation workload.

    Attributes
    ----------
    name:
        Dataset name (matches the paper's naming where applicable).
    labels:
        Hidden ground-truth predicate outcomes (only oracles may read these
        during query execution; the scenario exposes them for evaluation).
    statistic_values:
        The per-record value of the aggregated expression.
    proxy:
        The proxy model for the predicate.
    table:
        Columnar view of the dataset (statistic + proxy score columns plus
        whatever extra columns the generator adds).
    description:
        Human-readable description of the emulated query.
    """

    name: str
    labels: np.ndarray
    statistic_values: np.ndarray
    proxy: Proxy
    table: Table
    description: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        self.labels = np.asarray(self.labels, dtype=bool)
        self.statistic_values = np.asarray(self.statistic_values, dtype=float)
        if self.labels.shape != self.statistic_values.shape:
            raise ValueError(
                "labels and statistic_values must have the same shape, got "
                f"{self.labels.shape} vs {self.statistic_values.shape}"
            )
        if len(self.proxy) != self.labels.shape[0]:
            raise ValueError(
                "proxy scores must cover every record: proxy has "
                f"{len(self.proxy)}, dataset has {self.labels.shape[0]}"
            )

    @property
    def num_records(self) -> int:
        return int(self.labels.shape[0])

    @property
    def positive_rate(self) -> float:
        """Fraction of records satisfying the predicate."""
        return float(self.labels.mean()) if self.num_records else 0.0

    def ground_truth(self) -> float:
        """The exact AVG over records satisfying the predicate."""
        return safe_mean(self.statistic_values[self.labels])

    def ground_truth_sum(self) -> float:
        """The exact SUM over records satisfying the predicate."""
        return float(self.statistic_values[self.labels].sum())

    def ground_truth_count(self) -> int:
        """The exact COUNT of records satisfying the predicate."""
        return int(self.labels.sum())

    def make_oracle(self, cost_per_call: float = 1.0) -> LabelColumnOracle:
        """A fresh predicate oracle with zeroed accounting."""
        return LabelColumnOracle(
            self.labels, name=f"{self.name}_oracle", cost_per_call=cost_per_call
        )

    @property
    def oracle(self) -> LabelColumnOracle:
        """Convenience oracle (fresh on every access, accounting starts at zero)."""
        return self.make_oracle()


@dataclass
class MultiPredicateScenario:
    """A workload with two or more expensive predicates (Figure 6)."""

    name: str
    predicate_labels: Dict[str, np.ndarray]
    statistic_values: np.ndarray
    proxies: Dict[str, Proxy]
    combined_labels: np.ndarray
    description: str = ""

    def __post_init__(self):
        self.statistic_values = np.asarray(self.statistic_values, dtype=float)
        self.combined_labels = np.asarray(self.combined_labels, dtype=bool)
        for key, labels in self.predicate_labels.items():
            self.predicate_labels[key] = np.asarray(labels, dtype=bool)
            if self.predicate_labels[key].shape != self.combined_labels.shape:
                raise ValueError(f"labels for predicate {key!r} have the wrong shape")
        if set(self.proxies) != set(self.predicate_labels):
            raise ValueError("proxies and predicate_labels must have the same keys")

    @property
    def num_records(self) -> int:
        return int(self.combined_labels.shape[0])

    @property
    def predicate_names(self) -> List[str]:
        return list(self.predicate_labels)

    def ground_truth(self) -> float:
        return safe_mean(self.statistic_values[self.combined_labels])

    def make_oracle(self, predicate: str) -> LabelColumnOracle:
        """A fresh oracle for one constituent predicate."""
        if predicate not in self.predicate_labels:
            raise KeyError(
                f"unknown predicate {predicate!r}; have {self.predicate_names}"
            )
        return LabelColumnOracle(
            self.predicate_labels[predicate], name=f"{self.name}:{predicate}"
        )

    def make_combined_oracle(self) -> LabelColumnOracle:
        """A fresh oracle for the full (conjunctive) predicate."""
        return LabelColumnOracle(self.combined_labels, name=f"{self.name}:combined")


@dataclass
class GroupByScenario:
    """A workload with a group-by key (Figures 7 and 8)."""

    name: str
    group_keys: np.ndarray
    statistic_values: np.ndarray
    proxies: Dict[Hashable, Proxy]
    groups: List[Hashable]
    description: str = ""

    def __post_init__(self):
        self.group_keys = np.asarray(self.group_keys, dtype=object)
        self.statistic_values = np.asarray(self.statistic_values, dtype=float)
        if self.group_keys.shape != self.statistic_values.shape:
            raise ValueError("group_keys and statistic_values must align")
        missing = [g for g in self.groups if g not in self.proxies]
        if missing:
            raise ValueError(f"missing proxies for groups: {missing}")

    @property
    def num_records(self) -> int:
        return int(self.group_keys.shape[0])

    def group_positive_rate(self, group: Hashable) -> float:
        return float(np.mean([k == group for k in self.group_keys]))

    def ground_truth(self, group: Hashable) -> float:
        """Exact per-group AVG of the statistic."""
        member = np.array([k == group for k in self.group_keys], dtype=bool)
        return safe_mean(self.statistic_values[member])

    def ground_truths(self) -> Dict[Hashable, float]:
        return {g: self.ground_truth(g) for g in self.groups}

    def make_single_oracle(self) -> GroupKeyOracle:
        """Fresh single-oracle (returns the group key directly)."""
        return GroupKeyOracle(
            self.group_keys, groups=self.groups, name=f"{self.name}_groupkey"
        )

    def make_per_group_oracles(self) -> PerGroupOracles:
        """Fresh per-group membership oracles (multiple-oracle setting)."""
        return PerGroupOracles(
            self.group_keys, groups=self.groups, name=f"{self.name}_pergroup"
        )
