"""The unified sampling pipeline: one engine under every sampler.

The paper's ABae algorithm — and all of its extensions — is one loop:

    stratify -> explore -> allocate -> exploit -> estimate

The repo used to implement that loop six times as monolithic ``run_*``
functions, each hand-threading the execution knobs.  This module owns the
loop once.  A :class:`SamplingPipeline` wires together

* a stratification (one or more strata of candidate record indices),
* the oracle / statistic pair (wrapped once for batching and sharding,
  per the :class:`~repro.engine.config.ExecutionConfig`),
* an :class:`AllocationPolicy` — the strategy deciding, round by round,
  how many draws each stratum receives next (two-stage plug-in optimal,
  uniform, bandit-style sequential, until-CI-width, ...), and
* an :class:`EstimatorPolicy` — the strategy turning accumulated samples
  into an :class:`~repro.core.results.EstimateResult`.

Execution itself is a :class:`~repro.engine.session.SamplingSession`
state machine: ``pipeline.run()`` drives a session to completion, and
``pipeline.session()`` hands the caller the stepper for streaming /
resumable execution.  Both paths perform *exactly the same draws in the
same order against the same random stream*, so step-driven execution is
bit-identical to one-shot execution — the property the equivalence
harness pins.

Determinism contract
--------------------
The pipeline inherits (and centralizes) the engine's standing contract:
``batch_size`` / ``num_workers`` / ``parallel_backend`` / ``plan_cache``
never change estimates, confidence intervals, per-stratum samples or
oracle accounting.  Record selection consumes the session RNG through
:func:`repro.stats.sampling.sample_without_replacement` in policy-defined
round order; labeling never touches the stream.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.batching import DEFAULT_BATCH_SIZE, label_records
from repro.core.estimators import combine_estimates, estimate_all_strata
from repro.core.parallel import parallelize_oracle
from repro.core.results import ConfidenceInterval, EstimateResult
from repro.core.stratification import Stratification
from repro.core.types import StratumSample
from repro.engine.config import ExecutionConfig, ProgressEvent, resolve_kernel_set
from repro.kernels import KernelSet, kernel_set
from repro.stats.rng import RandomState
from repro.stats.sampling import sample_without_replacement

__all__ = [
    "StatisticLike",
    "normalize_statistic",
    "draw_stratum_sample",
    "StratumPool",
    "PipelineState",
    "AllocationPolicy",
    "EstimatorPolicy",
    "StratifiedEstimator",
    "SamplingPipeline",
]

StatisticLike = Union[Callable[[int], float], Sequence[float], np.ndarray]


class _ArrayStatistic:
    """Adapter giving a precomputed value array both call styles.

    Calling it with one index mirrors the legacy scalar interface; the
    ``batch`` method gathers many records with a single fancy index, which
    is what :func:`repro.core.batching.label_records` consumes.
    """

    __slots__ = ("_values",)

    def __init__(self, values: np.ndarray):
        self._values = values

    @property
    def values(self) -> np.ndarray:
        """The backing value column (used by the batched gather fast path)."""
        return self._values

    def __call__(self, record_index: int) -> float:
        return float(self._values[record_index])

    def batch(self, record_indices) -> np.ndarray:
        return self._values[np.asarray(record_indices, dtype=np.int64)]


class _BackedStatistic:
    """Statistic values gathered through a dataset-backend column handle.

    Mirrors :class:`_ArrayStatistic`'s two call styles but reads via the
    backend's ``gather`` — a sampling run over an out-of-core column only
    ever pulls the records it actually draws.
    """

    __slots__ = ("_handle",)

    def __init__(self, handle):
        self._handle = handle

    @property
    def handle(self):
        """The backing column handle."""
        return self._handle

    def __call__(self, record_index: int) -> float:
        return float(
            self._handle.gather(np.array([record_index], dtype=np.int64))[0]
        )

    def batch(self, record_indices) -> np.ndarray:
        return np.asarray(
            self._handle.gather(np.asarray(record_indices, dtype=np.int64)),
            dtype=float,
        )


def normalize_statistic(statistic: StatisticLike) -> Callable[[int], float]:
    """Accept a per-record callable, a precomputed array, or a backend column.

    Arrays come back wrapped in :class:`_ArrayStatistic` so the batched
    execution engine can gather values without a Python-level loop;
    dataset-backend column handles (see :mod:`repro.data`) wrap in
    :class:`_BackedStatistic`, which gathers through the backend instead
    of materializing; callables pass through unchanged (keeping any
    ``batch`` method they already expose, e.g.
    :class:`repro.oracle.base.StatisticOracle`).
    """
    from repro.data.backend import is_column_handle

    if is_column_handle(statistic):
        return _BackedStatistic(statistic)
    if callable(statistic):
        return statistic
    return _ArrayStatistic(np.asarray(statistic, dtype=float))


def draw_stratum_sample(
    stratum_index: int,
    candidate_indices: np.ndarray,
    n: int,
    oracle: Callable[[int], bool],
    statistic: Callable[[int], float],
    rng: RandomState,
    batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
) -> StratumSample:
    """Sample ``n`` records without replacement and label them with the oracle.

    The statistic is only evaluated for records that satisfy the predicate
    (its value is undefined otherwise — e.g. ``count_cars`` of a frame with
    no cars filtered by ``count_cars > 0``); non-matching draws carry NaN.

    ``batch_size`` controls how many records each oracle invocation labels
    (``None`` = the whole draw in one batch, ``1`` = the strictly sequential
    legacy path); every setting yields bit-identical samples and oracle
    accounting because record selection happens before labeling and never
    shares the random stream with it.  Worker-pool sharding is the
    *caller's* concern: the pipeline wraps the oracle once with
    :func:`repro.core.parallel.parallelize_oracle` before drawing, so the
    sharding applies to every draw without per-call wrapping here.
    """
    drawn = sample_without_replacement(candidate_indices, n, rng)
    matches, values = label_records(drawn, oracle, statistic, batch_size)
    return StratumSample(
        stratum=stratum_index, indices=drawn, matches=matches, values=values
    )


def _empty_stratum_sample(stratum_index: int) -> StratumSample:
    """A zero-draw sample, bit-identical to drawing ``n=0`` records."""
    return StratumSample(stratum=stratum_index)


class StratumPool:
    """Array-native bookkeeping of not-yet-drawn records per stratum.

    Keeps one boolean availability mask per stratum over the
    stratification's (sorted, read-only) index views: candidates are a
    single boolean gather, and marking records drawn is a ``searchsorted``
    into the sorted stratum.  Candidate order is the stratum's ascending
    record order — deterministic by construction, and identical to the
    dataset-length drawn-mask gathers the monolithic samplers used.

    Both operations dispatch through a :class:`~repro.kernels.KernelSet`
    (``kernels=None`` resolves the default backend, honouring
    ``REPRO_KERNEL``); backend choice never changes which records are
    candidates or the order they appear in.
    """

    __slots__ = ("_strata", "_available", "remaining", "_kernels")

    def __init__(
        self,
        strata: Sequence[np.ndarray],
        kernels: Optional[KernelSet] = None,
    ):
        self._strata = [np.asarray(s, dtype=np.int64) for s in strata]
        self._available = [np.ones(s.size, dtype=bool) for s in self._strata]
        self.remaining = np.array([s.size for s in self._strata], dtype=np.int64)
        self._kernels = kernels if kernels is not None else kernel_set()

    @classmethod
    def from_stratification(
        cls,
        stratification: Stratification,
        kernels: Optional[KernelSet] = None,
    ) -> "StratumPool":
        return cls(
            [stratification.stratum(k) for k in range(stratification.num_strata)],
            kernels=kernels,
        )

    @property
    def num_strata(self) -> int:
        return len(self._strata)

    @property
    def kernels(self) -> KernelSet:
        """The kernel set this pool dispatches through (policies reuse it)."""
        return self._kernels

    def rebind_kernels(self, kernels: KernelSet) -> None:
        """Swap the dispatch table (used when restoring a checkpoint).

        Safe at any point in a run: backends are bit-identical by
        contract, so rebinding never changes candidates or draw order.
        """
        self._kernels = kernels

    def stratum(self, k: int) -> np.ndarray:
        """The full (sorted) index view of stratum ``k``."""
        return self._strata[k]

    def candidates(self, k: int) -> np.ndarray:
        """Record indices of stratum ``k`` not yet drawn (ascending order)."""
        return self._kernels.gather_candidates(self._strata[k], self._available[k])

    def mark_drawn(self, k: int, indices: np.ndarray) -> None:
        if len(indices) == 0:
            return
        drawn = np.asarray(indices, dtype=np.int64)
        count = self._kernels.mark_drawn(self._strata[k], self._available[k], drawn)
        self.remaining[k] -= count

    # -- Pickling ------------------------------------------------------------------
    # Pools are pickled inside session checkpoints.  A KernelSet holds
    # function objects (possibly jitted dispatchers), so checkpoints store
    # only the backend *name* and re-resolve on restore — falling back to
    # the default backend when the saved one is unavailable in the
    # restoring process (safe: backends are bit-identical by contract).
    def __getstate__(self):
        return {
            "_strata": self._strata,
            "_available": self._available,
            "remaining": self.remaining,
            "_kernel_backend": self._kernels.backend,
        }

    def __setstate__(self, state):
        if isinstance(state, tuple):  # pre-kernel __slots__ pickle format
            state = {**(state[0] or {}), **(state[1] or {})}
        self._strata = state["_strata"]
        self._available = state["_available"]
        self.remaining = state["remaining"]
        try:
            self._kernels = kernel_set(state.get("_kernel_backend"))
        except ValueError:
            self._kernels = kernel_set("numpy")


class PipelineState:
    """Everything a sampling run accumulates: the session's mutable state.

    ``samples`` holds the cumulative per-stratum samples (each draw extends
    its stratum in draw order, exactly as the monolithic samplers did);
    ``rounds`` additionally keeps each allocation round's fresh samples
    separately, which the two-stage estimator needs for the sample-reuse
    lesion and checkpoint inspection needs for provenance.  ``details`` is
    the policies' scratch space for result diagnostics; ``ci`` is set by
    policies that track a confidence interval as they go (until-width).
    """

    __slots__ = (
        "stratification",
        "pool",
        "rng",
        "budget",
        "spent",
        "samples",
        "rounds",
        "round_index",
        "details",
        "ci",
    )

    def __init__(
        self,
        pool: StratumPool,
        rng: RandomState,
        budget: int,
        stratification: Optional[Stratification] = None,
        initial_samples: Optional[Sequence[StratumSample]] = None,
        initial_spent: int = 0,
    ):
        self.stratification = stratification
        self.pool = pool
        self.rng = rng
        self.budget = int(budget)
        self.spent = int(initial_spent)
        if initial_samples is None:
            self.samples: List[StratumSample] = [
                _empty_stratum_sample(k) for k in range(pool.num_strata)
            ]
        else:
            self.samples = list(initial_samples)
        self.rounds: List[List[StratumSample]] = []
        self.round_index = 0
        self.details: Dict[str, object] = {}
        self.ci: Optional[ConfidenceInterval] = None

    @property
    def num_strata(self) -> int:
        return self.pool.num_strata

    @property
    def remaining_budget(self) -> int:
        return max(0, self.budget - self.spent)

    def merged_rounds(self, start: int = 0) -> List[StratumSample]:
        """Per-stratum merge of rounds ``start`` onwards, in draw order."""
        merged = [_empty_stratum_sample(k) for k in range(self.num_strata)]
        for round_samples in self.rounds[start:]:
            merged = [
                merged[k].extend(round_samples[k]) for k in range(self.num_strata)
            ]
        return merged


class AllocationPolicy(abc.ABC):
    """Strategy deciding how the next round of draws is allocated.

    A policy is a single-use, stateful object: the session calls
    :meth:`next_counts` at every round boundary and executes the returned
    per-stratum counts in stratum order; ``None`` ends sampling.  Policies
    may read everything on the state (accumulated samples, pool capacity,
    spent/total budget) and may consume ``state.rng`` — any randomness or
    bootstrap a policy performs is part of the deterministic draw sequence.
    """

    @abc.abstractmethod
    def next_counts(self, state: PipelineState) -> Optional[Sequence[int]]:
        """Per-stratum draw counts for the next round, or ``None`` when done."""

    def extend_budget(self, state: PipelineState, extra: int) -> None:
        """React to a budget top-up (``state.budget`` is already increased).

        The default is a no-op: policies whose loop condition reads
        ``state.budget`` (sequential, until-width) resume automatically.
        Policies with a fixed round plan (two-stage) override this to queue
        additional rounds.
        """


class EstimatorPolicy(abc.ABC):
    """Strategy turning accumulated samples into an :class:`EstimateResult`."""

    method = "abae"

    @abc.abstractmethod
    def point_estimate(self, state: PipelineState, estimates=None) -> float:
        """The current point estimate from the samples accumulated so far.

        Must not consume ``state.rng`` — this is what streaming
        ``partial_estimate()`` calls between steps, and peeking must never
        perturb the draw sequence.  ``estimates`` optionally supplies
        per-stratum estimates the caller already computed over
        ``state.samples``, so the streaming hot path estimates once, not
        twice.
        """

    @abc.abstractmethod
    def finalize(
        self,
        state: PipelineState,
        with_ci: bool,
        alpha: float,
        num_bootstrap: int,
    ) -> EstimateResult:
        """The run's final result (may consume ``state.rng`` for a CI)."""


class StratifiedEstimator(EstimatorPolicy):
    """The standard ABae combiner over the cumulative per-stratum samples.

    Used directly by the sequential sampler and the group-by continuation;
    subclassed by the two-stage estimator (sample-reuse lesion) and the
    until-width estimator (policy-tracked CI).
    """

    def __init__(self, method: str = "abae"):
        self.method = method

    def final_samples(self, state: PipelineState) -> List[StratumSample]:
        return list(state.samples)

    def extra_details(self, state: PipelineState) -> Dict[str, object]:
        return {}

    def point_estimate(self, state: PipelineState, estimates=None) -> float:
        if estimates is None:
            estimates = estimate_all_strata(state.samples)
        return combine_estimates(estimates)

    def estimate_from(self, final_samples, final_estimates) -> float:
        """The final point estimate (hook for non-stratified combiners)."""
        return combine_estimates(final_estimates)

    def finalize(
        self,
        state: PipelineState,
        with_ci: bool,
        alpha: float,
        num_bootstrap: int,
    ) -> EstimateResult:
        final_samples = self.final_samples(state)
        final_estimates = estimate_all_strata(final_samples)
        estimate = self.estimate_from(final_samples, final_estimates)
        ci = state.ci
        if with_ci and ci is None:
            from repro.core.bootstrap import bootstrap_confidence_interval

            ci = bootstrap_confidence_interval(
                final_samples,
                alpha=alpha,
                num_bootstrap=num_bootstrap,
                rng=state.rng,
            )
            # Persist the CI on the state: the bootstrap consumed the RNG,
            # so a checkpoint taken after finalization must carry the CI
            # rather than let a resumed session re-bootstrap from the
            # advanced stream (which would silently produce a different
            # interval).  Budget top-ups clear it (see
            # SamplingSession.add_budget) so post-top-up results recompute.
            state.ci = ci
        details = dict(state.details)
        details.update(self.extra_details(state))
        if state.stratification is not None and "stratum_sizes" not in details:
            details["stratum_sizes"] = state.stratification.sizes().tolist()
        return EstimateResult(
            estimate=estimate,
            ci=ci,
            oracle_calls=state.spent,
            strata_estimates=final_estimates,
            samples=final_samples,
            method=self.method,
            details=details,
        )


class SamplingPipeline:
    """One sampler, assembled: strata + oracle + statistic + policies.

    The pipeline is the *static* wiring; execution state lives in the
    (single) :class:`~repro.engine.session.SamplingSession` it creates.
    Policies are stateful and single-use, so a pipeline runs exactly once —
    build a fresh pipeline per run, exactly as the ``run_*`` wrappers do.
    """

    def __init__(
        self,
        *,
        oracle: Callable[[int], bool],
        statistic: StatisticLike,
        policy: AllocationPolicy,
        estimator: EstimatorPolicy,
        budget: int,
        stratification: Optional[Stratification] = None,
        strata: Optional[Sequence[np.ndarray]] = None,
        config: Optional[ExecutionConfig] = None,
        with_ci: bool = False,
        alpha: float = 0.05,
        num_bootstrap: int = 1000,
        initial_samples: Optional[Sequence[StratumSample]] = None,
        initial_spent: int = 0,
    ):
        if (stratification is None) == (strata is None):
            raise ValueError(
                "provide exactly one of stratification= or strata="
            )
        self.config = config or ExecutionConfig()
        self.kernels = resolve_kernel_set(self.config)
        self.oracle = parallelize_oracle(
            oracle, self.config.num_workers, self.config.parallel_backend
        )
        self.statistic = normalize_statistic(statistic)
        self.policy = policy
        self.estimator = estimator
        self.budget = int(budget)
        self.stratification = stratification
        self._strata = strata
        self.with_ci = with_ci
        self.alpha = alpha
        self.num_bootstrap = num_bootstrap
        self._initial_samples = initial_samples
        self._initial_spent = int(initial_spent)
        self._session = None

    # -- Session construction ------------------------------------------------------
    def _make_state(self, rng: Optional[RandomState]) -> PipelineState:
        if self.stratification is not None:
            pool = StratumPool.from_stratification(
                self.stratification, kernels=self.kernels
            )
        else:
            pool = StratumPool(self._strata, kernels=self.kernels)
        state = PipelineState(
            pool=pool,
            rng=self.config.make_rng(rng),
            budget=self.budget,
            stratification=self.stratification,
            initial_samples=self._initial_samples,
            initial_spent=self._initial_spent,
        )
        if self._initial_samples is not None:
            for k, sample in enumerate(self._initial_samples):
                pool.mark_drawn(k, sample.indices)
        return state

    def session(self, rng: Optional[RandomState] = None):
        """The pipeline's (single) execution session.

        Import is local to avoid a module cycle; the session module is the
        only consumer of pipeline internals.
        """
        from repro.engine.session import SamplingSession

        if self._session is not None:
            raise RuntimeError(
                "this pipeline already has a session; policies are stateful "
                "and single-use — build a fresh pipeline per run"
            )
        self._session = SamplingSession(self, self._make_state(rng))
        return self._session

    def run(self, rng: Optional[RandomState] = None) -> EstimateResult:
        """Drive a session to completion and return the finalized result."""
        return self.session(rng).run()

    def resume(self, checkpoint: bytes):
        """Rebuild this pipeline's session from checkpoint bytes.

        The pipeline must be freshly built with the same logical
        parameters as the checkpointed run; it contributes the live
        oracle / statistic / config while the checkpoint supplies the
        policy, estimator and accumulated state.
        """
        from repro.engine.session import SamplingSession

        if self._session is not None:
            raise RuntimeError(
                "this pipeline already has a session; build a fresh "
                "pipeline to resume a checkpoint"
            )
        return SamplingSession.restore(self, checkpoint)

    # -- Execution primitives (called by the session) ------------------------------
    def draw(self, state: PipelineState, k: int, count: int) -> StratumSample:
        """Draw ``count`` records from stratum ``k`` and fold them in.

        Zero-count or exhausted-stratum draws short-circuit to an empty
        sample without touching the RNG — bit-identical to calling the
        sampler with an empty request, which also consumes nothing.
        """
        if count <= 0 or state.pool.remaining[k] == 0:
            fresh = _empty_stratum_sample(k)
        else:
            fresh = draw_stratum_sample(
                k,
                state.pool.candidates(k),
                count,
                self.oracle,
                self.statistic,
                state.rng,
                batch_size=self.config.batch_size,
            )
            state.pool.mark_drawn(k, fresh.indices)
        state.samples[k] = state.samples[k].extend(fresh)
        state.rounds[-1][k] = fresh
        state.spent += fresh.num_draws
        self.config.notify(
            ProgressEvent(
                phase="draw",
                round_index=state.round_index,
                stratum=k,
                drawn=fresh.num_draws,
                spent=state.spent,
                budget=state.budget,
            )
        )
        return fresh

    def finalize(self, state: PipelineState) -> EstimateResult:
        result = self.estimator.finalize(
            state, self.with_ci, self.alpha, self.num_bootstrap
        )
        self.config.notify(
            ProgressEvent(
                phase="finalize",
                round_index=state.round_index,
                stratum=None,
                drawn=0,
                spent=state.spent,
                budget=state.budget,
            )
        )
        return result
