"""Concrete allocation and estimator policies for the sampling pipeline.

Each of the repo's samplers is now a *pair of strategy objects* plugged
into the one :class:`~repro.engine.pipeline.SamplingPipeline`:

===================  =================================  =========================
sampler              allocation policy                  estimator policy
===================  =================================  =========================
ABae (Algorithm 1)   :class:`TwoStageAllocationPolicy`  :class:`TwoStageEstimator`
uniform baseline     :class:`UniformAllocationPolicy`   :class:`UniformEstimator`
bandit sequential    :class:`SequentialAllocationPolicy`  ``StratifiedEstimator``
until-CI-width       :class:`UntilWidthAllocationPolicy`  :class:`UntilWidthEstimator`
group-by stage 2     :class:`BoundedExploitPolicy`      ``StratifiedEstimator``
multi-pred leaf      :class:`TwoStageAllocationPolicy`  (method ``abae-multipred``)
===================  =================================  =========================

Every policy reproduces its monolithic predecessor's draw sequence and
RNG consumption *exactly* — the equivalence harness pins bit-identical
fingerprints between the legacy entry points and the engine.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core import allocation as allocation_module
from repro.core.allocation import bounded_allocation
from repro.core.bootstrap import bootstrap_confidence_interval
from repro.core.estimators import (
    combine_estimates,
    estimate_all_strata,
    estimate_arrays,
)
from repro.core.types import SamplingBudget, StratumSample
from repro.kernels import KernelSet, kernel_set
from repro.engine.pipeline import (
    AllocationPolicy,
    PipelineState,
    StratifiedEstimator,
)

__all__ = [
    "TwoStageAllocationPolicy",
    "TwoStageEstimator",
    "UniformAllocationPolicy",
    "UniformEstimator",
    "SequentialAllocationPolicy",
    "UntilWidthAllocationPolicy",
    "UntilWidthEstimator",
    "BoundedExploitPolicy",
    "marginal_variance_reduction",
]


# ---------------------------------------------------------------------------
# Two-stage (Algorithm 1)
# ---------------------------------------------------------------------------


class TwoStageAllocationPolicy(AllocationPolicy):
    """Algorithm 1's allocation: a pilot round, then the plug-in optimum.

    Round 0 draws ``N1`` records from every stratum (exploration); round 1
    allocates the remaining ``N2`` proportional to ``sqrt(p_hat_k) *
    sigma_hat_k`` bounded by each stratum's remaining capacity
    (exploitation).  Budget top-ups queue further exploitation rounds
    allocated by the *current* cumulative estimates.
    """

    def __init__(self, split: SamplingBudget):
        self.split = split
        self._phase = 0
        self._extension_rounds: List[List[int]] = []

    def next_counts(self, state: PipelineState) -> Optional[Sequence[int]]:
        if self._phase == 0:
            self._phase = 1
            state.details["num_strata"] = state.num_strata
            return [self.split.stage1_per_stratum] * state.num_strata
        if self._phase == 1:
            self._phase = 2
            stage1_estimates = estimate_all_strata(state.rounds[0])
            # Looked up through the module so the allocation-rule ablation
            # (repro.experiments.ablations) can swap the rule by patching
            # repro.core.allocation.allocation_from_estimates.
            weights = allocation_module.allocation_from_estimates(stage1_estimates)
            counts = bounded_allocation(
                weights, self.split.stage2_total, state.pool.remaining
            )
            state.details.update(
                {
                    "stage1_per_stratum": self.split.stage1_per_stratum,
                    "stage2_total": self.split.stage2_total,
                    "stage2_counts": [int(c) for c in counts],
                    "allocation_weights": weights.tolist(),
                    "stage1_estimates": stage1_estimates,
                }
            )
            return counts
        if self._extension_rounds:
            return self._extension_rounds.pop(0)
        return None

    def extend_budget(self, state: PipelineState, extra: int) -> None:
        weights = allocation_module.allocation_from_estimates(
            estimate_all_strata(state.samples)
        )
        self._extension_rounds.append(
            bounded_allocation(weights, extra, state.pool.remaining)
        )


class TwoStageEstimator(StratifiedEstimator):
    """The paper's combined estimate, with the sample-reuse lesion switch.

    With ``reuse_samples`` (the paper's default) the final estimates fold
    in every round's draws; without it only post-pilot rounds count,
    reproducing the lesion study.
    """

    def __init__(self, reuse_samples: bool = True, method: Optional[str] = None):
        if method is None:
            method = "abae" if reuse_samples else "abae-no-reuse"
        super().__init__(method)
        self.reuse_samples = reuse_samples

    def final_samples(self, state: PipelineState) -> List[StratumSample]:
        if self.reuse_samples:
            return list(state.samples)
        return state.merged_rounds(start=1)


# ---------------------------------------------------------------------------
# Uniform baseline
# ---------------------------------------------------------------------------


class UniformAllocationPolicy(AllocationPolicy):
    """Spend the whole budget in one uniform round over a single stratum."""

    def __init__(self, budget: int):
        self.budget = int(budget)
        self._issued = False

    def next_counts(self, state: PipelineState) -> Optional[Sequence[int]]:
        if self._issued:
            if state.remaining_budget > 0 and state.pool.remaining[0] > 0:
                # A budget top-up re-opened the session: keep drawing
                # uniformly from the untouched records.
                return [state.remaining_budget]
            return None
        self._issued = True
        return [self.budget]


class UniformEstimator(StratifiedEstimator):
    """Mean of the statistic over predicate-positive draws.

    Computed exactly as the monolithic baseline did — a direct mean over
    positive values, not the (algebraically equal but not bit-equal)
    single-stratum weighted combination.
    """

    def __init__(self, num_records: int):
        super().__init__("uniform")
        self.num_records = int(num_records)

    def point_estimate(self, state: PipelineState, estimates=None) -> float:
        positives = state.samples[0].positive_values
        return float(positives.mean()) if positives.size else 0.0

    def estimate_from(self, final_samples, final_estimates) -> float:
        positives = final_samples[0].positive_values
        return float(positives.mean()) if positives.size else 0.0

    def extra_details(self, state: PipelineState):
        return {"num_records": self.num_records}


# ---------------------------------------------------------------------------
# Bandit-style sequential re-allocation
# ---------------------------------------------------------------------------


def marginal_variance_reduction(
    samples: Sequence[StratumSample],
    kernels: Optional[KernelSet] = None,
) -> np.ndarray:
    """Priority score per stratum: estimated variance removed by one more draw.

    The estimator's variance has two per-stratum components:

    * the usual within-stratum term ``w_k^2 sigma_k^2 / (p_k n_k)`` from the
      uncertainty of ``mu_hat_k`` (the leading term of Proposition 3), and
    * a weight-uncertainty term from ``p_hat_k`` itself: the final estimate
      weighs ``mu_hat_k`` by ``p_hat_k / p_all``, so by the delta method a
      stratum whose mean differs from the overall mean contributes roughly
      ``((mu_k - mu_all) / p_all)^2 p_k (1 - p_k) / n_k``.

    One more draw divides each term's ``1/n_k`` by roughly ``(n_k + 1)/n_k``,
    so the marginal gain is the current contribution divided by ``n_k + 1``.
    Including the second term matters in practice: with a binary statistic a
    stratum can have ``sigma_hat_k = 0`` while its ``p_hat_k`` is still very
    uncertain, and a criterion based on ``sigma_hat_k`` alone would starve it
    (and inflate the final error).  Strata with no draws yet receive an
    exploration bonus equal to the largest known priority.

    The estimate columns come from :func:`estimate_arrays` (no per-call
    object/listcomp churn) and the element-wise core dispatches through
    the ``priority_core`` kernel; the two float reductions (``p_all``,
    ``mu_all``) stay in NumPy here so every backend shares them
    bit-for-bit (see :mod:`repro.kernels`).
    """
    if kernels is None:
        kernels = kernel_set()
    p, mu, sigma, draws = estimate_arrays(samples)
    p_all = p.sum()
    if p_all == 0:
        # Nothing known yet anywhere: explore uniformly.
        return np.ones(len(samples))
    w = p / p_all
    mu_all = float(np.dot(w, mu))
    priority = kernels.priority_core(p, sigma, mu, draws, float(p_all), mu_all)

    unexplored = draws == 0
    if unexplored.any():
        bonus = float(priority[~unexplored].max()) if (~unexplored).any() else 1.0
        priority[unexplored] = max(bonus, 1e-12)
    return priority


class SequentialAllocationPolicy(AllocationPolicy):
    """Bandit-style re-allocation: revisit the allocation after every batch.

    A small round-robin warm-up plays the role of Stage 1; every
    subsequent round spreads ``reallocation_batch`` draws across strata
    proportionally to their marginal variance reduction.  The loop reads
    ``state.budget``, so budget top-ups resume it with no extra machinery.
    """

    def __init__(self, warmup_per_stratum: int, reallocation_batch: int):
        self.warmup_per_stratum = int(warmup_per_stratum)
        self.reallocation_batch = int(reallocation_batch)
        self._warmed = False

    def next_counts(self, state: PipelineState) -> Optional[Sequence[int]]:
        if not self._warmed:
            self._warmed = True
            warmup = min(
                self.warmup_per_stratum,
                state.budget // max(state.num_strata, 1),
            )
            state.details["num_strata"] = state.num_strata
            state.details["warmup_per_stratum"] = warmup
            state.details["batch_size"] = self.reallocation_batch
            return [warmup] * state.num_strata
        if state.spent >= state.budget:
            return None
        this_batch = min(self.reallocation_batch, state.budget - state.spent)
        kernels = state.pool.kernels
        priorities = marginal_variance_reduction(state.samples, kernels=kernels)
        # Mask out exhausted strata.
        priorities[state.pool.remaining == 0] = 0.0
        total_priority = priorities.sum()
        if total_priority == 0:
            return None
        # Spread the batch proportionally to priority rather than sending it
        # all to the argmax, so one noisy priority estimate cannot distort
        # the allocation for a whole batch.
        return kernels.floor_spread(priorities / total_priority, this_batch)


# ---------------------------------------------------------------------------
# Online aggregation: sample until the CI is narrow enough
# ---------------------------------------------------------------------------


class UntilWidthAllocationPolicy(AllocationPolicy):
    """Keep sampling until the bootstrap CI is narrower than a target.

    An initial round-robin pass (one stratum per round, so the budget
    clamp tracks actual draws exactly as the monolithic driver's loop did)
    makes the first CI well-defined; every later round re-checks the CI —
    consuming the session RNG for the bootstrap, which is therefore part
    of the deterministic draw sequence — and allocates the next batch by
    marginal variance reduction.  ``state.budget`` is the ``max_budget``
    ceiling, so top-ups extend the search transparently.
    """

    def __init__(
        self,
        target_width: float,
        reallocation_batch: int,
        alpha: float,
        num_bootstrap: int,
    ):
        self.target_width = float(target_width)
        self.reallocation_batch = int(reallocation_batch)
        self.alpha = float(alpha)
        self.num_bootstrap = int(num_bootstrap)
        self._warmup_remaining: Optional[int] = None

    def next_counts(self, state: PipelineState) -> Optional[Sequence[int]]:
        num_strata = state.num_strata
        if self._warmup_remaining is None:
            self._warmup_remaining = num_strata
            state.details["target_width"] = self.target_width
        if self._warmup_remaining > 0:
            per_stratum = max(1, self.reallocation_batch // num_strata)
            k = num_strata - self._warmup_remaining
            self._warmup_remaining -= 1
            counts = [0] * num_strata
            counts[k] = min(per_stratum, max(0, state.budget - state.spent))
            return counts
        # Round boundary: refresh the CI over everything drawn so far and
        # record the (budget, estimate, width) checkpoint.
        state.ci = bootstrap_confidence_interval(
            state.samples,
            alpha=self.alpha,
            num_bootstrap=self.num_bootstrap,
            rng=state.rng,
        )
        estimate = combine_estimates(estimate_all_strata(state.samples))
        state.details.setdefault("trace", []).append(
            {
                "oracle_calls": state.spent,
                "estimate": estimate,
                "ci_width": state.ci.width,
            }
        )
        if state.ci.width <= self.target_width or state.spent >= state.budget:
            return None
        kernels = state.pool.kernels
        priorities = marginal_variance_reduction(state.samples, kernels=kernels)
        priorities[state.pool.remaining == 0] = 0.0
        total_priority = priorities.sum()
        if total_priority == 0:
            return None
        # Spread the batch across strata proportionally to priority, so a
        # single noisy priority estimate cannot hog the whole batch.
        batch = min(self.reallocation_batch, state.budget - state.spent)
        return kernels.floor_spread(priorities / total_priority, batch)


class UntilWidthEstimator(StratifiedEstimator):
    """Standard combiner plus the until-width driver's diagnostics."""

    def __init__(self):
        super().__init__("abae-until-width")

    def extra_details(self, state: PipelineState):
        target = state.details.get("target_width")
        reached = state.ci is not None and state.ci.width <= target
        return {"reached_target": bool(reached)}


# ---------------------------------------------------------------------------
# Exploitation continuation (group-by stage 2, budget top-ups)
# ---------------------------------------------------------------------------


class BoundedExploitPolicy(AllocationPolicy):
    """One exploitation round with externally-chosen weights and budget.

    The group-by extensions choose each group's Stage-2 budget share by
    the minimax objective *across* groups; within the group the share is
    spread over strata proportional to ``weights`` bounded by remaining
    capacity.  Used with a pipeline primed with the group's pilot samples
    (``initial_samples``), this is exactly the monolithic samplers'
    stage-2 continuation — and the template for resuming any checkpointed
    two-stage run with extra budget.
    """

    def __init__(self, weights: Sequence[float], total: int):
        self.weights = np.asarray(weights, dtype=float)
        self.total = int(total)
        self._issued = False

    def next_counts(self, state: PipelineState) -> Optional[Sequence[int]]:
        if self._issued:
            return None
        self._issued = True
        return bounded_allocation(self.weights, self.total, state.pool.remaining)
