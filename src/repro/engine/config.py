"""Execution configuration: every physical knob of the sampling engine.

PRs 1–3 grew the execution substrate knob by knob — ``batch_size`` (oracle
batching), ``num_workers`` / ``parallel_backend`` (worker-pool sharding),
``plan_cache`` (process-wide stratification reuse) — and threaded each one
through every ``run_*`` signature, both facades, the query planner and the
experiment runner by hand.  :class:`ExecutionConfig` collapses that
four-knob threading into one validated value object:

* every knob is validated **eagerly at construction**, through one shared
  error path (:class:`ExecutionConfigError`, a ``ValueError``), so a bad
  setting fails where it is written rather than deep inside a sampling
  loop;
* the knobs remain *pure execution hints*: estimates, confidence
  intervals and oracle call counts are bit-identical for every setting
  (the contract pinned by ``tests/harness.py``);
* the legacy per-function kwargs keep working as **deprecated aliases**
  via :func:`resolve_execution_config`, which folds them into a config and
  warns loudly.

The config also owns the two cross-cutting execution policies the old
signatures could not express: the ``seed`` fallback used when a caller
passes no explicit RNG, and an optional ``progress`` callback the pipeline
invokes as sampling advances (see :class:`ProgressEvent`).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.parallel import THREAD_BACKEND, resolve_backend, resolve_num_workers
from repro.kernels.registry import validate_kernel_hint
from repro.stats.rng import RandomState

__all__ = [
    "UNSET",
    "ExecutionConfig",
    "ExecutionConfigError",
    "ProgressEvent",
    "resolve_execution_config",
    "resolve_kernel_set",
]


class _Unset:
    """Sentinel distinguishing "argument omitted" from an explicit ``None``."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<UNSET>"

    def __bool__(self) -> bool:
        return False


UNSET = _Unset()


class ExecutionConfigError(ValueError):
    """A bad execution knob, raised eagerly at configuration time.

    Subclasses ``ValueError`` so existing callers (and tests) that guard
    with ``except ValueError`` keep working; the planner re-wraps it into
    a :class:`~repro.query.errors.PlanningError`.
    """


@dataclass(frozen=True)
class ProgressEvent:
    """One engine progress notification, delivered to ``config.progress``.

    ``phase`` is ``"draw"`` (one stratum's draw executed), ``"allocate"``
    (a new allocation round was planned) or ``"finalize"`` (sampling is
    complete).  ``spent`` counts oracle draws charged so far; ``budget``
    is the session's current total budget (which can grow via top-ups).
    """

    phase: str
    round_index: int
    stratum: Optional[int]
    drawn: int
    spent: int
    budget: Optional[int]


@dataclass(frozen=True)
class ExecutionConfig:
    """How a sampling run executes — never *what* it computes.

    Parameters
    ----------
    batch_size:
        Records per oracle invocation batch (``None`` = whole per-stratum
        draws at once, ``1`` = the strictly sequential legacy path).
    num_workers:
        Worker-pool shards per oracle batch (``None`` = serial).
    parallel_backend:
        ``"thread"`` (oracles that release the GIL) or ``"process"``
        (pure-Python picklable oracles); see :mod:`repro.core.parallel`.
    plan_cache:
        Whether execution may reuse the process-wide proxy-scores /
        stratification caches (see :mod:`repro.core.stratification`).
    seed:
        Fallback seed used when a run is started without an explicit
        ``rng`` (``None`` keeps the historical seed-0 default).
    progress:
        Optional callback invoked with :class:`ProgressEvent` instances as
        the pipeline advances.  Purely observational — it must not mutate
        sampler state.
    kernel:
        Which sampler inner-loop kernel backend to use: ``"auto"`` (the
        default — consult ``REPRO_KERNEL``, then pick numba when
        importable, numpy otherwise), ``"numpy"`` (force the reference),
        or ``"numba"`` (force the jitted backend; errors when numba is
        not importable).  A pure execution hint: every backend is
        bit-identical by contract (see :mod:`repro.kernels`).

    All fields are validated in ``__post_init__`` through the one shared
    error path; every error is an :class:`ExecutionConfigError`.
    """

    batch_size: Optional[int] = None
    num_workers: Optional[int] = None
    parallel_backend: str = THREAD_BACKEND
    plan_cache: bool = True
    seed: Optional[int] = None
    progress: Optional[Callable[[ProgressEvent], None]] = None
    kernel: str = "auto"

    def __post_init__(self):
        messages = list(self._validation_errors())
        if messages:
            # One raise covering every invalid field: a caller fixing a
            # config learns all the problems (and all the allowed values)
            # in one round trip instead of one per attempt.
            raise ExecutionConfigError("; ".join(messages))

    def _validation_errors(self):
        """Yield one message per invalid field (the shared error path)."""
        if self.batch_size is not None and (
            not isinstance(self.batch_size, (int, np.integer))
            or isinstance(self.batch_size, bool)
            or self.batch_size < 1
        ):
            yield (
                f"batch_size must be a positive integer or None, got "
                f"{self.batch_size!r}"
            )
        elif isinstance(self.batch_size, np.integer):
            object.__setattr__(self, "batch_size", int(self.batch_size))
        try:
            resolve_num_workers(self.num_workers)
        except ValueError as exc:
            yield str(exc)
        else:
            if isinstance(self.num_workers, np.integer):
                object.__setattr__(self, "num_workers", int(self.num_workers))
        try:
            resolve_backend(self.parallel_backend)
        except ValueError as exc:
            yield str(exc)
        if not isinstance(self.plan_cache, bool):
            yield f"plan_cache must be a boolean, got {self.plan_cache!r}"
        if self.seed is not None and (
            not isinstance(self.seed, (int, np.integer))
            or isinstance(self.seed, bool)
        ):
            yield f"seed must be an integer or None, got {self.seed!r}"
        elif isinstance(self.seed, np.integer):
            object.__setattr__(self, "seed", int(self.seed))
        if self.progress is not None and not callable(self.progress):
            yield f"progress must be callable or None, got {self.progress!r}"
        try:
            validate_kernel_hint(self.kernel)
        except ValueError as exc:
            yield str(exc)

    # -- Derived helpers -----------------------------------------------------------
    def merged(self, **overrides) -> "ExecutionConfig":
        """A copy with the given fields replaced (``UNSET`` values ignored).

        An explicit ``None`` override is honoured — it legitimately means
        "whole-draw batches" / "serial execution" for the two knobs where
        ``None`` is a value, matching the facades' historical override
        semantics.
        """
        effective = {k: v for k, v in overrides.items() if v is not UNSET}
        unknown = set(effective) - {f.name for f in dataclasses.fields(self)}
        if unknown:
            raise ExecutionConfigError(
                f"unknown execution knobs: {sorted(unknown)}"
            )
        if not effective:
            return self
        return dataclasses.replace(self, **effective)

    def make_rng(self, rng: Optional[RandomState] = None) -> RandomState:
        """The run's random state: explicit ``rng`` wins, else ``seed``.

        The historical samplers defaulted to ``RandomState(0)`` when no
        RNG was supplied; ``seed=None`` preserves that default exactly.
        """
        if rng is not None:
            return rng
        return RandomState(self.seed if self.seed is not None else 0)

    def notify(self, event: ProgressEvent) -> None:
        """Deliver a progress event, if a callback is configured."""
        if self.progress is not None:
            self.progress(event)


def resolve_kernel_set(config: ExecutionConfig):
    """The :class:`~repro.kernels.KernelSet` for ``config.kernel``.

    Shared by every engine entry point so kernel-resolution failures — a
    forced ``kernel="numba"`` where numba is not importable, or a bad
    ``REPRO_KERNEL`` value — surface through the one
    :class:`ExecutionConfigError` path instead of a raw ``ValueError``
    from inside the dispatch layer.
    """
    from repro.kernels import kernel_set

    try:
        return kernel_set(config.kernel)
    except ValueError as exc:
        raise ExecutionConfigError(str(exc)) from exc


_LEGACY_KNOBS = ("batch_size", "num_workers", "parallel_backend", "plan_cache")


def resolve_execution_config(
    config: Optional[ExecutionConfig] = None,
    caller: str = "this function",
    *,
    default: Optional[ExecutionConfig] = None,
    warn_legacy: bool = True,
    stacklevel: int = 2,
    batch_size=UNSET,
    num_workers=UNSET,
    parallel_backend=UNSET,
    plan_cache=UNSET,
    kernel=UNSET,
) -> ExecutionConfig:
    """Merge deprecated per-knob kwargs into an :class:`ExecutionConfig`.

    This is the single compatibility shim behind every ``run_*`` function,
    both facades and the query layer: callers that still pass the legacy
    ``batch_size`` / ``num_workers`` / ``parallel_backend`` / ``plan_cache``
    kwargs get a :class:`DeprecationWarning` naming the knobs (so the old
    style keeps working *loudly*), and the values are folded into the
    config — overriding the corresponding field when a config was also
    given.  ``default`` supplies the base config when the caller passed
    none (used by the facades, whose instance-level config is the base for
    per-call overrides).

    ``stacklevel`` controls which frame the warning is attributed to, so
    the user sees *their own* line, never a frame inside this module.
    The default (2) is correct when user code calls this function
    directly; the engine's wrappers (``run_*``, the facades, the query
    layer) pass 3 because they add one frame between the user and the
    warning.
    """
    if config is not None and not isinstance(config, ExecutionConfig):
        raise ExecutionConfigError(
            f"config must be an ExecutionConfig or None, got {config!r}"
        )
    overrides = {
        name: value
        for name, value in (
            ("batch_size", batch_size),
            ("num_workers", num_workers),
            ("parallel_backend", parallel_backend),
            ("plan_cache", plan_cache),
        )
        if value is not UNSET
    }
    if overrides and warn_legacy:
        knobs = ", ".join(sorted(overrides))
        warnings.warn(
            f"passing {knobs} directly to {caller} is deprecated; pass "
            f"them via config=ExecutionConfig(...) instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    base = config if config is not None else (default or ExecutionConfig())
    merged = base.merged(**overrides)
    if kernel is not UNSET:
        # ``kernel=`` is a modern hint, not a legacy knob: it merges
        # silently (no DeprecationWarning) but validates through the same
        # shared ExecutionConfigError path as every other field.
        merged = merged.merged(kernel=kernel)
    return merged
