"""Resumable sampling sessions: streaming execution of a pipeline.

A :class:`SamplingSession` is the state machine that actually executes a
:class:`~repro.engine.pipeline.SamplingPipeline`.  It exposes the three
capabilities the monolithic ``run_*`` functions could not:

* **streaming** — :meth:`step` advances one bounded unit of work (one
  stratum's draw, or one allocation decision) and
  :meth:`partial_estimate` reads the best current estimate between steps
  without perturbing the draw sequence;
* **resumption** — :meth:`checkpoint` serializes the complete execution
  state (samples, pool, RNG, policy) to bytes, and
  :meth:`SamplingPipeline.resume` — via :meth:`restore` — continues in a
  fresh process with fresh (unpicklable) oracles;
* **budget top-ups** — :meth:`add_budget` grows the budget of a finished
  or running session and sampling continues where it stopped.

Determinism: driving a session with ``while session.step(): pass`` and
then :meth:`result` performs *exactly* the same draws against the same
random stream as :meth:`run` — and as the legacy one-shot samplers — so
fingerprints are bit-identical across all three (pinned by
``tests/test_engine_session.py``).
"""

from __future__ import annotations

import pickle
from typing import List, Optional

from repro.core.estimators import estimate_all_strata
from repro.core.results import EstimateResult
from repro.engine.config import ProgressEvent
from repro.engine.pipeline import (
    PipelineState,
    SamplingPipeline,
    _empty_stratum_sample,
)
from repro.oracle.remote import PendingOracleBatch

__all__ = ["SamplingSession", "CheckpointError"]

# Version tag for checkpoint payloads, bumped on layout changes so a stale
# checkpoint fails loudly instead of resuming into corrupt state.
# Version history:
#   1 — initial layout (PR 4).
#   2 — adds the structural-compatibility block ("shape") that restore
#       validates against the fresh pipeline: policy/estimator classes and
#       the stratification shape.  A v1 checkpoint predates the strict
#       validation contract and is rejected rather than trusted blindly.
_CHECKPOINT_VERSION = 2


class CheckpointError(ValueError):
    """A checkpoint that cannot safely resume on the given pipeline.

    Raised by :meth:`SamplingSession.restore` when the payload's version,
    policy/estimator classes or stratification shape do not match the
    freshly-built pipeline — each of which would otherwise let a
    mismatched resume continue silently into corrupt state (wrong draw
    sequence, wrong strata, wrong estimator).  Subclasses ``ValueError``
    so existing ``except ValueError`` guards keep working.
    """


class SamplingSession:
    """Step-driven execution of one sampling pipeline.

    Created by :meth:`SamplingPipeline.session`; not instantiated
    directly.  The session owns the run's mutable state and the draw loop:

    >>> session = pipeline.session(rng)
    >>> while session.step():
    ...     print(session.partial_estimate().estimate)  # streaming reads
    >>> result = session.result()

    which is bit-identical to ``pipeline.run(rng)``.
    """

    def __init__(self, pipeline: SamplingPipeline, state: PipelineState):
        self._pipeline = pipeline
        self._state = state
        self._pending: Optional[List[int]] = None
        self._next_stratum = 0
        self._done = False
        self._result: Optional[EstimateResult] = None
        self._steps = 0
        self._last_step_cost = 0
        # Cooperative remote oracles (AsyncOracle with blocking=False) may
        # raise PendingOracleBatch from a draw; arm the RNG-rewind path
        # only for them so the common case stays snapshot-free.
        oracle = pipeline.oracle
        self._parkable = bool(getattr(oracle, "parkable", False))
        self._step_boundary = (
            getattr(oracle, "step_boundary", None) if self._parkable else None
        )

    # -- Introspection -------------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the policy has declared sampling complete."""
        return self._done

    @property
    def spent(self) -> int:
        """Oracle draws charged so far."""
        return self._state.spent

    @property
    def budget(self) -> int:
        """The session's current total budget (grows via :meth:`add_budget`)."""
        return self._state.budget

    @property
    def state(self) -> PipelineState:
        """The underlying pipeline state (read-only by convention)."""
        return self._state

    @property
    def steps(self) -> int:
        """How many units of work :meth:`step` has executed so far.

        Purely observational (the cooperative serving scheduler uses it
        for per-step cost accounting); it never influences the draw
        sequence.  Carried through checkpoints.
        """
        return self._steps

    @property
    def last_step_cost(self) -> int:
        """Oracle draws charged by the most recent :meth:`step`.

        Allocation steps cost 0; a draw step costs that stratum's draw
        count.  Summed over all steps this equals ``spent`` (minus any
        initial spend the session was primed with).
        """
        return self._last_step_cost

    # -- Stepping ------------------------------------------------------------------
    def step(self) -> bool:
        """Advance one unit of work; ``False`` once sampling is complete.

        A unit is either one allocation decision (the policy plans the
        next round) or one stratum's draw within the current round.  The
        unit boundaries are part of no contract except granularity: the
        sequence of draws and RNG consumption is identical to
        :meth:`run`'s.  Each executed unit advances :attr:`steps` and
        records its oracle-draw cost in :attr:`last_step_cost` — the
        per-step accounting the serving scheduler charges against tenant
        quotas.
        """
        if self._done:
            return False
        state = self._state
        spent_before = state.spent
        if self._pending is None:
            counts = self._pipeline.policy.next_counts(state)
            if counts is None:
                self._done = True
                return False
            counts = [int(c) for c in counts]
            if len(counts) != state.num_strata:
                raise ValueError(
                    f"policy returned {len(counts)} counts for "
                    f"{state.num_strata} strata"
                )
            state.rounds.append(
                [_empty_stratum_sample(k) for k in range(state.num_strata)]
            )
            self._pending = counts
            self._next_stratum = 0
            self._pipeline.config.notify(
                ProgressEvent(
                    phase="allocate",
                    round_index=state.round_index,
                    stratum=None,
                    drawn=0,
                    spent=state.spent,
                    budget=state.budget,
                )
            )
            self._steps += 1
            self._last_step_cost = state.spent - spent_before
            return True
        k = self._next_stratum
        if self._parkable:
            self._draw_parkable(state, k)
        else:
            self._pipeline.draw(state, k, self._pending[k])
        self._next_stratum += 1
        if self._next_stratum >= state.num_strata:
            self._pending = None
            state.round_index += 1
        self._steps += 1
        self._last_step_cost = state.spent - spent_before
        return True

    def _draw_parkable(self, state: PipelineState, k: int) -> None:
        """One stratum draw against a cooperative (parkable) remote oracle.

        If the oracle's batch is still in flight it raises
        :class:`~repro.oracle.remote.PendingOracleBatch` *before* any
        state mutates — only the session RNG was consumed, selecting the
        records to label.  We rewind that and re-raise, so retrying the
        step re-selects the identical records and the draw sequence stays
        bit-for-bit what a blocking run would produce.  After a draw
        completes, the oracle's per-step replay buffer (which bridges
        chunked multi-batch draws across park/retry cycles) is cleared.
        """
        snapshot = state.rng.generator.bit_generator.state
        try:
            self._pipeline.draw(state, k, self._pending[k])
        except PendingOracleBatch:
            state.rng.generator.bit_generator.state = snapshot
            raise
        if self._step_boundary is not None:
            self._step_boundary()

    def run(self) -> EstimateResult:
        """Drive the session to completion and return the finalized result."""
        while self.step():
            pass
        return self.result()

    # -- Results -------------------------------------------------------------------
    def partial_estimate(self) -> EstimateResult:
        """The best current estimate from the samples accumulated so far.

        Never consumes the session RNG (no bootstrap), so streaming reads
        between steps cannot perturb the draw sequence — the final result
        stays bit-identical to an unobserved run.  The returned result
        carries the cumulative per-stratum samples and marks itself
        partial in ``details``.
        """
        state = self._state
        estimates = estimate_all_strata(state.samples)
        return EstimateResult(
            estimate=self._pipeline.estimator.point_estimate(state, estimates),
            ci=state.ci,
            oracle_calls=state.spent,
            strata_estimates=estimates,
            samples=list(state.samples),
            method=self._pipeline.estimator.method,
            details={
                "partial": True,
                "spent": state.spent,
                "budget": state.budget,
                "rounds_completed": state.round_index,
            },
        )

    def result(self) -> EstimateResult:
        """The finalized result (cached; requires the session to be done)."""
        if not self._done:
            raise RuntimeError(
                "session is not finished; drive it with run() or step() "
                "first, or read partial_estimate() for a streaming value"
            )
        if self._result is None:
            self._result = self._pipeline.finalize(self._state)
        return self._result

    # -- Budget top-ups ------------------------------------------------------------
    def add_budget(self, extra: int) -> None:
        """Grow the session's budget and resume sampling where it stopped.

        The allocation policy decides how the extra budget is spent: loop
        policies (sequential, until-width) simply keep iterating under the
        raised ceiling, while the two-stage policy plans one additional
        exploitation round using the current plug-in estimates.  A
        finished session becomes steppable again; its cached result is
        discarded.  Note a topped-up run is *additional* sampling — it is
        not required (or expected) to match a one-shot run at the larger
        budget, which would have allocated differently from the start.
        """
        if extra <= 0:
            raise ValueError(f"extra budget must be positive, got {extra}")
        self._state.budget += int(extra)
        self._pipeline.policy.extend_budget(self._state, int(extra))
        self._done = False
        self._result = None
        # Any CI computed so far covers the pre-top-up samples only; drop
        # it so the next finalize (or, for until-width, the policy's next
        # round boundary) recomputes over everything drawn.
        self._state.ci = None

    # -- Checkpointing -------------------------------------------------------------
    def checkpoint(self) -> bytes:
        """Serialize the complete execution state to bytes.

        The payload carries the samples, pool, RNG, policy and estimator
        state — everything needed to continue — but deliberately *not* the
        oracle, statistic or config: those may hold unpicklable resources
        (model handles, callbacks) and are re-supplied by the pipeline that
        restores the checkpoint.
        """
        state = self._state
        payload = {
            "version": _CHECKPOINT_VERSION,
            # Structural identity of the run, validated on restore so a
            # checkpoint can only resume on a compatible fresh pipeline.
            "shape": _pipeline_shape(self._pipeline, state),
            "state": {
                "stratification": state.stratification,
                "pool": state.pool,
                "rng": state.rng,
                "budget": state.budget,
                "spent": state.spent,
                "samples": state.samples,
                "rounds": state.rounds,
                "round_index": state.round_index,
                "details": state.details,
                "ci": state.ci,
            },
            "policy": self._pipeline.policy,
            "estimator": self._pipeline.estimator,
            "pending": self._pending,
            "next_stratum": self._next_stratum,
            "done": self._done,
            # Observational per-step accounting; optional on restore so v2
            # checkpoints taken before it existed still resume.
            "steps": self._steps,
        }
        return pickle.dumps(payload)

    @classmethod
    def restore(
        cls, pipeline: SamplingPipeline, checkpoint: bytes
    ) -> "SamplingSession":
        """Rebuild a session from :meth:`checkpoint` bytes.

        ``pipeline`` supplies the live (possibly unpicklable) ingredients —
        oracle, statistic, config — and must be freshly built with the same
        logical parameters as the checkpointed run; the checkpoint's
        policy, estimator and state replace the pipeline's own.  Exposed to
        users as :meth:`SamplingPipeline.resume`.

        Raises :class:`CheckpointError` (a ``ValueError``) when the
        checkpoint cannot safely resume on ``pipeline``: an unsupported
        payload version, a policy or estimator of a different class than
        the pipeline's (e.g. a two-stage checkpoint resumed into a
        uniform pipeline), or a stratification shape (strata count /
        record count) that does not match — any of which would silently
        continue into a corrupt draw sequence if allowed through.
        Truncated or garbage bytes (a torn file, a bad journal frame)
        also raise :class:`CheckpointError` — never a raw
        ``pickle``/``EOFError`` — with the byte length and underlying
        error in the message.
        """
        payload = _decode_checkpoint(checkpoint)
        if payload.get("version") != _CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {payload.get('version')!r}; "
                f"expected {_CHECKPOINT_VERSION}.  Checkpoints do not "
                "migrate across engine versions — re-run the sampling "
                "session under the current engine"
            )
        saved = payload["state"]
        _validate_checkpoint_shape(
            payload.get("shape", {}), pipeline, payload["policy"],
            payload["estimator"],
        )
        state = PipelineState(
            pool=saved["pool"],
            rng=saved["rng"],
            budget=saved["budget"],
            stratification=saved["stratification"],
            initial_samples=saved["samples"],
            initial_spent=saved["spent"],
        )
        state.rounds = saved["rounds"]
        state.round_index = saved["round_index"]
        state.details = saved["details"]
        state.ci = saved["ci"]
        # The restoring pipeline's config decides the kernel backend; the
        # backend recorded in the checkpoint was only a fallback for
        # unpickling (backends are bit-identical, so this never changes
        # the resumed draw sequence).
        state.pool.rebind_kernels(pipeline.kernels)
        pipeline.policy = payload["policy"]
        pipeline.estimator = payload["estimator"]
        session = cls(pipeline, state)
        session._pending = payload["pending"]
        session._next_stratum = payload["next_stratum"]
        session._done = payload["done"]
        session._steps = int(payload.get("steps", 0))
        pipeline._session = session
        return session


def _decode_checkpoint(checkpoint: bytes) -> dict:
    """Unpickle checkpoint bytes defensively.

    Any corruption — truncation mid-stream, bit flips, bytes that were
    never a checkpoint — surfaces as :class:`CheckpointError` with the
    payload length and the decoder's own error, instead of a raw
    ``pickle.UnpicklingError`` / ``EOFError`` / ``AttributeError`` leaking
    from deep inside the pickle machinery.
    """
    if not isinstance(checkpoint, (bytes, bytearray, memoryview)):
        raise CheckpointError(
            f"checkpoint must be bytes, got {type(checkpoint).__name__}"
        )
    data = bytes(checkpoint)
    try:
        payload = pickle.loads(data)
    except Exception as exc:
        raise CheckpointError(
            f"corrupt checkpoint: {len(data)} byte(s) failed to decode "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"corrupt checkpoint: decoded to {type(payload).__name__}, "
            "expected a payload dict"
        )
    missing = [
        key
        for key in ("version", "state", "policy", "estimator", "pending",
                    "next_stratum", "done")
        if key not in payload
    ]
    if missing:
        raise CheckpointError(
            f"corrupt checkpoint: payload is missing key(s) {missing} "
            f"(decoded from {len(data)} byte(s))"
        )
    state = payload["state"]
    if not isinstance(state, dict):
        raise CheckpointError(
            "corrupt checkpoint: 'state' decoded to "
            f"{type(state).__name__}, expected a dict"
        )
    state_missing = [
        key
        for key in ("stratification", "pool", "rng", "budget", "spent",
                    "samples", "rounds", "round_index", "details", "ci")
        if key not in state
    ]
    if state_missing:
        raise CheckpointError(
            f"corrupt checkpoint: state block is missing key(s) "
            f"{state_missing} (decoded from {len(data)} byte(s))"
        )
    return payload


def _class_name(obj) -> str:
    return f"{type(obj).__module__}.{type(obj).__qualname__}"


def _pipeline_shape(pipeline: SamplingPipeline, state: PipelineState) -> dict:
    """The structural identity a checkpoint must match to resume."""
    stratification = state.stratification
    return {
        "policy_class": _class_name(pipeline.policy),
        "estimator_class": _class_name(pipeline.estimator),
        "num_strata": state.pool.num_strata,
        "num_records": (
            None if stratification is None else stratification.num_records
        ),
    }


def _fresh_pipeline_shape(pipeline: SamplingPipeline) -> dict:
    """The same structural identity, read off a freshly-built pipeline."""
    if pipeline.stratification is not None:
        num_strata = pipeline.stratification.num_strata
        num_records = pipeline.stratification.num_records
    else:
        num_strata = len(pipeline._strata)
        num_records = None
    return {
        "policy_class": _class_name(pipeline.policy),
        "estimator_class": _class_name(pipeline.estimator),
        "num_strata": num_strata,
        "num_records": num_records,
    }


def _validate_checkpoint_shape(
    saved_shape: dict, pipeline: SamplingPipeline, policy, estimator
) -> None:
    """Reject checkpoints that structurally mismatch the fresh pipeline.

    The comparison is deliberately two-layered: the *payload's* recorded
    shape (what the checkpointing session believed) and the *unpickled
    objects'* actual classes both have to line up with the fresh
    pipeline, so neither a stale shape block nor a hand-edited payload
    slips through.
    """
    fresh = _fresh_pipeline_shape(pipeline)
    saved_policy = saved_shape.get("policy_class", _class_name(policy))
    if (
        saved_policy != fresh["policy_class"]
        or _class_name(policy) != fresh["policy_class"]
    ):
        raise CheckpointError(
            f"checkpoint was taken with policy {saved_policy}, but the "
            f"pipeline to resume on uses {fresh['policy_class']}; resuming "
            "would continue a different sampler's draw sequence"
        )
    saved_estimator = saved_shape.get("estimator_class", _class_name(estimator))
    if (
        saved_estimator != fresh["estimator_class"]
        or _class_name(estimator) != fresh["estimator_class"]
    ):
        raise CheckpointError(
            f"checkpoint was taken with estimator {saved_estimator}, but "
            f"the pipeline to resume on uses {fresh['estimator_class']}"
        )
    saved_strata = saved_shape.get("num_strata")
    if saved_strata is not None and saved_strata != fresh["num_strata"]:
        raise CheckpointError(
            f"checkpoint stratification has {saved_strata} strata, the "
            f"fresh pipeline has {fresh['num_strata']}; resuming would "
            "draw from the wrong strata"
        )
    saved_records = saved_shape.get("num_records")
    if (
        saved_records is not None
        and fresh["num_records"] is not None
        and saved_records != fresh["num_records"]
    ):
        raise CheckpointError(
            f"checkpoint covers a dataset of {saved_records} records, the "
            f"fresh pipeline one of {fresh['num_records']}"
        )
