"""Pipeline builders: assemble a configured pipeline per sampler family.

These are the constructors behind the ``run_*`` wrappers in
:mod:`repro.core` — and the entry points for users who want *sessions*
(streaming / resumable execution) rather than one-shot runs::

    from repro.engine import ExecutionConfig, two_stage_pipeline

    pipeline = two_stage_pipeline(
        proxy=scores, oracle=oracle, statistic=values, budget=10_000,
        config=ExecutionConfig(batch_size=None, num_workers=4),
    )
    session = pipeline.session(rng)
    while session.step():
        print(session.partial_estimate().estimate)   # streaming estimates
    result = session.result()

Each builder performs exactly the validation and stratification its
monolithic predecessor performed, in the same order, so error messages
and the deterministic draw sequence are preserved bit-for-bit.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.core.stratification import Stratification
from repro.core.types import SamplingBudget, StratumSample
from repro.engine.config import ExecutionConfig
from repro.engine.pipeline import (
    SamplingPipeline,
    StatisticLike,
    StratifiedEstimator,
)
from repro.engine.policies import (
    BoundedExploitPolicy,
    SequentialAllocationPolicy,
    TwoStageAllocationPolicy,
    TwoStageEstimator,
    UniformAllocationPolicy,
    UniformEstimator,
    UntilWidthAllocationPolicy,
    UntilWidthEstimator,
)
from repro.proxy.base import PrecomputedProxy, Proxy

__all__ = [
    "as_proxy",
    "two_stage_pipeline",
    "uniform_pipeline",
    "sequential_pipeline",
    "until_width_pipeline",
    "multipred_pipeline",
    "exploit_continuation_pipeline",
]


def as_proxy(proxy: Union[Proxy, Sequence[float]], name: str = "scores") -> Proxy:
    """Wrap raw scores or a backend column as a :class:`Proxy`.

    Proxies pass through; dataset-backend column handles wrap in a
    :class:`~repro.proxy.base.BackedProxy` (scores gathered through the
    backend); anything else is treated as a dense score vector.
    """
    if isinstance(proxy, Proxy):
        return proxy
    from repro.data.backend import is_column_handle

    if is_column_handle(proxy):
        from repro.proxy.base import BackedProxy

        return BackedProxy(proxy, name=name)
    return PrecomputedProxy(np.asarray(proxy, dtype=float), name=name)


def two_stage_pipeline(
    proxy: Union[Proxy, Sequence[float]],
    oracle: Callable[[int], bool],
    statistic: StatisticLike,
    budget: int,
    num_strata: int = 5,
    stage1_fraction: float = 0.5,
    reuse_samples: bool = True,
    stratification: Optional[Stratification] = None,
    with_ci: bool = False,
    alpha: float = 0.05,
    num_bootstrap: int = 1000,
    config: Optional[ExecutionConfig] = None,
    method: Optional[str] = None,
) -> SamplingPipeline:
    """Algorithm 1 as a pipeline: pilot, plug-in allocation, exploitation."""
    proxy_obj = as_proxy(proxy)
    if stratification is None:
        stratification = Stratification.by_proxy_quantile(proxy_obj, num_strata)
    elif stratification.num_records != len(proxy_obj):
        raise ValueError(
            "provided stratification covers a different number of records "
            f"({stratification.num_records}) than the proxy ({len(proxy_obj)})"
        )
    split = SamplingBudget.from_fraction(
        budget, stratification.num_strata, stage1_fraction
    )
    return SamplingPipeline(
        oracle=oracle,
        statistic=statistic,
        policy=TwoStageAllocationPolicy(split),
        estimator=TwoStageEstimator(reuse_samples=reuse_samples, method=method),
        budget=budget,
        stratification=stratification,
        config=config,
        with_ci=with_ci,
        alpha=alpha,
        num_bootstrap=num_bootstrap,
    )


def uniform_pipeline(
    num_records: int,
    oracle: Callable[[int], bool],
    statistic: StatisticLike,
    budget: int,
    with_ci: bool = False,
    alpha: float = 0.05,
    num_bootstrap: int = 1000,
    config: Optional[ExecutionConfig] = None,
) -> SamplingPipeline:
    """The uniform baseline as a degenerate single-stratum pipeline."""
    if num_records <= 0:
        raise ValueError(f"num_records must be positive, got {num_records}")
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    return SamplingPipeline(
        oracle=oracle,
        statistic=statistic,
        policy=UniformAllocationPolicy(budget),
        estimator=UniformEstimator(num_records),
        budget=budget,
        strata=[np.arange(num_records, dtype=np.int64)],
        config=config,
        with_ci=with_ci,
        alpha=alpha,
        num_bootstrap=num_bootstrap,
    )


def sequential_pipeline(
    proxy: Union[Proxy, Sequence[float]],
    oracle: Callable[[int], bool],
    statistic: StatisticLike,
    budget: int,
    num_strata: int = 5,
    warmup_per_stratum: int = 20,
    reallocation_batch: int = 50,
    with_ci: bool = False,
    alpha: float = 0.05,
    num_bootstrap: int = 1000,
    config: Optional[ExecutionConfig] = None,
) -> SamplingPipeline:
    """The bandit-style sequential sampler as a pipeline."""
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    if warmup_per_stratum < 1:
        raise ValueError(
            f"warmup_per_stratum must be positive, got {warmup_per_stratum}"
        )
    if reallocation_batch < 1:
        raise ValueError(f"batch_size must be positive, got {reallocation_batch}")
    stratification = Stratification.by_proxy_quantile(as_proxy(proxy), num_strata)
    return SamplingPipeline(
        oracle=oracle,
        statistic=statistic,
        policy=SequentialAllocationPolicy(warmup_per_stratum, reallocation_batch),
        estimator=StratifiedEstimator("abae-sequential"),
        budget=budget,
        stratification=stratification,
        config=config,
        with_ci=with_ci,
        alpha=alpha,
        num_bootstrap=num_bootstrap,
    )


def until_width_pipeline(
    proxy: Union[Proxy, Sequence[float]],
    oracle: Callable[[int], bool],
    statistic: StatisticLike,
    target_width: float,
    max_budget: int,
    num_strata: int = 5,
    reallocation_batch: int = 200,
    alpha: float = 0.05,
    num_bootstrap: int = 300,
    config: Optional[ExecutionConfig] = None,
) -> SamplingPipeline:
    """The online-aggregation driver (sample until the CI is narrow)."""
    if target_width <= 0:
        raise ValueError(f"target_width must be positive, got {target_width}")
    if max_budget <= 0:
        raise ValueError(f"max_budget must be positive, got {max_budget}")
    if reallocation_batch <= 0:
        raise ValueError(f"batch_size must be positive, got {reallocation_batch}")
    stratification = Stratification.by_proxy_quantile(as_proxy(proxy), num_strata)
    return SamplingPipeline(
        oracle=oracle,
        statistic=statistic,
        policy=UntilWidthAllocationPolicy(
            target_width, reallocation_batch, alpha, num_bootstrap
        ),
        estimator=UntilWidthEstimator(),
        budget=max_budget,
        stratification=stratification,
        config=config,
        with_ci=False,
        alpha=alpha,
        num_bootstrap=num_bootstrap,
    )


def multipred_pipeline(
    expression,
    statistic: StatisticLike,
    budget: int,
    num_strata: int = 5,
    stage1_fraction: float = 0.5,
    with_ci: bool = False,
    alpha: float = 0.05,
    num_bootstrap: int = 1000,
    config: Optional[ExecutionConfig] = None,
) -> SamplingPipeline:
    """ABae over a predicate expression tree, as a pipeline.

    The leaf proxies combine into one score vector (negation ``1 - s``,
    conjunction product, disjunction max) driving the stratification; the
    composite oracle answers the full Boolean expression.  The expression
    is a :class:`repro.core.multipred.PredicateExpr`.
    """
    combined_scores = np.clip(expression.combined_scores(), 0.0, 1.0)
    combined_proxy = PrecomputedProxy(combined_scores, name="multipred_proxy")
    return two_stage_pipeline(
        proxy=combined_proxy,
        oracle=expression.build_oracle(),
        statistic=statistic,
        budget=budget,
        num_strata=num_strata,
        stage1_fraction=stage1_fraction,
        with_ci=with_ci,
        alpha=alpha,
        num_bootstrap=num_bootstrap,
        config=config,
        method="abae-multipred",
    )


def exploit_continuation_pipeline(
    stratification: Stratification,
    oracle: Callable[[int], bool],
    statistic: StatisticLike,
    weights: Sequence[float],
    stage2_total: int,
    initial_samples: Sequence[StratumSample],
    method: str = "abae",
    config: Optional[ExecutionConfig] = None,
) -> SamplingPipeline:
    """Resume exploitation on top of existing per-stratum samples.

    Primes the pool with ``initial_samples`` (marking their records drawn)
    and spends ``stage2_total`` further draws spread over strata
    proportional to ``weights``, bounded by remaining capacity — the
    shared stage-2 continuation used by the group-by extensions and by
    budget top-ups on restored sessions.
    """
    initial_spent = sum(s.num_draws for s in initial_samples)
    return SamplingPipeline(
        oracle=oracle,
        statistic=statistic,
        policy=BoundedExploitPolicy(weights, stage2_total),
        estimator=StratifiedEstimator(method),
        budget=initial_spent + int(stage2_total),
        stratification=stratification,
        config=config,
        initial_samples=initial_samples,
        initial_spent=initial_spent,
    )
