"""repro.engine — the unified sampling execution engine.

One engine under every sampler.  The layering is::

    ExecutionConfig          how a run executes (batching, sharding,
       |                     caching, seed policy, progress callbacks)
    SamplingPipeline         the stratify -> explore -> allocate ->
       |                     exploit -> estimate loop, owned once
    Allocation/Estimator     pluggable per-sampler strategies (two-stage,
       |  policies           uniform, sequential, until-width, ...)
    SamplingSession          step-driven execution: streaming partial
                             estimates, checkpoint/resume, budget top-ups

The monolithic ``run_*`` functions in :mod:`repro.core` are thin wrappers
over the builders in :mod:`repro.engine.builders`; every knob they used
to thread by hand now travels inside an :class:`ExecutionConfig`.
"""

from repro.engine.config import (
    UNSET,
    ExecutionConfig,
    ExecutionConfigError,
    ProgressEvent,
    resolve_execution_config,
)
from repro.engine.pipeline import (
    AllocationPolicy,
    EstimatorPolicy,
    PipelineState,
    SamplingPipeline,
    StratifiedEstimator,
    StratumPool,
    draw_stratum_sample,
    normalize_statistic,
)
from repro.engine.policies import (
    BoundedExploitPolicy,
    SequentialAllocationPolicy,
    TwoStageAllocationPolicy,
    TwoStageEstimator,
    UniformAllocationPolicy,
    UniformEstimator,
    UntilWidthAllocationPolicy,
    UntilWidthEstimator,
    marginal_variance_reduction,
)
from repro.engine.builders import (
    exploit_continuation_pipeline,
    multipred_pipeline,
    sequential_pipeline,
    two_stage_pipeline,
    uniform_pipeline,
    until_width_pipeline,
)
from repro.engine.session import CheckpointError, SamplingSession

__all__ = [
    "UNSET",
    "ExecutionConfig",
    "ExecutionConfigError",
    "ProgressEvent",
    "resolve_execution_config",
    "AllocationPolicy",
    "EstimatorPolicy",
    "PipelineState",
    "SamplingPipeline",
    "SamplingSession",
    "CheckpointError",
    "StratifiedEstimator",
    "StratumPool",
    "draw_stratum_sample",
    "normalize_statistic",
    "TwoStageAllocationPolicy",
    "TwoStageEstimator",
    "UniformAllocationPolicy",
    "UniformEstimator",
    "SequentialAllocationPolicy",
    "UntilWidthAllocationPolicy",
    "UntilWidthEstimator",
    "BoundedExploitPolicy",
    "marginal_variance_reduction",
    "two_stage_pipeline",
    "uniform_pipeline",
    "sequential_pipeline",
    "until_width_pipeline",
    "multipred_pipeline",
    "exploit_continuation_pipeline",
]
