"""The wall-clock seam: every ambient time read flows through here.

Determinism contract (enforced by ``repro.analysis`` / the ``wall-clock``
lint rule): production code in the checked packages (``core``, ``engine``,
``kernels``, ``oracle``, ``serve``) never reads the wall clock directly —
no ``time.time()``, ``time.monotonic()``, ``time.perf_counter()`` or
``time.sleep()`` call sites.  Instead, components take an injectable
``clock`` (and, where they block, a ``sleep``) whose *default* is the
:func:`monotonic` / :func:`sleep` pair defined here.  This module is the
single allowlisted wall-clock call site in the tree, which buys two
things:

* **auditable determinism** — a reviewer (or the linter) can prove that
  estimates and oracle accounting never depend on time by inspecting one
  module, because everything else either receives a clock explicitly or
  defaults to this seam;
* **freezable time** — tests and the chaos harness swap in a
  :class:`ManualClock`, so deadline expiry, SLO timestamps and journal
  ordering can be driven deterministically (frozen, stepped, or raced)
  without a single real sleep.

``Clock`` is just ``Callable[[], float]``: seconds from an arbitrary
origin, comparable only against the same clock (the serving layer uses
monotonic semantics — never wall-time-of-day — so NTP steps cannot move
deadlines).
"""

from __future__ import annotations

import time as _time
from typing import Callable

__all__ = ["Clock", "SleepFn", "monotonic", "sleep", "ManualClock"]

#: The clock interface: a zero-argument callable returning seconds.
Clock = Callable[[], float]

#: The sleep interface: blocks the calling thread for ``seconds``.
SleepFn = Callable[[float], None]


def monotonic() -> float:
    """Seconds on the process monotonic clock (the production default)."""
    return _time.monotonic()


def sleep(seconds: float) -> None:
    """Block the calling thread (the production default sleep)."""
    _time.sleep(seconds)


class ManualClock:
    """A virtual clock for tests: time moves only when told to.

    Usable as both a ``clock`` (call it) and a ``sleep`` seam (pass
    :meth:`sleep`, which *advances* the clock instead of blocking), so a
    retry loop under test completes instantly while observing exactly the
    backoff schedule it would in production.  ``advance`` with no argument
    freezes time entirely — a frozen clock never expires a deadline.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float = 0.0) -> float:
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards: {seconds}")
        self._now += float(seconds)
        return self._now

    def sleep(self, seconds: float) -> None:
        """A sleep seam that advances the virtual clock instead of blocking."""
        if seconds > 0:
            self.advance(seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ManualClock(now={self._now})"
