"""Concentration inequalities used in the paper's analysis (Section 4.4).

The convergence proof divides strata into "large p_k" and "small p_k"
groups using exponential tail bounds on Bernoulli sums (the p* threshold
below Proposition 3) and Chernoff-style bounds on Binomial draws.  We
implement those bounds here so that

* tests can empirically validate that the plug-in estimators concentrate at
  the advertised rates, and
* the adaptive strata-count heuristic (``K`` maximal such that every stratum
  receives at least ~100 Stage-1 samples) can reason about estimate quality.

Boundary convention
-------------------
Every bound follows one rule at its domain edges: *return the trivially
correct probability, or raise* — never a formula artifact.

* ``n <= 0`` → ``ValueError`` (no samples, no bound);
* zero deviation (``t == 0`` / ``epsilon == 0``) → ``1.0`` (every
  probability is at most 1, and the event is a.s. hit at zero deviation);
* degenerate Bernoulli rates ``p in {0, 1}`` with a positive deviation →
  ``0.0`` exactly: the Binomial is a point mass, so the tail event is
  impossible — the generic Chernoff expression would return a positive
  (valid but vacuous) value instead of the exact answer.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "hoeffding_bound",
    "bernoulli_upper_tail",
    "bernoulli_lower_tail",
    "binomial_tail_bound",
    "sub_gaussian_mean_bound",
    "small_pk_threshold",
]


def hoeffding_bound(n: int, epsilon: float, value_range: float = 1.0) -> float:
    """Two-sided Hoeffding bound for the mean of ``n`` bounded variables.

    ``P(|mean - E[mean]| >= epsilon) <= 2 exp(-2 n eps^2 / range^2)``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    if value_range <= 0:
        raise ValueError(f"value_range must be positive, got {value_range}")
    if epsilon == 0:
        return 1.0
    return float(min(1.0, 2.0 * np.exp(-2.0 * n * epsilon**2 / value_range**2)))


def bernoulli_upper_tail(n: int, p: float, t: float) -> float:
    """Chernoff upper-tail bound for a Binomial(n, p) sum exceeding its mean by ``t``.

    Uses the multiplicative Chernoff form
    ``P(X >= np + t) <= exp(-t^2 / (2 np + 2t/3))`` (Bernstein-flavoured),
    which is the quantitative form the paper's Lemma 1 relies on.
    """
    _validate_binomial_args(n, p)
    if t < 0:
        raise ValueError(f"deviation t must be non-negative, got {t}")
    if t == 0:
        return 1.0
    if p in (0.0, 1.0):
        # Point-mass Binomial: X is exactly 0 (or n), so exceeding the
        # mean by any positive t is impossible.
        return 0.0
    mean = n * p
    return float(min(1.0, np.exp(-(t**2) / (2.0 * mean + 2.0 * t / 3.0))))


def bernoulli_lower_tail(n: int, p: float, t: float) -> float:
    """Chernoff lower-tail bound ``P(X <= np - t) <= exp(-t^2 / (2 np))``."""
    _validate_binomial_args(n, p)
    if t < 0:
        raise ValueError(f"deviation t must be non-negative, got {t}")
    if t == 0:
        return 1.0
    if p in (0.0, 1.0):
        # Point-mass Binomial: falling below the mean by t > 0 is
        # impossible (the old code returned 1.0 for p == 0 — valid as a
        # bound, but the exact tail is 0).
        return 0.0
    mean = n * p
    return float(min(1.0, np.exp(-(t**2) / (2.0 * mean))))


def binomial_tail_bound(n: int, p: float, t: float) -> float:
    """Two-sided bound combining the upper and lower Chernoff tails."""
    return float(
        min(1.0, bernoulli_upper_tail(n, p, t) + bernoulli_lower_tail(n, p, t))
    )


def sub_gaussian_mean_bound(n: int, sigma: float, epsilon: float) -> float:
    """Tail bound for the mean of ``n`` sub-Gaussian draws with parameter sigma.

    ``P(|mean - mu| >= eps) <= 2 exp(-n eps^2 / (2 sigma^2))`` — the standard
    bound invoked for the per-stratum statistic means in Proposition 4.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    if epsilon == 0:
        return 1.0
    return float(min(1.0, 2.0 * np.exp(-n * epsilon**2 / (2.0 * sigma**2))))


def small_pk_threshold(n1: int, delta: float) -> float:
    """The p* threshold from the paper separating "large" and "small" strata.

    Section 4.4.3 defines ``p* = (2 ln(1/delta) + 2 sqrt(ln(1/delta)) + 2) / N1``.
    Strata with ``p_k`` below this threshold contribute negligibly to the
    asymptotic error; strata above it concentrate.
    """
    if n1 <= 0:
        raise ValueError(f"N1 must be positive, got {n1}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    log_term = np.log(1.0 / delta)
    return float((2.0 * log_term + 2.0 * np.sqrt(log_term) + 2.0) / n1)


def _validate_binomial_args(n: int, p: float) -> None:
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
