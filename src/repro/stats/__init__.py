"""Statistics substrate for the ABae reproduction.

This package provides the low-level statistical machinery that the core
algorithm and the experiment harness are built on:

* :mod:`repro.stats.rng` — deterministic random-number management so that
  every experiment in the paper reproduction can be replayed bit-for-bit.
* :mod:`repro.stats.sampling` — sampling with and without replacement over
  index sets, the only sampling primitives Algorithm 1 needs.
* :mod:`repro.stats.descriptive` — numerically careful means / variances of
  possibly-empty samples (the empty case matters: a stratum may yield zero
  positive records).
* :mod:`repro.stats.metrics` — the evaluation metrics reported in the paper
  (RMSE, normalized Q-error, relative error, CI width, CI coverage).
* :mod:`repro.stats.concentration` — Bernoulli/Binomial tail bounds used in
  the paper's analysis (Section 4.4), exposed so tests can check that the
  estimators concentrate at the advertised rates.
"""

from repro.stats.rng import RandomState, spawn_children
from repro.stats.sampling import (
    sample_with_replacement,
    sample_without_replacement,
    split_budget,
)
from repro.stats.descriptive import (
    safe_mean,
    safe_std,
    safe_var,
    weighted_mean,
)
from repro.stats.metrics import (
    rmse,
    mean_absolute_error,
    relative_error,
    q_error,
    normalized_q_error,
    ci_width,
    ci_covers,
    coverage_rate,
)
from repro.stats.concentration import (
    bernoulli_upper_tail,
    bernoulli_lower_tail,
    binomial_tail_bound,
    hoeffding_bound,
    sub_gaussian_mean_bound,
)

__all__ = [
    "RandomState",
    "spawn_children",
    "sample_with_replacement",
    "sample_without_replacement",
    "split_budget",
    "safe_mean",
    "safe_std",
    "safe_var",
    "weighted_mean",
    "rmse",
    "mean_absolute_error",
    "relative_error",
    "q_error",
    "normalized_q_error",
    "ci_width",
    "ci_covers",
    "coverage_rate",
    "bernoulli_upper_tail",
    "bernoulli_lower_tail",
    "binomial_tail_bound",
    "hoeffding_bound",
    "sub_gaussian_mean_bound",
]
