"""Numerically careful descriptive statistics.

The per-stratum estimators in Algorithm 1 must handle strata where zero or
one positive records were drawn: the paper defines the mean of an empty
sample as 0 and the sample variance of fewer than two points as 0 (lines
10 and 12 of Algorithm 1).  Centralizing those conventions here keeps the
core algorithm readable and lets the tests pin down the edge cases once.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["safe_mean", "safe_var", "safe_std", "weighted_mean", "summarize"]


def safe_mean(values: Sequence[float], default: float = 0.0) -> float:
    """Mean of ``values``, or ``default`` when the sample is empty."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return float(default)
    return float(arr.mean())


def safe_var(values: Sequence[float], ddof: int = 1, default: float = 0.0) -> float:
    """Sample variance of ``values`` with ``ddof`` degrees of freedom.

    Returns ``default`` when fewer than ``ddof + 1`` points are available,
    matching Algorithm 1's convention of using 0 when a stratum has at most
    one positive sample.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size <= ddof:
        return float(default)
    return float(arr.var(ddof=ddof))


def safe_std(values: Sequence[float], ddof: int = 1, default: float = 0.0) -> float:
    """Sample standard deviation with the same empty-sample convention."""
    variance = safe_var(values, ddof=ddof, default=-1.0)
    if variance < 0:
        return float(default)
    return float(np.sqrt(variance))


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted mean ``sum(w_i x_i) / sum(w_i)``.

    Raises :class:`ValueError` on mismatched lengths; returns 0.0 when all
    weights are zero (the estimate when no stratum produced a positive
    record, mirroring the final line of Algorithm 1 where the denominator
    ``sum(p_hat_k)`` would be zero).
    """
    v = np.asarray(values, dtype=float)
    w = np.asarray(weights, dtype=float)
    if v.shape != w.shape:
        raise ValueError(
            f"values and weights must have the same shape, got {v.shape} vs {w.shape}"
        )
    total = w.sum()
    if total == 0:
        return 0.0
    return float(np.dot(v, w) / total)


def summarize(values: Sequence[float]) -> dict:
    """Small summary dict (n, mean, std, min, max) used in reports."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return {"n": 0, "mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0}
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
