"""Sampling primitives used by Algorithm 1 and the bootstrap.

ABae only needs two sampling operations over index sets:

* sampling *without* replacement from a stratum (Stage 1 and Stage 2 draws);
* sampling *with* replacement from the already-drawn records (the bootstrap
  of Algorithm 2).

Both are exposed here with explicit :class:`~repro.stats.rng.RandomState`
arguments so callers never touch global numpy randomness.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.stats.rng import RandomState

__all__ = [
    "sample_without_replacement",
    "sample_with_replacement",
    "split_budget",
    "proportional_integer_allocation",
]


def sample_without_replacement(
    population: Sequence[int], n: int, rng: RandomState
) -> np.ndarray:
    """Draw ``min(n, len(population))`` distinct items from ``population``.

    The paper's SampleFn (Algorithm 1, line 24) is sampling without
    replacement within a stratum.  If the requested sample size exceeds the
    population we return the whole population in random order, which is the
    natural exhaustion behaviour for a finite stratum.
    """
    if n < 0:
        raise ValueError(f"sample size must be non-negative, got {n}")
    pop = np.asarray(population)
    if n == 0 or pop.size == 0:
        return np.empty(0, dtype=pop.dtype if pop.size else np.int64)
    take = min(n, pop.size)
    return rng.choice(pop, size=take, replace=False)


def sample_with_replacement(
    population: Sequence[int], n: int, rng: RandomState
) -> np.ndarray:
    """Draw ``n`` items from ``population`` with replacement (bootstrap)."""
    if n < 0:
        raise ValueError(f"sample size must be non-negative, got {n}")
    pop = np.asarray(population)
    if n == 0 or pop.size == 0:
        return np.empty(0, dtype=pop.dtype if pop.size else np.int64)
    return rng.choice(pop, size=n, replace=True)


def split_budget(total: int, stage1_fraction: float) -> tuple:
    """Split a total oracle budget into (Stage 1, Stage 2) sample counts.

    The paper parameterizes the split by ``C`` (the fraction of samples in
    Stage 1, recommended 0.3–0.5).  Stage 1 receives ``floor(C * total)``
    and Stage 2 the remainder, so the two stages always sum to ``total``.
    """
    if total < 0:
        raise ValueError(f"budget must be non-negative, got {total}")
    if not 0.0 <= stage1_fraction <= 1.0:
        raise ValueError(
            f"stage1_fraction must be in [0, 1], got {stage1_fraction}"
        )
    n1 = int(np.floor(total * stage1_fraction))
    n2 = total - n1
    return n1, n2


def proportional_integer_allocation(
    weights: Sequence[float], total: int
) -> List[int]:
    """Allocate ``total`` integer samples proportionally to ``weights``.

    Implements the floor-based allocation of Algorithm 1, line 16
    (``⌊N2 * T_k⌋``) followed by a largest-remainder top-up so that the full
    budget is spent.  The paper notes (Section 4.4.2, "Fractional
    allocations") that rounding down does not change the convergence rate;
    distributing the leftover samples to the largest fractional remainders
    is a standard, strictly-no-worse refinement.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    w = np.asarray(weights, dtype=float)
    if w.size == 0:
        return []
    if np.any(w < 0):
        raise ValueError("allocation weights must be non-negative")
    if np.all(w == 0):
        # Degenerate case: nothing informative, spread evenly.
        w = np.ones_like(w)
    # The rounding core is a registered kernel (reference-only on every
    # backend: equal-remainder argsort tie order is part of the bitwise
    # contract); validation above stays the caller's job.
    from repro.kernels import kernel_set

    return kernel_set().largest_remainder(w, int(total)).tolist()
