"""Deterministic random-number management.

Every stochastic component of the reproduction (sampling, synthetic data
generation, bootstrap resampling, proxy noise) draws from a
:class:`RandomState` created here.  The paper runs each experimental
condition for 1,000 trials; to make those trials reproducible and
independent we derive child generators with ``numpy``'s ``SeedSequence``
spawning machinery rather than reusing a single global generator.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

__all__ = ["RandomState", "spawn_children", "spawn_shard_streams", "derive_seed"]

SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


class RandomState:
    """A thin, explicit wrapper around :class:`numpy.random.Generator`.

    The wrapper exists for three reasons:

    * it gives the rest of the codebase a single type to accept, so the
      "is this an int seed, a Generator, or None?" normalization happens in
      exactly one place;
    * it supports :meth:`spawn`, producing statistically independent child
      states for per-trial / per-stratum randomness;
    * it records the seed sequence used so experiment reports can log it.
    """

    def __init__(self, seed: SeedLike = None):
        if isinstance(seed, RandomState):
            self._seed_seq = seed._seed_seq
            self._generator = seed._generator
            return
        if isinstance(seed, np.random.Generator):
            self._seed_seq = None
            self._generator = seed
            return
        if isinstance(seed, np.random.SeedSequence):
            self._seed_seq = seed
        else:
            self._seed_seq = np.random.SeedSequence(seed)
        self._generator = np.random.default_rng(self._seed_seq)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._generator

    @property
    def seed_sequence(self) -> Optional[np.random.SeedSequence]:
        """The seed sequence, if the state was created from one (else None)."""
        return self._seed_seq

    def spawn(self, n: int) -> List["RandomState"]:
        """Create ``n`` independent child states.

        When the state was constructed from a raw Generator (no seed
        sequence available) we fall back to drawing child seeds from the
        generator itself, which still yields distinct, reproducible
        children given the parent's state.
        """
        if n < 0:
            raise ValueError(f"cannot spawn a negative number of children: {n}")
        if self._seed_seq is not None:
            return [RandomState(seq) for seq in self._seed_seq.spawn(n)]
        seeds = self._generator.integers(0, 2**63 - 1, size=n)
        return [RandomState(int(s)) for s in seeds]

    # -- Convenience passthroughs -------------------------------------------------
    def integers(self, low, high=None, size=None):
        return self._generator.integers(low, high=high, size=size)

    def random(self, size=None):
        return self._generator.random(size)

    def normal(self, loc=0.0, scale=1.0, size=None):
        return self._generator.normal(loc, scale, size)

    def uniform(self, low=0.0, high=1.0, size=None):
        return self._generator.uniform(low, high, size)

    def beta(self, a, b, size=None):
        return self._generator.beta(a, b, size)

    def binomial(self, n, p, size=None):
        return self._generator.binomial(n, p, size)

    def poisson(self, lam, size=None):
        return self._generator.poisson(lam, size)

    def exponential(self, scale=1.0, size=None):
        return self._generator.exponential(scale, size)

    def gamma(self, shape, scale=1.0, size=None):
        return self._generator.gamma(shape, scale, size)

    def choice(self, a, size=None, replace=True, p=None):
        return self._generator.choice(a, size=size, replace=replace, p=p)

    def permutation(self, x):
        return self._generator.permutation(x)

    def shuffle(self, x):
        return self._generator.shuffle(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._seed_seq is not None:
            return f"RandomState(entropy={self._seed_seq.entropy})"
        return "RandomState(<generator>)"


def spawn_children(seed: SeedLike, n: int) -> List[RandomState]:
    """Spawn ``n`` independent :class:`RandomState` objects from a seed."""
    return RandomState(seed).spawn(n)


def spawn_shard_streams(seed: SeedLike, num_shards: int) -> List[RandomState]:
    """Independent per-shard random streams for parallel execution.

    The determinism contract of :mod:`repro.core.parallel` requires that
    randomness be keyed by *shard position*, never by worker identity or
    completion order: shard ``i`` always receives the ``i``-th child of the
    base seed (via ``numpy.random.SeedSequence.spawn``), so results are
    bit-identical whether the shards run on 1 worker or 16, in any order.

    Use this instead of handing one shared generator to concurrent tasks —
    a shared generator's consumption order depends on scheduling, which
    silently breaks reproducibility.  Mechanically this is
    :func:`spawn_children` under a name that states the parallel-execution
    contract; keep calling it from sharded code paths so the intent reads
    at the call site.
    """
    if num_shards < 0:
        raise ValueError(f"num_shards must be non-negative, got {num_shards}")
    return spawn_children(seed, num_shards)


def derive_seed(seed: SeedLike, *labels: Sequence) -> int:
    """Derive a deterministic integer seed from a base seed and string labels.

    Used by the experiment harness so that (dataset, method, budget, trial)
    tuples map to stable seeds regardless of execution order.
    """
    base = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    entropy = base.entropy if base.entropy is not None else 0
    acc = int(entropy) & 0xFFFFFFFF
    for label in labels:
        for char in str(label):
            acc = (acc * 1000003 + ord(char)) & 0xFFFFFFFF
    return acc
