"""Evaluation metrics reported in the paper.

Section 5.1 ("Metrics") uses RMSE as the primary metric, plus normalized
Q-error (Figure 4), relative error, confidence-interval width (Figure 5)
and nominal CI coverage.  All of them are implemented here so the
experiment harness and the benchmarks share one definition.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "rmse",
    "mean_absolute_error",
    "relative_error",
    "q_error",
    "normalized_q_error",
    "ci_width",
    "ci_covers",
    "coverage_rate",
    "samples_to_reach_error",
]


def rmse(estimates: Sequence[float], truth: float) -> float:
    """Root mean squared error of repeated estimates against a scalar truth."""
    est = np.asarray(estimates, dtype=float)
    if est.size == 0:
        raise ValueError("rmse requires at least one estimate")
    return float(np.sqrt(np.mean((est - truth) ** 2)))


def mean_absolute_error(estimates: Sequence[float], truth: float) -> float:
    """Mean absolute error of repeated estimates against a scalar truth."""
    est = np.asarray(estimates, dtype=float)
    if est.size == 0:
        raise ValueError("mean_absolute_error requires at least one estimate")
    return float(np.mean(np.abs(est - truth)))


def relative_error(estimate: float, truth: float) -> float:
    """Relative error ``|estimate - truth| / |truth|``.

    Raises :class:`ValueError` for a zero ground truth, where relative error
    is undefined; callers comparing against possibly-zero statistics should
    use :func:`rmse` instead.
    """
    if truth == 0:
        raise ValueError("relative error is undefined for a zero ground truth")
    return abs(estimate - truth) / abs(truth)


def q_error(estimate: float, truth: float) -> float:
    """Q-error: ``max(estimate/truth, truth/estimate)`` (Moerkotte et al.).

    The Q-error penalizes under- and over-estimation symmetrically and is
    always at least 1.  Non-positive inputs make the ratio meaningless, so
    the function requires strictly positive estimate and truth, matching the
    paper's usage on strictly positive statistics (counts, ratings).
    """
    if truth <= 0 or estimate <= 0:
        raise ValueError(
            f"q_error requires positive estimate and truth, got {estimate} and {truth}"
        )
    return max(estimate / truth, truth / estimate)


def normalized_q_error(estimate: float, truth: float) -> float:
    """Normalized Q-error ``100 * (q - 1)``, roughly a percent error (Figure 4)."""
    return 100.0 * (q_error(estimate, truth) - 1.0)


def ci_width(lower: float, upper: float) -> float:
    """Width of a confidence interval; raises if the bounds are inverted."""
    if upper < lower:
        raise ValueError(f"upper bound {upper} is below lower bound {lower}")
    return upper - lower


def ci_covers(lower: float, upper: float, truth: float) -> bool:
    """Whether the interval [lower, upper] contains the ground truth."""
    if upper < lower:
        raise ValueError(f"upper bound {upper} is below lower bound {lower}")
    return lower <= truth <= upper


def coverage_rate(
    lowers: Sequence[float], uppers: Sequence[float], truth: float
) -> float:
    """Fraction of intervals that cover the truth, across repeated trials."""
    lo = np.asarray(lowers, dtype=float)
    hi = np.asarray(uppers, dtype=float)
    if lo.shape != hi.shape:
        raise ValueError("lowers and uppers must have the same shape")
    if lo.size == 0:
        raise ValueError("coverage_rate requires at least one interval")
    if np.any(hi < lo):
        raise ValueError("found an interval with upper bound below lower bound")
    return float(np.mean((lo <= truth) & (truth <= hi)))


def samples_to_reach_error(
    budgets: Sequence[int], errors: Sequence[float], target_error: float
) -> float:
    """Smallest budget whose measured error is at or below ``target_error``.

    Used for the paper's "up to 2x fewer samples at a fixed error" claim:
    given a (budget, error) curve for a method, return the first budget that
    achieves the target, linearly interpolating between measured budgets.
    Returns ``inf`` when the target is never reached.
    """
    b = np.asarray(budgets, dtype=float)
    e = np.asarray(errors, dtype=float)
    if b.shape != e.shape or b.size == 0:
        raise ValueError("budgets and errors must be equal-length, non-empty")
    order = np.argsort(b)
    b, e = b[order], e[order]
    for i in range(b.size):
        if e[i] <= target_error:
            if i == 0:
                return float(b[0])
            # Linear interpolation between the bracketing budgets.
            e_hi, e_lo = e[i - 1], e[i]
            if e_hi == e_lo:
                return float(b[i])
            frac = (e_hi - target_error) / (e_hi - e_lo)
            return float(b[i - 1] + frac * (b[i] - b[i - 1]))
    return float("inf")
