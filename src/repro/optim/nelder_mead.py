"""A from-scratch Nelder–Mead simplex optimizer.

This is the derivative-free method the paper cites for solving the
minimax allocation problems of ABae-GroupBy.  The implementation follows
the standard formulation (reflection, expansion, contraction, shrink) with
the usual adaptive coefficients, and supports restarts because the minimax
objective has flat regions where a single simplex can stall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["NelderMeadResult", "nelder_mead"]


@dataclass
class NelderMeadResult:
    """Outcome of a Nelder–Mead run."""

    x: np.ndarray
    fun: float
    iterations: int
    function_evaluations: int
    converged: bool

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NelderMeadResult(fun={self.fun:.6g}, iterations={self.iterations}, "
            f"converged={self.converged})"
        )


def nelder_mead(
    objective: Callable[[np.ndarray], float],
    x0: Sequence[float],
    initial_step: float = 0.1,
    max_iter: int = 2000,
    xatol: float = 1e-8,
    fatol: float = 1e-10,
    restarts: int = 1,
) -> NelderMeadResult:
    """Minimize ``objective`` starting from ``x0``.

    Parameters
    ----------
    objective:
        Function mapping an n-vector to a scalar.  It must tolerate any real
        input (callers that need constraints should penalize or reparameterize;
        see :func:`repro.optim.simplex.minimize_on_simplex`).
    x0:
        Starting point.
    initial_step:
        Size of the perturbation used to build the initial simplex.
    max_iter:
        Maximum iterations per restart.
    xatol, fatol:
        Convergence tolerances on simplex spread in x and in f.
    restarts:
        Number of times to rebuild the simplex around the current best point
        and re-run; helps escape degenerate simplices on flat objectives.
    """
    x0 = np.asarray(x0, dtype=float)
    if x0.ndim != 1 or x0.size == 0:
        raise ValueError(f"x0 must be a non-empty 1-D array, got shape {x0.shape}")
    if max_iter <= 0:
        raise ValueError(f"max_iter must be positive, got {max_iter}")
    if restarts < 1:
        raise ValueError(f"restarts must be at least 1, got {restarts}")

    best_x = x0
    best_f = float(objective(x0))
    total_evals = 1
    total_iters = 0
    converged = False

    for _ in range(restarts):
        result = _single_run(
            objective, best_x, initial_step, max_iter, xatol, fatol
        )
        total_evals += result.function_evaluations
        total_iters += result.iterations
        if result.fun < best_f:
            best_f = result.fun
            best_x = result.x
        converged = result.converged
        # Shrink the rebuild step each restart so later passes refine locally.
        initial_step *= 0.25

    return NelderMeadResult(
        x=best_x,
        fun=best_f,
        iterations=total_iters,
        function_evaluations=total_evals,
        converged=converged,
    )


def _single_run(
    objective: Callable[[np.ndarray], float],
    x0: np.ndarray,
    initial_step: float,
    max_iter: int,
    xatol: float,
    fatol: float,
) -> NelderMeadResult:
    n = x0.size
    # Standard adaptive coefficients (Gao & Han) — behave better in higher
    # dimensions than the classical 1 / 2 / 0.5 / 0.5 choices.
    alpha = 1.0
    gamma = 1.0 + 2.0 / n
    rho = 0.75 - 1.0 / (2.0 * n)
    sigma = 1.0 - 1.0 / n

    # Build the initial simplex: x0 plus one perturbed vertex per dimension.
    simplex = np.tile(x0, (n + 1, 1))
    for i in range(n):
        step = initial_step if x0[i] == 0 else initial_step * max(abs(x0[i]), 1e-4)
        simplex[i + 1, i] += step

    values = np.array([float(objective(v)) for v in simplex])
    evals = n + 1
    iterations = 0
    converged = False

    while iterations < max_iter:
        iterations += 1
        order = np.argsort(values)
        simplex = simplex[order]
        values = values[order]

        if not np.isfinite(values[0]):
            # Even the best vertex is non-finite: the objective offers no
            # descent signal anywhere (e.g. a degenerate minimax problem
            # whose every allocation is infinitely bad).  Iterating would
            # only churn inf-inf = NaN arithmetic; stop at the start point.
            break

        x_spread = np.max(np.abs(simplex[1:] - simplex[0]))
        # inf vertices make the spread inf (not converged), never NaN:
        # values[0] is finite here, so the subtraction cannot be inf-inf.
        f_spread = np.max(np.abs(values[1:] - values[0]))
        if x_spread <= xatol and f_spread <= fatol:
            converged = True
            break

        centroid = simplex[:-1].mean(axis=0)
        worst = simplex[-1]

        reflected = centroid + alpha * (centroid - worst)
        f_reflected = float(objective(reflected))
        evals += 1

        if values[0] <= f_reflected < values[-2]:
            simplex[-1], values[-1] = reflected, f_reflected
            continue

        if f_reflected < values[0]:
            expanded = centroid + gamma * (reflected - centroid)
            f_expanded = float(objective(expanded))
            evals += 1
            if f_expanded < f_reflected:
                simplex[-1], values[-1] = expanded, f_expanded
            else:
                simplex[-1], values[-1] = reflected, f_reflected
            continue

        # Contraction: outside if the reflection improved on the worst point,
        # inside otherwise.
        if f_reflected < values[-1]:
            contracted = centroid + rho * (reflected - centroid)
        else:
            contracted = centroid + rho * (worst - centroid)
        f_contracted = float(objective(contracted))
        evals += 1
        if f_contracted < min(f_reflected, values[-1]):
            simplex[-1], values[-1] = contracted, f_contracted
            continue

        # Shrink everything toward the best vertex.
        for i in range(1, n + 1):
            simplex[i] = simplex[0] + sigma * (simplex[i] - simplex[0])
            values[i] = float(objective(simplex[i]))
            evals += 1

    order = np.argsort(values)
    return NelderMeadResult(
        x=simplex[order[0]],
        fun=float(values[order[0]]),
        iterations=iterations,
        function_evaluations=evals,
        converged=converged,
    )
