"""Numerical optimization substrate.

ABae-GroupBy minimizes a minimax allocation objective over the probability
simplex (Eqs. 10 and 11) with the Nelder–Mead simplex algorithm.  We
implement Nelder–Mead from scratch (:mod:`repro.optim.nelder_mead`) plus
simplex-projection utilities (:mod:`repro.optim.simplex`) used to keep
allocation vectors feasible.  scipy's implementation is only used in tests
as an independent cross-check.
"""

from repro.optim.nelder_mead import NelderMeadResult, nelder_mead
from repro.optim.simplex import (
    project_to_simplex,
    softmax_parameterization,
    minimize_on_simplex,
)

__all__ = [
    "NelderMeadResult",
    "nelder_mead",
    "project_to_simplex",
    "softmax_parameterization",
    "minimize_on_simplex",
]
