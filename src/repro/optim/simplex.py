"""Probability-simplex helpers for the allocation optimizations.

The group-by allocation vector Λ lives on the probability simplex
(Λ_l ≥ 0, ΣΛ_l = 1).  Nelder–Mead is unconstrained, so we optimize in an
unconstrained parameterization (softmax of free logits) and map back.  A
Euclidean simplex projection is also provided for callers that prefer to
project candidate points instead.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.optim.nelder_mead import NelderMeadResult, nelder_mead

__all__ = ["project_to_simplex", "softmax_parameterization", "minimize_on_simplex"]


def project_to_simplex(v: Sequence[float]) -> np.ndarray:
    """Euclidean projection of a vector onto the probability simplex.

    Uses the standard sort-and-threshold algorithm (Duchi et al.); the
    result is non-negative and sums to one.
    """
    x = np.asarray(v, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise ValueError(f"expected a non-empty 1-D vector, got shape {x.shape}")
    sorted_desc = np.sort(x)[::-1]
    cumulative = np.cumsum(sorted_desc) - 1.0
    indices = np.arange(1, x.size + 1)
    candidate = sorted_desc - cumulative / indices
    rho = np.nonzero(candidate > 0)[0]
    if rho.size == 0:
        # All mass collapses to a single coordinate (extreme inputs).
        out = np.zeros_like(x)
        out[int(np.argmax(x))] = 1.0
        return out
    rho = rho[-1]
    theta = cumulative[rho] / (rho + 1.0)
    return np.maximum(x - theta, 0.0)


def softmax_parameterization(logits: Sequence[float]) -> np.ndarray:
    """Map free logits to a point on the simplex via a stable softmax."""
    z = np.asarray(logits, dtype=float)
    if z.ndim != 1 or z.size == 0:
        raise ValueError(f"expected a non-empty 1-D vector, got shape {z.shape}")
    z = z - z.max()
    exp_z = np.exp(z)
    return exp_z / exp_z.sum()


def minimize_on_simplex(
    objective: Callable[[np.ndarray], float],
    dim: int,
    x0: Optional[Sequence[float]] = None,
    max_iter: int = 2000,
    restarts: int = 2,
) -> NelderMeadResult:
    """Minimize an objective over the probability simplex of dimension ``dim``.

    The objective receives a simplex point (non-negative, summing to one).
    Internally we run Nelder–Mead over unconstrained logits and map through
    a softmax, which keeps every evaluated point feasible — important for
    the allocation objectives, which divide by Λ_l.

    The returned result's ``x`` is the simplex point (not the logits).
    """
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    if dim == 1:
        x = np.array([1.0])
        return NelderMeadResult(
            x=x, fun=float(objective(x)), iterations=0,
            function_evaluations=1, converged=True,
        )

    if x0 is not None:
        start = np.asarray(x0, dtype=float)
        if start.shape != (dim,):
            raise ValueError(f"x0 must have shape ({dim},), got {start.shape}")
        if np.any(start < 0) or start.sum() <= 0:
            raise ValueError("x0 must be a non-negative vector with positive sum")
        start = start / start.sum()
        start_logits = np.log(np.clip(start, 1e-9, None))
    else:
        start_logits = np.zeros(dim)

    def objective_of_logits(logits: np.ndarray) -> float:
        return float(objective(softmax_parameterization(logits)))

    result = nelder_mead(
        objective_of_logits,
        start_logits,
        initial_step=0.5,
        max_iter=max_iter,
        restarts=restarts,
    )
    best_point = softmax_parameterization(result.x)
    return NelderMeadResult(
        x=best_point,
        fun=float(objective(best_point)),
        iterations=result.iterations,
        function_evaluations=result.function_evaluations,
        converged=result.converged,
    )
