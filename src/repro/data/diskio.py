"""The on-disk column-directory format shared by the out-of-core backends.

One dataset is one directory::

    dataset/
      manifest.json        # format tag, record count, column schema
      statistic.bin        # raw C-order element bytes, one file per column
      proxy_score.bin
      label.bin

Column files hold nothing but the elements' raw bytes (the dtype — with
its byte order — lives in the manifest), so both readers are trivial:
:class:`repro.data.mmap.MmapBackend` maps each file directly and
:class:`repro.data.chunked.ChunkedBackend` reads fixed-size element
ranges with ``np.fromfile``.  The format is append-friendly by
construction — :class:`ColumnDirWriter` streams batches straight to the
column files and writes the manifest last — which is what lets the ingest
CLI build datasets much larger than RAM without ever materializing them.

Object-dtype columns are rejected with a pointed error: out-of-core
storage needs fixed-width elements.  Encode group keys as fixed-width
strings (``"<U8"``) or integer codes before ingest.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "ColumnDirWriter",
    "atomic_write_text",
    "write_column_dir",
    "read_manifest",
    "column_file",
]

FORMAT_NAME = "repro-columns"
FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"

PathLike = Union[str, Path]


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A reader never observes a half-written file: either the old content
    (or absence) or the complete new content.  The temp file lives in the
    destination directory so the replace stays on one filesystem.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def _element_array(name: str, values: Sequence) -> np.ndarray:
    """Validate one batch of column values for on-disk storage."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(
            f"column {name!r} must be one-dimensional, got shape {arr.shape}"
        )
    if arr.dtype.kind == "O":
        raise ValueError(
            f"column {name!r}: object dtype cannot be stored out-of-core; "
            "encode keys as fixed-width strings (e.g. '<U8') or integer codes"
        )
    return np.ascontiguousarray(arr)


def column_file(directory: PathLike, column_name: str) -> Path:
    """The raw-bytes file backing one column."""
    return Path(directory) / f"{column_name}.bin"


def read_manifest(directory: PathLike) -> Dict:
    """Load and validate a column directory's manifest."""
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    if not path.is_file():
        raise FileNotFoundError(
            f"{directory} is not a column directory (missing {MANIFEST_NAME}); "
            "create one with ColumnDirWriter or scripts/ingest_dataset.py"
        )
    manifest = json.loads(path.read_text())
    if manifest.get("format") != FORMAT_NAME:
        raise ValueError(
            f"{path} is not a {FORMAT_NAME} manifest "
            f"(format={manifest.get('format')!r})"
        )
    if manifest.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported column-directory version {manifest.get('version')!r}; "
            f"this reader understands version {FORMAT_VERSION}"
        )
    for col_name, spec in manifest["columns"].items():
        file = column_file(directory, col_name)
        expected = manifest["num_records"] * np.dtype(spec["dtype"]).itemsize
        if not file.is_file():
            raise FileNotFoundError(f"column file missing: {file}")
        actual = file.stat().st_size
        if actual != expected:
            raise ValueError(
                f"column file {file} holds {actual} bytes, expected {expected} "
                f"({manifest['num_records']} x {spec['dtype']}); the directory "
                "is truncated or was written with a different schema"
            )
    return manifest


class ColumnDirWriter:
    """Streaming writer for a column directory.

    The schema (column names and dtypes) is fixed by the first
    :meth:`append`; every batch appends its raw bytes to the per-column
    files, and :meth:`finalize` writes the manifest.  Peak memory is one
    batch, never the dataset — the property the ingest CLI and the RSS
    benchmark rely on.  Usable as a context manager (finalizes on clean
    exit)::

        with ColumnDirWriter(path) as writer:
            for batch in batches:          # {"col": array, ...}
                writer.append(batch)
    """

    def __init__(self, directory: PathLike, name: str = None, overwrite: bool = False):
        self._directory = Path(directory)
        if self._directory.exists():
            if (self._directory / MANIFEST_NAME).exists() and not overwrite:
                raise FileExistsError(
                    f"{self._directory} already holds a column directory; "
                    "pass overwrite=True to replace it"
                )
        self._directory.mkdir(parents=True, exist_ok=True)
        self._name = name if name is not None else self._directory.name
        self._dtypes: Optional[Dict[str, str]] = None
        self._num_records = 0
        self._finalized = False

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def num_records(self) -> int:
        """Records appended so far."""
        return self._num_records

    def append(self, batch: Mapping[str, Sequence]) -> None:
        """Append one batch: a mapping of column name -> equal-length values."""
        if self._finalized:
            raise RuntimeError("writer is finalized; no further appends allowed")
        if not batch:
            raise ValueError("a batch requires at least one column")
        arrays = {
            col_name: _element_array(col_name, values)
            for col_name, values in batch.items()
        }
        lengths = {arr.shape[0] for arr in arrays.values()}
        if len(lengths) != 1:
            raise ValueError(
                f"batch columns must have the same length, got {sorted(lengths)}"
            )
        batch_len = lengths.pop()
        if self._dtypes is None:
            self._dtypes = {
                col_name: arr.dtype.str for col_name, arr in arrays.items()
            }
            for col_name in arrays:
                # Truncate any stale column files from an overwritten dir.
                column_file(self._directory, col_name).write_bytes(b"")
        elif set(arrays) != set(self._dtypes):
            raise ValueError(
                f"batch columns {sorted(arrays)} do not match the schema "
                f"fixed by the first batch {sorted(self._dtypes)}"
            )
        for col_name, arr in arrays.items():
            expected = np.dtype(self._dtypes[col_name])
            if arr.dtype != expected:
                # Widen within kind (int batches into a float column, bool
                # into bool) but refuse silent cross-kind coercion.
                try:
                    arr = arr.astype(expected, casting="same_kind")
                except TypeError:
                    raise ValueError(
                        f"column {col_name!r}: batch dtype {arr.dtype} is "
                        f"incompatible with the schema dtype {expected}"
                    ) from None
            with column_file(self._directory, col_name).open("ab") as handle:
                handle.write(arr.tobytes())
        self._num_records += int(batch_len)

    def finalize(self) -> Path:
        """Write the manifest; returns the directory path."""
        if self._finalized:
            return self._directory
        if self._dtypes is None or self._num_records == 0:
            raise ValueError("cannot finalize an empty column directory")
        manifest = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "name": self._name,
            "num_records": self._num_records,
            "columns": {
                col_name: {"dtype": dtype_str, "file": f"{col_name}.bin"}
                for col_name, dtype_str in self._dtypes.items()
            },
        }
        # Atomic: the manifest is the directory's commit record — a crash
        # mid-write must not leave a directory that parses as half a schema.
        atomic_write_text(
            self._directory / MANIFEST_NAME, json.dumps(manifest, indent=2) + "\n"
        )
        self._finalized = True
        return self._directory

    def __enter__(self) -> "ColumnDirWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finalize()


def write_column_dir(
    directory: PathLike,
    columns: Mapping[str, Sequence],
    name: str = None,
    overwrite: bool = False,
    batch_rows: int = 262_144,
) -> Path:
    """One-shot export of in-memory columns to a column directory.

    Streams ``batch_rows``-sized slices through :class:`ColumnDirWriter`
    so even a large export never doubles its memory.
    """
    arrays = {
        col_name: _element_array(col_name, values)
        for col_name, values in columns.items()
    }
    if not arrays:
        raise ValueError("write_column_dir requires at least one column")
    lengths = {arr.shape[0] for arr in arrays.values()}
    if len(lengths) != 1:
        raise ValueError(
            f"all columns must have the same length, got {sorted(lengths)}"
        )
    total = lengths.pop()
    with ColumnDirWriter(directory, name=name, overwrite=overwrite) as writer:
        for start in range(0, total, batch_rows):
            stop = min(start + batch_rows, total)
            writer.append(
                {col_name: arr[start:stop] for col_name, arr in arrays.items()}
            )
    return Path(directory)
