"""Pluggable dataset storage: in-memory, memory-mapped and chunked backends.

The sampling engine reads three kinds of per-record columns — proxy
scores, statistic values and oracle answer columns.  This package owns
*where those columns live*:

* :class:`InMemoryBackend` — dense ndarrays (today's behaviour, the
  default);
* :class:`MmapBackend` — ``np.memmap`` over an on-disk column directory,
  residency managed by the OS page cache;
* :class:`ChunkedBackend` — fixed-size shards with an explicit LRU of
  resident chunks, for datasets far larger than RAM.

All three serve the same :class:`DatasetBackend` / :class:`ColumnHandle`
protocol and return bit-identical values, so sampler draws, estimates and
oracle accounting are invariant to the storage choice — the contract
``tests/test_backend_parity.py`` pins across the equivalence-harness
grid.  See ``docs/DATA_BACKENDS.md`` for the protocol, the ingest CLI
and the memory-envelope expectations.
"""

from repro.data.backend import (
    ArrayColumnHandle,
    ColumnHandle,
    DatasetBackend,
    InMemoryBackend,
    as_dense,
    is_column_handle,
)
from repro.data.chunked import DEFAULT_CHUNK_SIZE, ChunkedBackend, ChunkedColumnHandle
from repro.data.diskio import ColumnDirWriter, read_manifest, write_column_dir
from repro.data.ingest import ingest_scenario
from repro.data.mmap import MmapBackend, MmapColumnHandle

__all__ = [
    "ColumnHandle",
    "DatasetBackend",
    "ArrayColumnHandle",
    "InMemoryBackend",
    "MmapBackend",
    "MmapColumnHandle",
    "ChunkedBackend",
    "ChunkedColumnHandle",
    "DEFAULT_CHUNK_SIZE",
    "ColumnDirWriter",
    "write_column_dir",
    "read_manifest",
    "ingest_scenario",
    "as_dense",
    "is_column_handle",
]
