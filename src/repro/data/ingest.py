"""Ingestion: turn generated scenarios into on-disk column directories.

Shared by ``scripts/ingest_dataset.py`` (the CLI) and
``scripts/bench_backends.py`` (which ingests its 1M-record fixture).  The
scenario's *base* columns (statistic, proxy score, hidden label) are
streamed shard by shard; optional *payload* columns — stand-ins for the
wide per-record features real datasets carry (embeddings, raw measures) —
are generated per shard with their own deterministic streams, so the
dataset on disk can be arbitrarily wider than the ingesting process's
memory.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.data.diskio import ColumnDirWriter, read_manifest
from repro.stats.rng import RandomState, derive_seed

__all__ = ["ingest_scenario", "DEFAULT_SHARD_ROWS"]

DEFAULT_SHARD_ROWS = 131_072

PathLike = Union[str, Path]


def _payload_shard(
    seed: int, column_index: int, shard_index: int, rows: int
) -> np.ndarray:
    """One payload column's values for one shard, deterministically.

    Keyed on (seed, column, shard) so any shard can be (re)generated
    independently, in any order, without holding the column densely.
    """
    rng = RandomState(derive_seed(seed, "payload", column_index, shard_index))
    return rng.normal(0.0, 1.0, rows)


def ingest_scenario(
    dataset: str,
    out: PathLike,
    size: int,
    seed: int = 0,
    shard_rows: int = DEFAULT_SHARD_ROWS,
    payload_columns: int = 0,
    overwrite: bool = False,
) -> Dict:
    """Generate the named dataset and stream it into a column directory.

    Returns the written manifest (as re-read from disk, so the caller
    sees exactly what a backend will open).  ``payload_columns`` appends
    that many float64 ``payload_<i>`` columns, generated shard-wise.
    """
    from repro.synth import make_dataset

    if shard_rows < 1:
        raise ValueError(f"shard_rows must be positive, got {shard_rows}")
    if payload_columns < 0:
        raise ValueError(
            f"payload_columns must be non-negative, got {payload_columns}"
        )
    scenario = make_dataset(dataset, seed=seed, size=size)
    statistic = np.asarray(scenario.statistic_values, dtype=float)
    scores = np.asarray(scenario.proxy.scores(), dtype=float)
    labels = np.asarray(scenario.labels, dtype=bool)

    with ColumnDirWriter(out, name=scenario.name, overwrite=overwrite) as writer:
        for shard_index, start in enumerate(range(0, size, shard_rows)):
            stop = min(start + shard_rows, size)
            batch = {
                "statistic": statistic[start:stop],
                "proxy_score": scores[start:stop],
                "label": labels[start:stop],
            }
            for c in range(payload_columns):
                batch[f"payload_{c}"] = _payload_shard(
                    seed, c, shard_index, stop - start
                )
            writer.append(batch)
    return read_manifest(out)
