"""Chunked dataset backend: fixed-size shards with an LRU of resident chunks.

Where :class:`~repro.data.mmap.MmapBackend` delegates residency to the
OS page cache, this backend manages it explicitly: each column is read in
fixed-size element chunks, at most ``max_resident_chunks`` of which are
held at a time across all columns.  That gives a *hard, predictable*
memory ceiling — ``max_resident_chunks x chunk_size x itemsize`` — which
is the right tool when the dataset vastly exceeds RAM, lives on storage
where mmap is unavailable or undesirable (network filesystems), or must
share a box with memory-sensitive neighbours (the HTAP-style deployments
the ROADMAP targets).

Gathers group the requested indices by chunk so each needed chunk is
loaded (or LRU-hit) exactly once per call; values are bit-identical to
the other backends by construction — same bytes, same dtype.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.analysis.annotations import guarded_by
from repro.data.backend import ColumnHandle, DatasetBackend
from repro.data.diskio import column_file, read_manifest

__all__ = ["ChunkedColumnHandle", "ChunkedBackend", "DEFAULT_CHUNK_SIZE"]

DEFAULT_CHUNK_SIZE = 65_536
PathLike = Union[str, Path]


@guarded_by("_lock", "_chunks", "hits", "misses", "evictions")
class _ChunkCache:
    """Backend-wide LRU of resident chunks, shared across columns.

    Keyed ``(column_name, chunk_index)``; thread-safe because parallel
    oracle sharding (``num_workers``) gathers answer columns from worker
    threads concurrently.
    """

    def __init__(self, max_resident_chunks: int):
        if max_resident_chunks < 1:
            raise ValueError(
                f"max_resident_chunks must be at least 1, got {max_resident_chunks}"
            )
        self._max = int(max_resident_chunks)
        self._chunks: "OrderedDict[Tuple[str, int], np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Tuple[str, int]):
        with self._lock:
            chunk = self._chunks.get(key)
            if chunk is not None:
                self._chunks.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
            return chunk

    def put(self, key: Tuple[str, int], chunk: np.ndarray) -> None:
        with self._lock:
            if key not in self._chunks:
                self._chunks[key] = chunk
            while len(self._chunks) > self._max:
                self._chunks.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._chunks.clear()

    @property
    def resident(self) -> int:
        with self._lock:
            return len(self._chunks)

    @property
    def resident_nbytes(self) -> int:
        with self._lock:
            return sum(chunk.nbytes for chunk in self._chunks.values())

    # Locks cannot be pickled and resident chunks should not travel to
    # worker processes; an unpickled cache starts cold with fresh counters.
    def __getstate__(self):
        return {"_max": self._max}

    def __setstate__(self, state):
        self.__init__(state["_max"])


class ChunkedColumnHandle(ColumnHandle):
    """A column read chunk-by-chunk through the backend's shared LRU."""

    def __init__(
        self,
        name: str,
        path: Path,
        dtype: np.dtype,
        num_records: int,
        chunk_size: int,
        cache: _ChunkCache,
    ):
        self._name = name
        self._path = Path(path)
        self._dtype = np.dtype(dtype)
        self._num_records = int(num_records)
        self._chunk_size = int(chunk_size)
        self._cache = cache

    @property
    def name(self) -> str:
        return self._name

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def __len__(self) -> int:
        return self._num_records

    @property
    def num_chunks(self) -> int:
        return -(-self._num_records // self._chunk_size)

    def _load_chunk(self, chunk_index: int) -> np.ndarray:
        key = (self._name, chunk_index)
        chunk = self._cache.get(key)
        if chunk is not None:
            return chunk
        start = chunk_index * self._chunk_size
        count = min(self._chunk_size, self._num_records - start)
        chunk = np.fromfile(
            self._path,
            dtype=self._dtype,
            count=count,
            offset=start * self._dtype.itemsize,
        )
        chunk.setflags(write=False)
        self._cache.put(key, chunk)
        return chunk

    def gather(self, record_indices: Sequence[int]) -> np.ndarray:
        idx = self._normalize_indices(record_indices)
        out = np.empty(idx.shape[0], dtype=self._dtype)
        if idx.size == 0:
            return out
        chunk_ids = idx // self._chunk_size
        # Visit each needed chunk once, in ascending order, scattering its
        # values back to the request positions.
        order = np.argsort(chunk_ids, kind="stable")
        sorted_chunks = chunk_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_chunks)) + 1
        for group in np.split(order, boundaries):
            chunk_index = int(chunk_ids[group[0]])
            chunk = self._load_chunk(chunk_index)
            out[group] = chunk[idx[group] - chunk_index * self._chunk_size]
        return out

    def chunks(self):
        """Iterate the column's chunks in order (for full scans / export)."""
        for chunk_index in range(self.num_chunks):
            yield self._load_chunk(chunk_index)

    def to_numpy(self) -> np.ndarray:
        """Materialize the full column (one dense allocation).

        Reads straight from disk rather than through the LRU so a full
        scan does not evict the working set of concurrent gathers.
        """
        return np.fromfile(self._path, dtype=self._dtype, count=self._num_records)


class ChunkedBackend(DatasetBackend):
    """Dataset backend with explicit chunk residency over a column directory.

    ``chunk_size`` is in *elements* (not bytes) so chunk boundaries align
    across columns of different widths; ``max_resident_chunks`` bounds
    the total chunks held across all columns.  The default configuration
    caps residency at ``16 x 65536 x 8B = 8 MiB`` of float64 — tune both
    knobs to the deployment's memory budget.
    """

    def __init__(
        self,
        directory: PathLike,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_resident_chunks: int = 16,
    ):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self._directory = Path(directory)
        manifest = read_manifest(self._directory)
        self._name = manifest.get("name", self._directory.name)
        self._num_records = int(manifest["num_records"])
        self._chunk_size = int(chunk_size)
        self._cache = _ChunkCache(max_resident_chunks)
        self._handles: Dict[str, ChunkedColumnHandle] = {
            col_name: ChunkedColumnHandle(
                col_name,
                column_file(self._directory, col_name),
                np.dtype(spec["dtype"]),
                self._num_records,
                self._chunk_size,
                self._cache,
            )
            for col_name, spec in manifest["columns"].items()
        }

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def name(self) -> str:
        return self._name

    @property
    def num_records(self) -> int:
        return self._num_records

    @property
    def chunk_size(self) -> int:
        return self._chunk_size

    def column_names(self) -> List[str]:
        return list(self._handles.keys())

    def column(self, column_name: str) -> ChunkedColumnHandle:
        try:
            return self._handles[column_name]
        except KeyError:
            raise self._missing_column(column_name) from None

    def cache_info(self) -> Dict[str, int]:
        """Residency and hit/miss counters (diagnostics and tests)."""
        return {
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "evictions": self._cache.evictions,
            "resident_chunks": self._cache.resident,
            "resident_nbytes": self._cache.resident_nbytes,
        }

    def close(self) -> None:
        self._cache.clear()
