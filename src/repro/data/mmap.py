"""Memory-mapped dataset backend over an on-disk column directory.

``np.memmap`` gives each column the full ndarray interface while the OS
pages data in on demand and evicts it under memory pressure: a gather of
``k`` sampled records touches at most ``k`` pages per column, so a query
whose oracle budget is tiny relative to the dataset (ABae's whole
premise) keeps a resident set proportional to the *sample*, not the
dataset.  This is the backend of choice whenever the dataset lives on
local disk and exceeds — or would crowd out — RAM.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.data.backend import ColumnHandle, DatasetBackend
from repro.data.diskio import column_file, read_manifest

__all__ = ["MmapColumnHandle", "MmapBackend"]

PathLike = Union[str, Path]


class MmapColumnHandle(ColumnHandle):
    """A column handle over one memory-mapped column file."""

    def __init__(self, name: str, path: Path, dtype: np.dtype, num_records: int):
        self._name = name
        self._path = Path(path)
        self._dtype = np.dtype(dtype)
        self._num_records = int(num_records)
        self._mmap = None  # opened lazily, kept for the handle's lifetime

    def _map(self) -> np.memmap:
        if self._mmap is None:
            self._mmap = np.memmap(
                self._path, dtype=self._dtype, mode="r", shape=(self._num_records,)
            )
        return self._mmap

    @property
    def name(self) -> str:
        return self._name

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def __len__(self) -> int:
        return self._num_records

    def gather(self, record_indices: Sequence[int]) -> np.ndarray:
        idx = self._normalize_indices(record_indices)
        # Fancy indexing a memmap allocates a dense result and reads only
        # the touched pages — exactly the samplers' access pattern.
        return np.asarray(self._map()[idx])

    def to_numpy(self) -> np.ndarray:
        """The full column as the (read-only) memmap view — lazily paged."""
        return self._map()

    def close(self) -> None:
        self._mmap = None

    # The map itself cannot cross process boundaries; workers reopen the
    # file lazily from the path (process-backend oracle sharding).
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_mmap"] = None
        return state


class MmapBackend(DatasetBackend):
    """Dataset backend memory-mapping a column directory.

    Open an ingested directory (see :mod:`repro.data.diskio` for the
    format and ``scripts/ingest_dataset.py`` for the CLI)::

        backend = MmapBackend("datasets/night-street-1m")
        proxy = BackedProxy(backend, "proxy_score")
        oracle = LabelColumnOracle(backend.column("label"))
    """

    def __init__(self, directory: PathLike):
        self._directory = Path(directory)
        manifest = read_manifest(self._directory)
        self._manifest = manifest
        self._name = manifest.get("name", self._directory.name)
        self._num_records = int(manifest["num_records"])
        self._handles: Dict[str, MmapColumnHandle] = {
            col_name: MmapColumnHandle(
                col_name,
                column_file(self._directory, col_name),
                np.dtype(spec["dtype"]),
                self._num_records,
            )
            for col_name, spec in manifest["columns"].items()
        }

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def name(self) -> str:
        return self._name

    @property
    def num_records(self) -> int:
        return self._num_records

    def column_names(self) -> List[str]:
        return list(self._handles.keys())

    def column(self, column_name: str) -> MmapColumnHandle:
        try:
            return self._handles[column_name]
        except KeyError:
            raise self._missing_column(column_name) from None

    def close(self) -> None:
        """Drop every open map (handles reopen lazily if used again)."""
        for handle in self._handles.values():
            handle.close()
