"""The dataset-backend protocol and its dense in-memory implementation.

ABae's premise is that the *oracle* is the expensive resource while the
dataset scan is cheap — but "cheap" only holds while every column (proxy
scores, statistic values, oracle answer columns) fits in RAM as a dense
ndarray.  This module makes the storage behind those columns pluggable:

* :class:`ColumnHandle` — one named, typed, 1-D column, read through two
  operations: ``gather(indices)`` (a dense fancy-index of a subset, the
  samplers' access pattern) and ``to_numpy()`` (the full column, for the
  few consumers — stratification, proxy validation — that genuinely need
  every value).
* :class:`DatasetBackend` — a named collection of equal-length column
  handles.  :class:`InMemoryBackend` (here) is today's dense behaviour
  and the default; :class:`repro.data.mmap.MmapBackend` and
  :class:`repro.data.chunked.ChunkedBackend` serve the same protocol
  from an on-disk column directory.

Determinism contract
--------------------
Backends are *storage*, never semantics: for the same logical column
values, every backend returns bit-identical arrays from ``gather`` and
``to_numpy``, so sampler draws, estimates, CIs and oracle accounting are
bit-identical across backends (pinned by ``tests/test_backend_parity.py``
over the equivalence-harness grid).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Mapping, Sequence

import numpy as np

__all__ = [
    "ColumnHandle",
    "DatasetBackend",
    "ArrayColumnHandle",
    "InMemoryBackend",
    "is_column_handle",
    "as_dense",
]


def is_column_handle(obj) -> bool:
    """Whether ``obj`` is a backend column (vs a raw array / callable)."""
    return isinstance(obj, ColumnHandle)


def as_dense(values, dtype=None) -> np.ndarray:
    """Materialize column handles; pass arrays through ``np.asarray``.

    The adapter the existing dense code paths use at their boundaries:
    consumers that genuinely need the whole column (stratification sorts,
    ground-truth evaluation) call this once, everything else stays on
    ``gather``.
    """
    if isinstance(values, ColumnHandle):
        arr = values.to_numpy()
        return arr if dtype is None else np.asarray(arr, dtype=dtype)
    return np.asarray(values) if dtype is None else np.asarray(values, dtype=dtype)


class ColumnHandle(abc.ABC):
    """One named, typed, 1-D column served by a dataset backend.

    Handles deliberately do **not** implement ``__array__``: silently
    materializing an out-of-core column through ``np.asarray`` is exactly
    the trap this layer exists to remove.  Use :meth:`gather` for subsets
    and :meth:`to_numpy` when the full column is genuinely required.
    """

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """The column's name within its backend."""

    @property
    @abc.abstractmethod
    def dtype(self) -> np.dtype:
        """The column's element dtype."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of records in the column."""

    @abc.abstractmethod
    def gather(self, record_indices: Sequence[int]) -> np.ndarray:
        """Dense values for the given record indices, in request order.

        Negative indices follow NumPy semantics; out-of-range indices
        raise ``IndexError``.  The returned array is freshly allocated
        (or a read-only view for in-memory full-range gathers) and always
        dense, whatever the storage.
        """

    @abc.abstractmethod
    def to_numpy(self) -> np.ndarray:
        """The full column as an ndarray.

        In-memory backends return their (read-only) array; the mmap
        backend returns the lazily-paged memmap view; the chunked backend
        materializes — callers should reach for this only when they truly
        need every value.
        """

    @property
    def nbytes(self) -> int:
        """Logical dense size of the column in bytes."""
        return len(self) * self.dtype.itemsize

    def _normalize_indices(self, record_indices: Sequence[int]) -> np.ndarray:
        """Validate and canonicalize gather indices (shared by backends)."""
        idx = np.asarray(record_indices, dtype=np.int64)
        if idx.ndim != 1:
            raise ValueError(
                f"gather indices must be one-dimensional, got shape {idx.shape}"
            )
        n = len(self)
        if idx.size:
            lo, hi = int(idx.min()), int(idx.max())
            if lo < -n or hi >= n:
                raise IndexError(
                    f"gather index out of range for column {self.name!r} "
                    f"with {n} records"
                )
            if lo < 0:
                idx = np.where(idx < 0, idx + n, idx)
        return idx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.name!r}, n={len(self)}, "
            f"dtype={self.dtype})"
        )


class ArrayColumnHandle(ColumnHandle):
    """A column handle over a dense in-memory ndarray (read-only)."""

    def __init__(self, name: str, values: np.ndarray):
        if not name:
            raise ValueError("column name must be non-empty")
        arr = np.asarray(values)
        if arr.ndim != 1:
            raise ValueError(
                f"column {name!r} must be one-dimensional, got shape {arr.shape}"
            )
        if arr.dtype.kind == "O":
            raise ValueError(
                f"column {name!r}: object dtype is not supported by dataset "
                "backends; encode keys as fixed-width strings or integer codes"
            )
        if arr is values or not arr.flags.owndata:
            arr = arr.copy()
        arr.setflags(write=False)
        self._name = name
        self._values = arr

    @property
    def name(self) -> str:
        return self._name

    @property
    def dtype(self) -> np.dtype:
        return self._values.dtype

    def __len__(self) -> int:
        return int(self._values.shape[0])

    def gather(self, record_indices: Sequence[int]) -> np.ndarray:
        return self._values[self._normalize_indices(record_indices)]

    def to_numpy(self) -> np.ndarray:
        return self._values


class DatasetBackend(abc.ABC):
    """A named collection of equal-length columns behind one storage scheme."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Human-readable backend/dataset name."""

    @property
    @abc.abstractmethod
    def num_records(self) -> int:
        """Number of records (rows) in every column."""

    @abc.abstractmethod
    def column_names(self) -> List[str]:
        """The available column names."""

    @abc.abstractmethod
    def column(self, column_name: str) -> ColumnHandle:
        """The named column handle (``KeyError`` with the available names)."""

    def __contains__(self, column_name: str) -> bool:
        return column_name in self.column_names()

    def __len__(self) -> int:
        return self.num_records

    @property
    def nbytes(self) -> int:
        """Logical *dense* footprint of the whole dataset in bytes.

        This is what the data would occupy fully materialized in RAM —
        the denominator of every out-of-core RSS claim — independent of
        how (or whether) the backend actually holds it resident.
        """
        return sum(self.column(c).nbytes for c in self.column_names())

    def describe(self) -> Dict[str, object]:
        """Summary dict used by the ingest CLI and benchmark reports."""
        return {
            "name": self.name,
            "kind": type(self).__name__,
            "num_records": self.num_records,
            "columns": {
                c: str(self.column(c).dtype) for c in self.column_names()
            },
            "dense_nbytes": self.nbytes,
        }

    def close(self) -> None:
        """Release any open resources (default: nothing to release)."""

    def _missing_column(self, column_name: str) -> KeyError:
        available = ", ".join(sorted(self.column_names()))
        return KeyError(
            f"backend {self.name!r} has no column {column_name!r}; "
            f"available columns: {available}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.name!r}, records={self.num_records}, "
            f"columns={self.column_names()})"
        )


class InMemoryBackend(DatasetBackend):
    """Today's dense ndarray storage behind the backend protocol (default).

    Wrapping existing arrays costs one read-only copy per column at
    construction; every ``gather`` afterwards is a plain fancy index, so
    samplers running through an :class:`InMemoryBackend` are bit-identical
    to (and as fast as) the raw-array paths they replace.
    """

    def __init__(self, columns: Mapping[str, Sequence], name: str = "memory"):
        if not columns:
            raise ValueError("a backend requires at least one column")
        handles: Dict[str, ColumnHandle] = {}
        for col_name, values in columns.items():
            handles[col_name] = (
                values
                if isinstance(values, ColumnHandle)
                else ArrayColumnHandle(col_name, values)
            )
        lengths = {len(h) for h in handles.values()}
        if len(lengths) != 1:
            raise ValueError(
                f"all columns must have the same length, got lengths "
                f"{sorted(lengths)}"
            )
        self._name = name
        self._columns = handles
        self._num_records = lengths.pop()

    @classmethod
    def from_table(cls, table, name: str = None) -> "InMemoryBackend":
        """Wrap a :class:`repro.dataset.table.Table`'s numeric columns."""
        columns = {
            col_name: table.values(col_name)
            for col_name in table.column_names
            if np.asarray(table.values(col_name)).dtype.kind != "O"
        }
        if not columns:
            raise ValueError(
                f"table {table.name!r} has no numeric/boolean columns to back"
            )
        return cls(columns, name=name if name is not None else table.name)

    @property
    def name(self) -> str:
        return self._name

    @property
    def num_records(self) -> int:
        return self._num_records

    def column_names(self) -> List[str]:
        return list(self._columns.keys())

    def column(self, column_name: str) -> ColumnHandle:
        try:
            return self._columns[column_name]
        except KeyError:
            raise self._missing_column(column_name) from None
