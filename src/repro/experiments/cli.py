"""Command-line entry point for regenerating the paper's experiments.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments --figure fig2 --trials 50 --size 100000
    python -m repro.experiments --figure table2
    python -m repro.experiments --all --trials 10 --output-dir results/

Each figure prints the same text tables the benchmark suite writes to
``benchmarks/results/`` and, with ``--output-dir``, also saves them to disk.
This is the convenient way to rerun a single experiment with a larger trial
count than the benchmark defaults (e.g. the paper's 1,000 trials).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments import figures
from repro.experiments.config import PAPER_BUDGETS, ExperimentConfig
from repro.experiments.reporting import format_curve_table, format_table

__all__ = ["main", "EXPERIMENTS", "run_experiment"]


def _render_sweeps(sweeps) -> str:
    return "\n\n".join(format_curve_table(sweep) for sweep in sweeps)


def _render_table2(rows) -> str:
    return format_table(
        ["dataset", "paper size", "emulated size", "predicate", "positive rate", "proxy corr"],
        [
            [
                r["dataset"],
                r["paper_size"],
                r["emulated_size"],
                r["predicate"],
                r["positive_rate"],
                r["proxy_correlation"],
            ]
            for r in rows
        ],
        title="Table 2: dataset summary (emulated)",
    )


# Experiment name -> (figure function, renderer, description).
EXPERIMENTS: Dict[str, tuple] = {
    "table2": (figures.table2_dataset_summary, _render_table2, "dataset summary"),
    "fig2": (figures.figure2_rmse_vs_budget, _render_sweeps, "budget vs RMSE"),
    "fig3": (figures.figure3_low_budget, _render_sweeps, "low budgets vs RMSE"),
    "fig4": (figures.figure4_q_error, _render_sweeps, "budget vs normalized Q-error"),
    "fig5": (figures.figure5_ci_width, _render_sweeps, "budget vs CI width"),
    "fig6": (figures.figure6_multipred, _render_sweeps, "multiple predicates"),
    "fig7": (figures.figure7_groupby_single_oracle, _render_sweeps, "group by, single oracle"),
    "fig8": (figures.figure8_groupby_multi_oracle, _render_sweeps, "group by, multiple oracles"),
    "fig9": (figures.figure9_lesion, _render_sweeps, "lesion study"),
    "fig10": (figures.figure10_sensitivity_num_strata, _render_sweeps, "sensitivity to K"),
    "fig11": (figures.figure11_sensitivity_stage_split, _render_sweeps, "sensitivity to C"),
    "fig12": (figures.figure12_proxy_combination, _render_sweeps, "combining proxies"),
}


def run_experiment(name: str, config: ExperimentConfig) -> str:
    """Run one named experiment and return its rendered text table(s)."""
    try:
        figure_fn, renderer, _ = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        ) from None
    return renderer(figure_fn(config))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the ABae paper's tables and figures.",
    )
    parser.add_argument("--figure", choices=sorted(EXPERIMENTS), help="experiment to run")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument("--trials", type=int, default=30, help="trials per condition")
    parser.add_argument("--size", type=int, default=100_000, help="emulated dataset size")
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--budgets",
        type=int,
        nargs="+",
        default=list(PAPER_BUDGETS),
        help="oracle budgets to sweep",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="also write each experiment's table to <output-dir>/<name>.txt",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(EXPERIMENTS):
            print(f"{name:8s} {EXPERIMENTS[name][2]}")
        return 0

    if not args.all and not args.figure:
        parser.error("choose --figure NAME, --all, or --list")

    config = ExperimentConfig(
        budgets=tuple(args.budgets),
        num_trials=args.trials,
        dataset_size=args.size,
        seed=args.seed,
    )
    names = sorted(EXPERIMENTS) if args.all else [args.figure]
    for name in names:
        text = run_experiment(name, config)
        print(f"=== {name}: {EXPERIMENTS[name][2]} ===")
        print(text)
        print()
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
