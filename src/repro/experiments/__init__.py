"""Experiment harness that regenerates the paper's figures.

* :mod:`repro.experiments.config` — experiment configuration objects
  (datasets, budgets, trial counts, method lists);
* :mod:`repro.experiments.runner` — run (method x budget x trial) sweeps on
  a scenario and collect error metrics;
* :mod:`repro.experiments.figures` — one function per paper figure, each
  returning the rows the paper's plot encodes;
* :mod:`repro.experiments.reporting` — plain-text tables for benchmark
  output and EXPERIMENTS.md.

The benchmark suite under ``benchmarks/`` is a thin wrapper around
:mod:`repro.experiments.figures`, with trial counts scaled down so the full
suite completes in minutes rather than the paper's cluster-scale runs.
"""

from repro.experiments.config import ExperimentConfig, SweepResult, MethodCurve
from repro.experiments.runner import (
    run_single_predicate_sweep,
    run_trials,
)
from repro.experiments.reporting import format_table, format_curve_table
from repro.experiments import figures

__all__ = [
    "ExperimentConfig",
    "SweepResult",
    "MethodCurve",
    "run_single_predicate_sweep",
    "run_trials",
    "format_table",
    "format_curve_table",
    "figures",
]
