"""``python -m repro.experiments`` — regenerate the paper's experiments."""

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
