"""One function per paper figure / table (Section 5).

Each function builds its workload(s) from :mod:`repro.synth`, runs the
sweep with the experiment runner, and returns the series the paper's
figure plots.  The benchmark suite calls these functions with scaled-down
trial counts; calling them with ``ExperimentConfig(num_trials=1000)``
reproduces the paper's protocol exactly (modulo the simulated datasets).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.abae import run_abae
from repro.core.groupby import (
    GroupSpec,
    run_groupby_multi_oracle,
    run_groupby_single_oracle,
)
from repro.core.multipred import And, PredicateLeaf, run_abae_multipred
from repro.core.proxy_selection import combine_proxies, draw_pilot_sample
from repro.core.uniform import run_uniform
from repro.experiments.config import (
    PAPER_LOW_BUDGETS,
    ExperimentConfig,
    MethodCurve,
    SweepResult,
)
from repro.experiments.runner import (
    default_methods,
    run_single_predicate_sweep,
    run_trials,
    summarize_estimates,
    _stable_seed,
)
from repro.stats.metrics import rmse
from repro.stats.rng import RandomState
from repro.synth.base import GroupByScenario, MultiPredicateScenario
from repro.synth.datasets import DATASET_NAMES, DATASET_SPECS, make_dataset
from repro.synth.scenarios import (
    make_groupby_scenario,
    make_multipred_scenario,
    make_proxy_combination_scenario,
)

__all__ = [
    "table2_dataset_summary",
    "figure2_rmse_vs_budget",
    "figure3_low_budget",
    "figure4_q_error",
    "figure5_ci_width",
    "figure6_multipred",
    "figure7_groupby_single_oracle",
    "figure8_groupby_multi_oracle",
    "figure9_lesion",
    "figure10_sensitivity_num_strata",
    "figure11_sensitivity_stage_split",
    "figure12_proxy_combination",
]


def _config(config: Optional[ExperimentConfig]) -> ExperimentConfig:
    return config or ExperimentConfig()


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------


def table2_dataset_summary(config: Optional[ExperimentConfig] = None) -> List[Dict]:
    """Rows mirroring Table 2: dataset, size, predicate, oracle, proxy, positive rate."""
    config = _config(config)
    rows = []
    for name in DATASET_NAMES:
        spec = DATASET_SPECS[name]
        scenario = make_dataset(name, seed=config.seed, size=config.dataset_size)
        rows.append(
            {
                "dataset": name,
                "paper_size": spec.paper_size,
                "emulated_size": scenario.num_records,
                "predicate": spec.predicate,
                "target_dnn": spec.target_dnn,
                "proxy_model": spec.proxy_model,
                "positive_rate": scenario.positive_rate,
                "proxy_correlation": scenario.proxy.correlation_with(scenario.labels),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 2-5: single-predicate end-to-end results
# ---------------------------------------------------------------------------


def figure2_rmse_vs_budget(
    config: Optional[ExperimentConfig] = None,
    datasets: Sequence[str] = DATASET_NAMES,
) -> List[SweepResult]:
    """Figure 2: budget vs RMSE for ABae and uniform on the six datasets."""
    config = _config(config)
    sweeps = []
    for name in datasets:
        scenario = make_dataset(name, seed=config.seed, size=config.dataset_size)
        sweeps.append(run_single_predicate_sweep(scenario, config, metric="rmse"))
    return sweeps


def figure3_low_budget(
    config: Optional[ExperimentConfig] = None,
    datasets: Sequence[str] = DATASET_NAMES,
) -> List[SweepResult]:
    """Figure 3: the same comparison at low budgets (500-1,000 samples)."""
    config = _config(config)
    low_config = ExperimentConfig(
        budgets=tuple(PAPER_LOW_BUDGETS),
        num_trials=config.num_trials,
        num_strata=config.num_strata,
        stage1_fraction=config.stage1_fraction,
        alpha=config.alpha,
        dataset_size=config.dataset_size,
        seed=config.seed,
    )
    return figure2_rmse_vs_budget(low_config, datasets=datasets)


def figure4_q_error(
    config: Optional[ExperimentConfig] = None,
    datasets: Sequence[str] = ("night-street", "trec05p"),
) -> List[SweepResult]:
    """Figure 4: budget vs normalized Q-error (night-street and trec05p)."""
    config = _config(config)
    sweeps = []
    for name in datasets:
        scenario = make_dataset(name, seed=config.seed, size=config.dataset_size)
        sweeps.append(run_single_predicate_sweep(scenario, config, metric="q_error"))
    return sweeps


def figure5_ci_width(
    config: Optional[ExperimentConfig] = None,
    datasets: Sequence[str] = DATASET_NAMES,
    num_bootstrap: int = 200,
) -> List[SweepResult]:
    """Figure 5: budget vs bootstrap CI width, plus empirical coverage.

    Each returned sweep carries the coverage curves in
    ``details["coverage"]`` (method -> MethodCurve) so the benchmark can
    check nominal coverage as well as width.
    """
    config = _config(config)
    sweeps = []
    for name in datasets:
        scenario = make_dataset(name, seed=config.seed, size=config.dataset_size)
        truth = scenario.ground_truth()
        methods = default_methods(config, with_ci=True)
        sweep = SweepResult(name=name, metric="ci_width", ground_truth=truth)
        coverage_curves: Dict[str, MethodCurve] = {}
        for method_name, method in methods.items():
            width_curve = sweep.curve(method_name)
            coverage_curve = MethodCurve(method=method_name)
            for budget in config.budgets:
                seed = _stable_seed(config.seed, name, method_name, budget, "ci")
                results = run_trials(
                    scenario, method, budget, config.num_trials, seed=seed
                )
                width, width_std = summarize_estimates(results, truth, "ci_width")
                coverage, _ = summarize_estimates(results, truth, "coverage")
                width_curve.add(budget, width, width_std)
                coverage_curve.add(budget, coverage)
            coverage_curves[method_name] = coverage_curve
        sweep.details["coverage"] = coverage_curves
        sweeps.append(sweep)
    return sweeps


# ---------------------------------------------------------------------------
# Figure 6: multiple predicates
# ---------------------------------------------------------------------------


def figure6_multipred(
    config: Optional[ExperimentConfig] = None,
    scenarios: Sequence[str] = ("night-street", "synthetic"),
) -> List[SweepResult]:
    """Figure 6: ABae-MultiPred vs single-proxy ABae vs uniform sampling."""
    config = _config(config)
    sweeps = []
    for name in scenarios:
        workload = make_multipred_scenario(name, seed=config.seed, size=config.dataset_size)
        truth = workload.ground_truth()
        predicate_names = workload.predicate_names
        sweep = SweepResult(
            name=workload.name, metric="rmse", ground_truth=truth
        )

        method_fns = {
            "abae-multi": _multipred_method(workload, config),
            "uniform": _multipred_uniform_method(workload),
        }
        for i, predicate in enumerate(predicate_names):
            method_fns[f"proxy-{i + 1}"] = _single_proxy_method(workload, predicate, config)

        for method_name, method in method_fns.items():
            curve = sweep.curve(method_name)
            for budget in config.budgets:
                seed = _stable_seed(config.seed, workload.name, method_name, budget)
                children = RandomState(seed).spawn(config.num_trials)
                estimates = [method(budget, child) for child in children]
                curve.add(budget, rmse(estimates, truth))
        sweeps.append(sweep)
    return sweeps


def _multipred_method(workload: MultiPredicateScenario, config: ExperimentConfig):
    def method(budget: int, rng: RandomState) -> float:
        expression = And(
            [
                PredicateLeaf(
                    proxy=workload.proxies[name], oracle=workload.make_oracle(name)
                )
                for name in workload.predicate_names
            ]
        )
        result = run_abae_multipred(
            expression=expression,
            statistic=workload.statistic_values,
            budget=budget,
            num_strata=config.num_strata,
            stage1_fraction=config.stage1_fraction,
            rng=rng,
        )
        return result.estimate

    return method


def _single_proxy_method(
    workload: MultiPredicateScenario, predicate: str, config: ExperimentConfig
):
    """ABae driven by only one predicate's proxy (but the full combined oracle)."""

    def method(budget: int, rng: RandomState) -> float:
        result = run_abae(
            proxy=workload.proxies[predicate],
            oracle=workload.make_combined_oracle(),
            statistic=workload.statistic_values,
            budget=budget,
            num_strata=config.num_strata,
            stage1_fraction=config.stage1_fraction,
            rng=rng,
        )
        return result.estimate

    return method


def _multipred_uniform_method(workload: MultiPredicateScenario):
    def method(budget: int, rng: RandomState) -> float:
        result = run_uniform(
            num_records=workload.num_records,
            oracle=workload.make_combined_oracle(),
            statistic=workload.statistic_values,
            budget=budget,
            rng=rng,
        )
        return result.estimate

    return method


# ---------------------------------------------------------------------------
# Figures 7 and 8: group bys
# ---------------------------------------------------------------------------


def figure7_groupby_single_oracle(
    config: Optional[ExperimentConfig] = None,
    scenarios: Sequence[str] = ("celeba", "synthetic"),
) -> List[SweepResult]:
    """Figure 7: max-RMSE over groups, single-oracle setting."""
    return _groupby_figure(config, scenarios, setting="single")


def figure8_groupby_multi_oracle(
    config: Optional[ExperimentConfig] = None,
    scenarios: Sequence[str] = ("celeba", "synthetic"),
) -> List[SweepResult]:
    """Figure 8: max-RMSE over groups, multiple-oracle setting."""
    return _groupby_figure(config, scenarios, setting="multi")


def _groupby_figure(
    config: Optional[ExperimentConfig],
    scenarios: Sequence[str],
    setting: str,
) -> List[SweepResult]:
    config = _config(config)
    sweeps = []
    for name in scenarios:
        workload = make_groupby_scenario(
            name, setting=setting, seed=config.seed, size=config.dataset_size
        )
        truths = workload.ground_truths()
        num_groups = len(workload.groups)
        sweep = SweepResult(
            name=f"{workload.name}-{setting}",
            metric="max_rmse",
            ground_truth=float(np.mean(list(truths.values()))),
        )
        sweep.details["group_truths"] = truths

        for method_name in ("minimax", "equal", "uniform"):
            curve = sweep.curve(method_name)
            for budget in config.budgets:
                # The paper normalizes the budget by the number of groups.
                total_budget = budget * num_groups if setting == "multi" else budget
                seed = _stable_seed(config.seed, workload.name, setting, method_name, budget)
                children = RandomState(seed).spawn(config.num_trials)
                per_group_estimates: Dict[object, List[float]] = {
                    g: [] for g in workload.groups
                }
                for child in children:
                    estimates = _run_groupby_once(
                        workload, setting, method_name, total_budget, config, child
                    )
                    for group, value in estimates.items():
                        per_group_estimates[group].append(value)
                worst = max(
                    rmse(per_group_estimates[group], truths[group])
                    for group in workload.groups
                )
                curve.add(budget, worst)
        sweeps.append(sweep)
    return sweeps


def _run_groupby_once(
    workload: GroupByScenario,
    setting: str,
    method_name: str,
    budget: int,
    config: ExperimentConfig,
    rng: RandomState,
) -> Dict[object, float]:
    specs = [GroupSpec(key=g, proxy=workload.proxies[g]) for g in workload.groups]
    if setting == "single":
        result = run_groupby_single_oracle(
            groups=specs,
            oracle=workload.make_single_oracle(),
            statistic=workload.statistic_values,
            budget=budget,
            num_strata=config.num_strata,
            stage1_fraction=config.stage1_fraction,
            allocation_method=method_name,
            rng=rng,
        )
    else:
        result = run_groupby_multi_oracle(
            groups=specs,
            oracles=workload.make_per_group_oracles(),
            statistic=workload.statistic_values,
            budget=budget,
            num_strata=config.num_strata,
            stage1_fraction=config.stage1_fraction,
            allocation_method=method_name,
            rng=rng,
        )
    return result.estimates()


# ---------------------------------------------------------------------------
# Figure 9: lesion study
# ---------------------------------------------------------------------------


def figure9_lesion(
    config: Optional[ExperimentConfig] = None,
    datasets: Sequence[str] = DATASET_NAMES,
    budget: int = 10_000,
) -> List[SweepResult]:
    """Figure 9: full ABae vs ABae without sample reuse vs uniform sampling."""
    config = _config(config)
    single_budget_config = ExperimentConfig(
        budgets=(budget,),
        num_trials=config.num_trials,
        num_strata=config.num_strata,
        stage1_fraction=config.stage1_fraction,
        alpha=config.alpha,
        dataset_size=config.dataset_size,
        seed=config.seed,
    )
    sweeps = []
    for name in datasets:
        scenario = make_dataset(name, seed=config.seed, size=config.dataset_size)
        methods = default_methods(single_budget_config, include_no_reuse=True)
        sweeps.append(
            run_single_predicate_sweep(
                scenario, single_budget_config, metric="rmse", methods=methods
            )
        )
    return sweeps


# ---------------------------------------------------------------------------
# Figures 10 and 11: sensitivity analyses
# ---------------------------------------------------------------------------


def figure10_sensitivity_num_strata(
    config: Optional[ExperimentConfig] = None,
    datasets: Sequence[str] = DATASET_NAMES,
    strata_counts: Sequence[int] = (2, 3, 4, 5, 6, 7, 8, 9, 10),
    budget: int = 10_000,
) -> List[SweepResult]:
    """Figure 10: RMSE as a function of the number of strata K."""
    config = _config(config)
    sweeps = []
    for name in datasets:
        scenario = make_dataset(name, seed=config.seed, size=config.dataset_size)
        truth = scenario.ground_truth()
        sweep = SweepResult(name=name, metric="rmse_vs_k", ground_truth=truth)
        abae_curve = sweep.curve("abae")
        uniform_curve = sweep.curve("uniform")

        uniform_estimates = _collect_estimates(
            scenario, config, budget, lambda rng: run_uniform(
                num_records=scenario.num_records,
                oracle=scenario.make_oracle(),
                statistic=scenario.statistic_values,
                budget=budget,
                rng=rng,
            ).estimate, label="uniform-k",
        )
        uniform_rmse = rmse(uniform_estimates, truth)

        for k in strata_counts:
            estimates = _collect_estimates(
                scenario, config, budget, lambda rng, k=k: run_abae(
                    proxy=scenario.proxy,
                    oracle=scenario.make_oracle(),
                    statistic=scenario.statistic_values,
                    budget=budget,
                    num_strata=k,
                    stage1_fraction=config.stage1_fraction,
                    rng=rng,
                ).estimate, label=f"abae-k{k}",
            )
            abae_curve.add(k, rmse(estimates, truth))
            uniform_curve.add(k, uniform_rmse)
        sweeps.append(sweep)
    return sweeps


def figure11_sensitivity_stage_split(
    config: Optional[ExperimentConfig] = None,
    datasets: Sequence[str] = DATASET_NAMES,
    fractions: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    budget: int = 10_000,
) -> List[SweepResult]:
    """Figure 11: RMSE as a function of the Stage-1 fraction C."""
    config = _config(config)
    sweeps = []
    for name in datasets:
        scenario = make_dataset(name, seed=config.seed, size=config.dataset_size)
        truth = scenario.ground_truth()
        sweep = SweepResult(name=name, metric="rmse_vs_c", ground_truth=truth)
        abae_curve = sweep.curve("abae")
        uniform_curve = sweep.curve("uniform")

        uniform_estimates = _collect_estimates(
            scenario, config, budget, lambda rng: run_uniform(
                num_records=scenario.num_records,
                oracle=scenario.make_oracle(),
                statistic=scenario.statistic_values,
                budget=budget,
                rng=rng,
            ).estimate, label="uniform-c",
        )
        uniform_rmse = rmse(uniform_estimates, truth)

        for fraction in fractions:
            estimates = _collect_estimates(
                scenario, config, budget, lambda rng, c=fraction: run_abae(
                    proxy=scenario.proxy,
                    oracle=scenario.make_oracle(),
                    statistic=scenario.statistic_values,
                    budget=budget,
                    num_strata=config.num_strata,
                    stage1_fraction=c,
                    rng=rng,
                ).estimate, label=f"abae-c{fraction}",
            )
            # The x-axis holds 100 * C to stay integer-friendly for MethodCurve.
            abae_curve.add(int(round(fraction * 100)), rmse(estimates, truth))
            uniform_curve.add(int(round(fraction * 100)), uniform_rmse)
        sweeps.append(sweep)
    return sweeps


def _collect_estimates(scenario, config, budget, run_fn, label: str) -> List[float]:
    seed = _stable_seed(config.seed, scenario.name, label, budget)
    children = RandomState(seed).spawn(config.num_trials)
    return [float(run_fn(child)) for child in children]


# ---------------------------------------------------------------------------
# Figure 12: combining proxies
# ---------------------------------------------------------------------------


def figure12_proxy_combination(
    config: Optional[ExperimentConfig] = None,
    scenarios: Sequence[str] = ("trec05p", "synthetic"),
    pilot_fraction: float = 0.3,
) -> List[SweepResult]:
    """Figure 12: uniform vs single-proxy ABae vs logistic-combined proxies."""
    config = _config(config)
    sweeps = []
    for name in scenarios:
        scenario = make_proxy_combination_scenario(
            name, seed=config.seed, size=config.dataset_size
        )
        candidates = scenario.extra["candidate_proxies"]
        truth = scenario.ground_truth()
        sweep = SweepResult(
            name=f"{scenario.name}-proxy-combination", metric="rmse", ground_truth=truth
        )

        def combined_method(budget: int, rng: RandomState) -> float:
            pilot_rng, run_rng = rng.spawn(2)
            pilot_budget = max(2, int(budget * pilot_fraction))
            oracle = scenario.make_oracle()
            pilot = draw_pilot_sample(
                scenario.num_records,
                oracle,
                scenario.statistic_values,
                pilot_budget,
                rng=pilot_rng,
            )
            combined = combine_proxies(candidates, pilot)
            result = run_abae(
                proxy=combined,
                oracle=oracle,
                statistic=scenario.statistic_values,
                budget=budget - pilot_budget,
                num_strata=config.num_strata,
                stage1_fraction=config.stage1_fraction,
                rng=run_rng,
            )
            return result.estimate

        def single_method(budget: int, rng: RandomState) -> float:
            result = run_abae(
                proxy=candidates[0],
                oracle=scenario.make_oracle(),
                statistic=scenario.statistic_values,
                budget=budget,
                num_strata=config.num_strata,
                stage1_fraction=config.stage1_fraction,
                rng=rng,
            )
            return result.estimate

        def uniform_method(budget: int, rng: RandomState) -> float:
            result = run_uniform(
                num_records=scenario.num_records,
                oracle=scenario.make_oracle(),
                statistic=scenario.statistic_values,
                budget=budget,
                rng=rng,
            )
            return result.estimate

        methods = {
            "abae-logistic": combined_method,
            "abae-single": single_method,
            "uniform": uniform_method,
        }
        for method_name, method in methods.items():
            curve = sweep.curve(method_name)
            for budget in config.budgets:
                seed = _stable_seed(config.seed, scenario.name, method_name, budget, "combine")
                children = RandomState(seed).spawn(config.num_trials)
                estimates = [method(budget, child) for child in children]
                curve.add(budget, rmse(estimates, truth))
        sweeps.append(sweep)
    return sweeps
