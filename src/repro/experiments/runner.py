"""Trial runner: sweep (method, budget, trial) grids and collect metrics.

Every figure experiment boils down to: for each budget, run each method
``num_trials`` times with independent seeds, and summarize the estimates
against the scenario's ground truth with the figure's metric (RMSE, CI
width, normalized Q-error, ...).  The generic machinery lives here so the
per-figure functions stay short and declarative.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.abae import run_abae
from repro.core.results import EstimateResult
from repro.core.stratification import Stratification
from repro.core.uniform import run_uniform
from repro.engine.config import ExecutionConfig
from repro.experiments.config import ExperimentConfig, SweepResult
from repro.stats.metrics import coverage_rate, normalized_q_error, rmse
from repro.stats.rng import RandomState
from repro.synth.base import Scenario

__all__ = ["run_trials", "run_single_predicate_sweep", "summarize_estimates"]

MethodFn = Callable[[Scenario, int, RandomState], EstimateResult]


def _abae_method(
    num_strata: int, stage1_fraction: float, reuse_samples: bool = True,
    with_ci: bool = False, alpha: float = 0.05, num_bootstrap: int = 200,
    execution: Optional[ExecutionConfig] = None,
) -> MethodFn:
    def method(scenario: Scenario, budget: int, rng: RandomState) -> EstimateResult:
        # Stratification is a pure function of (proxy, K): build it through
        # the plan-level cache and hand it to every trial explicitly, so a
        # budget x seed x trial grid sorts the score vector once instead of
        # once per cell.  Passing it in (rather than relying on run_abae's
        # internal lookup) also keeps the per-trial path free of cache-key
        # hashing.
        stratification = Stratification.by_proxy_quantile(
            scenario.proxy, num_strata
        )
        return run_abae(
            proxy=scenario.proxy,
            oracle=scenario.make_oracle(),
            statistic=scenario.statistic_values,
            budget=budget,
            num_strata=num_strata,
            stage1_fraction=stage1_fraction,
            reuse_samples=reuse_samples,
            stratification=stratification,
            with_ci=with_ci,
            alpha=alpha,
            num_bootstrap=num_bootstrap,
            rng=rng,
            config=execution,
        )

    return method


def _uniform_method(
    with_ci: bool = False, alpha: float = 0.05, num_bootstrap: int = 200,
    execution: Optional[ExecutionConfig] = None,
) -> MethodFn:
    def method(scenario: Scenario, budget: int, rng: RandomState) -> EstimateResult:
        return run_uniform(
            num_records=scenario.num_records,
            oracle=scenario.make_oracle(),
            statistic=scenario.statistic_values,
            budget=budget,
            with_ci=with_ci,
            alpha=alpha,
            num_bootstrap=num_bootstrap,
            rng=rng,
            config=execution,
        )

    return method


def default_methods(
    config: ExperimentConfig,
    with_ci: bool = False,
    include_no_reuse: bool = False,
    execution: Optional[ExecutionConfig] = None,
) -> Dict[str, MethodFn]:
    """The standard method set: ABae and uniform (plus the lesion variant).

    ``execution`` is the shared :class:`~repro.engine.config.ExecutionConfig`
    every trial runs under (batching / sharding / caching); it never
    changes a trial's result, only how fast the sweep finishes.
    """
    methods: Dict[str, MethodFn] = {
        "abae": _abae_method(
            config.num_strata, config.stage1_fraction, True, with_ci, config.alpha,
            execution=execution,
        ),
        "uniform": _uniform_method(with_ci, config.alpha, execution=execution),
    }
    if include_no_reuse:
        methods["abae-no-reuse"] = _abae_method(
            config.num_strata, config.stage1_fraction, False, with_ci, config.alpha,
            execution=execution,
        )
    return methods


def run_trials(
    scenario: Scenario,
    method: MethodFn,
    budget: int,
    num_trials: int,
    seed: int = 0,
) -> List[EstimateResult]:
    """Run one method ``num_trials`` times with independent child seeds."""
    children = RandomState(seed).spawn(num_trials)
    return [method(scenario, budget, child) for child in children]


def summarize_estimates(
    results: Sequence[EstimateResult], truth: float, metric: str
) -> tuple:
    """Reduce repeated trials to (value, std) for the requested metric."""
    estimates = np.array([r.estimate for r in results], dtype=float)
    if metric == "rmse":
        value = rmse(estimates, truth)
        spread = float(np.std(np.abs(estimates - truth), ddof=1)) if len(estimates) > 1 else 0.0
        return value, spread
    if metric == "q_error":
        q_errors = np.array(
            [normalized_q_error(max(e, 1e-12), max(truth, 1e-12)) for e in estimates]
        )
        return float(q_errors.mean()), float(q_errors.std(ddof=1)) if len(q_errors) > 1 else 0.0
    if metric == "ci_width":
        widths = np.array([r.ci.width for r in results if r.ci is not None])
        if widths.size == 0:
            raise ValueError("ci_width metric requires results carrying CIs")
        return float(widths.mean()), float(widths.std(ddof=1)) if widths.size > 1 else 0.0
    if metric == "coverage":
        lowers = [r.ci.lower for r in results if r.ci is not None]
        uppers = [r.ci.upper for r in results if r.ci is not None]
        if not lowers:
            raise ValueError("coverage metric requires results carrying CIs")
        return coverage_rate(lowers, uppers, truth), 0.0
    raise ValueError(
        f"unknown metric {metric!r}; expected rmse, q_error, ci_width or coverage"
    )


def run_single_predicate_sweep(
    scenario: Scenario,
    config: ExperimentConfig,
    metric: str = "rmse",
    methods: Optional[Dict[str, MethodFn]] = None,
    with_ci: bool = False,
    execution: Optional[ExecutionConfig] = None,
) -> SweepResult:
    """Sweep budgets x methods on one scenario and summarize with ``metric``.

    ``execution`` threads one shared engine config through every default
    method's trials; ignored when an explicit ``methods`` dict is given.
    """
    truth = scenario.ground_truth()
    if methods is None:
        methods = default_methods(config, with_ci=with_ci, execution=execution)
    sweep = SweepResult(name=scenario.name, metric=metric, ground_truth=truth)
    for method_name, method in methods.items():
        curve = sweep.curve(method_name)
        for budget in config.budgets:
            trial_seed = _stable_seed(config.seed, scenario.name, method_name, budget)
            results = run_trials(
                scenario, method, budget, config.num_trials, seed=trial_seed
            )
            value, spread = summarize_estimates(results, truth, metric)
            curve.add(budget, value, spread)
    return sweep


def _stable_seed(base: int, *labels) -> int:
    """Deterministic seed per (dataset, method, budget) combination."""
    acc = int(base) & 0x7FFFFFFF
    for label in labels:
        for char in str(label):
            acc = (acc * 1000003 + ord(char)) & 0x7FFFFFFF
    return acc
