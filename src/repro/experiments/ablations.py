"""Programmatic versions of the extra ablation experiments.

The benchmark files under ``benchmarks/test_ablation_*.py`` are the runnable
entry points; the functions here hold the experiment logic so that notebooks
and the CLI can run the same ablations with custom parameters, and so the
logic itself is unit-testable without pytest-benchmark.

Three ablations are provided (DESIGN.md §4):

* :func:`ablate_stratification` — proxy-quantile strata vs a random
  partition vs a single stratum;
* :func:`ablate_allocation_rule` — the Proposition-1 rule
  ``sqrt(p_k)·sigma_k`` vs Neyman allocation ``p_k·sigma_k`` vs an even
  Stage-2 split;
* :func:`ablate_sequential` — two-stage ABae vs the bandit-style sequential
  variant vs uniform sampling.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.core.abae import run_abae
from repro.core.adaptive import run_abae_sequential
from repro.core.stratification import Stratification
from repro.core.uniform import run_uniform
from repro.stats.metrics import rmse
from repro.stats.rng import RandomState
from repro.synth.base import Scenario

__all__ = ["ablate_stratification", "ablate_allocation_rule", "ablate_sequential"]


def _repeated_rmse(run_once: Callable[[RandomState], float], truth: float,
                   trials: int, seed: int) -> float:
    estimates = [run_once(child) for child in RandomState(seed).spawn(trials)]
    return rmse(estimates, truth)


def ablate_stratification(
    scenario: Scenario,
    budget: int = 6_000,
    num_strata: int = 5,
    trials: int = 10,
    seed: int = 11,
) -> Dict[str, float]:
    """RMSE of ABae under different stratification strategies."""
    truth = scenario.ground_truth()

    def abae_rmse(stratification: Optional[Stratification]) -> float:
        def run_once(rng: RandomState) -> float:
            return run_abae(
                proxy=scenario.proxy,
                oracle=scenario.make_oracle(),
                statistic=scenario.statistic_values,
                budget=budget,
                num_strata=num_strata,
                stratification=stratification,
                rng=rng,
            ).estimate

        return _repeated_rmse(run_once, truth, trials, seed)

    return {
        "proxy_quantile": abae_rmse(None),
        "random_partition": abae_rmse(
            Stratification.random(scenario.num_records, num_strata, rng=RandomState(3))
        ),
        "single_stratum": abae_rmse(Stratification.single_stratum(scenario.num_records)),
    }


def ablate_allocation_rule(
    scenario: Scenario,
    budget: int = 6_000,
    num_strata: int = 5,
    trials: int = 10,
    seed: int = 21,
) -> Dict[str, float]:
    """RMSE of ABae under different Stage-2 allocation rules.

    The rule is swapped by monkey-patching the allocation hook the engine's
    two-stage policy resolves through :mod:`repro.core.allocation`; the
    patch is always restored.
    """
    import repro.core.allocation as allocation_module

    truth = scenario.ground_truth()
    stratification = Stratification.by_proxy_quantile(scenario.proxy, num_strata)

    def rmse_with_rule(weight_fn: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> float:
        original = allocation_module.allocation_from_estimates

        def patched(estimates):
            p = np.array([e.p_hat for e in estimates])
            sigma = np.array([e.sigma_hat for e in estimates])
            weights = weight_fn(p, sigma)
            total = weights.sum()
            if total == 0:
                return np.full(p.shape, 1.0 / p.size)
            return weights / total

        allocation_module.allocation_from_estimates = patched
        try:
            def run_once(rng: RandomState) -> float:
                return run_abae(
                    proxy=scenario.proxy,
                    oracle=scenario.make_oracle(),
                    statistic=scenario.statistic_values,
                    budget=budget,
                    stratification=stratification,
                    rng=rng,
                ).estimate

            return _repeated_rmse(run_once, truth, trials, seed)
        finally:
            allocation_module.allocation_from_estimates = original

    return {
        "sqrt_p_sigma": rmse_with_rule(lambda p, s: np.sqrt(p) * s),
        "neyman_p_sigma": rmse_with_rule(lambda p, s: p * s),
        "even_split": rmse_with_rule(lambda p, s: np.ones_like(p)),
    }


def ablate_sequential(
    scenario: Scenario,
    budget: int = 6_000,
    num_strata: int = 5,
    trials: int = 10,
    seed: int = 31,
) -> Dict[str, float]:
    """RMSE of two-stage ABae vs sequential ABae vs uniform sampling."""
    truth = scenario.ground_truth()

    def two_stage(rng: RandomState) -> float:
        return run_abae(
            proxy=scenario.proxy,
            oracle=scenario.make_oracle(),
            statistic=scenario.statistic_values,
            budget=budget,
            num_strata=num_strata,
            rng=rng,
        ).estimate

    def sequential(rng: RandomState) -> float:
        return run_abae_sequential(
            proxy=scenario.proxy,
            oracle=scenario.make_oracle(),
            statistic=scenario.statistic_values,
            budget=budget,
            num_strata=num_strata,
            rng=rng,
        ).estimate

    def uniform(rng: RandomState) -> float:
        return run_uniform(
            num_records=scenario.num_records,
            oracle=scenario.make_oracle(),
            statistic=scenario.statistic_values,
            budget=budget,
            rng=rng,
        ).estimate

    return {
        "abae_two_stage": _repeated_rmse(two_stage, truth, trials, seed),
        "abae_sequential": _repeated_rmse(sequential, truth, trials, seed),
        "uniform": _repeated_rmse(uniform, truth, trials, seed),
    }
