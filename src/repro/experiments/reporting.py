"""Plain-text reporting for benchmark output and EXPERIMENTS.md.

The paper reports results as figures; our harness prints the same series as
aligned text tables so that a benchmark run's stdout is self-describing and
can be pasted straight into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.config import SweepResult

__all__ = ["format_table", "format_curve_table", "format_improvement_summary"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned, pipe-separated text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_curve_table(sweep: SweepResult, title: Optional[str] = None) -> str:
    """Render one figure panel: budgets as rows, one column per method."""
    methods = list(sweep.curves)
    budgets = sorted({b for curve in sweep.curves.values() for b in curve.budgets})
    headers = ["budget"] + methods
    rows = []
    for budget in budgets:
        row: List[object] = [budget]
        for method in methods:
            try:
                row.append(sweep.curves[method].value_at(budget))
            except KeyError:
                row.append("-")
        rows.append(row)
    resolved_title = title or f"{sweep.name}: {sweep.metric} vs budget (truth={sweep.ground_truth:.4g})"
    return format_table(headers, rows, title=resolved_title)


def format_improvement_summary(
    sweeps: Sequence[SweepResult], baseline: str = "uniform", method: str = "abae"
) -> str:
    """Summarize per-dataset best-case improvement of ``method`` over ``baseline``."""
    headers = ["dataset", "best improvement", "at budget"]
    rows = []
    for sweep in sweeps:
        ratios = sweep.improvement(baseline=baseline, method=method)
        if not ratios:
            rows.append([sweep.name, "-", "-"])
            continue
        best_budget = max(ratios, key=ratios.get)
        rows.append([sweep.name, f"{ratios[best_budget]:.2f}x", best_budget])
    return format_table(headers, rows, title=f"{method} vs {baseline} improvement")


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.5g}"
    return str(cell)
