"""Experiment configuration and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ExperimentConfig", "MethodCurve", "SweepResult"]

# The budgets the paper sweeps in Figures 2, 4, 5, 6, 7, 8 and 12.
PAPER_BUDGETS: Tuple[int, ...] = (2_000, 4_000, 6_000, 8_000, 10_000)
# The low-budget sweep of Figure 3.
PAPER_LOW_BUDGETS: Tuple[int, ...] = (500, 750, 1_000)


@dataclass
class ExperimentConfig:
    """Parameters shared by the figure experiments.

    Defaults follow the paper (K = 5 strata, half the budget in Stage 1,
    95% confidence), except ``num_trials`` and ``dataset_size``, which are
    scaled down so the whole benchmark suite runs on a laptop in minutes;
    the paper uses 1,000 trials per condition.  Crank them up for a closer
    reproduction.
    """

    budgets: Sequence[int] = PAPER_BUDGETS
    num_trials: int = 30
    num_strata: int = 5
    stage1_fraction: float = 0.5
    alpha: float = 0.05
    dataset_size: int = 50_000
    seed: int = 0

    def __post_init__(self):
        if self.num_trials <= 0:
            raise ValueError(f"num_trials must be positive, got {self.num_trials}")
        if self.num_strata <= 0:
            raise ValueError(f"num_strata must be positive, got {self.num_strata}")
        if not 0.0 < self.stage1_fraction < 1.0:
            raise ValueError(
                f"stage1_fraction must be in (0, 1), got {self.stage1_fraction}"
            )
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if not self.budgets:
            raise ValueError("budgets must be non-empty")

    def scaled(self, num_trials: Optional[int] = None, dataset_size: Optional[int] = None):
        """A copy with a different trial count / dataset size."""
        return ExperimentConfig(
            budgets=self.budgets,
            num_trials=num_trials or self.num_trials,
            num_strata=self.num_strata,
            stage1_fraction=self.stage1_fraction,
            alpha=self.alpha,
            dataset_size=dataset_size or self.dataset_size,
            seed=self.seed,
        )


@dataclass
class MethodCurve:
    """One method's metric as a function of budget (one line in a figure)."""

    method: str
    budgets: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    stds: List[float] = field(default_factory=list)

    def add(self, budget: int, value: float, std: float = 0.0) -> None:
        self.budgets.append(int(budget))
        self.values.append(float(value))
        self.stds.append(float(std))

    def value_at(self, budget: int) -> float:
        try:
            return self.values[self.budgets.index(int(budget))]
        except ValueError:
            raise KeyError(f"no measurement at budget {budget}") from None


@dataclass
class SweepResult:
    """All methods' curves for one dataset / figure panel."""

    name: str
    metric: str
    ground_truth: float
    curves: Dict[str, MethodCurve] = field(default_factory=dict)
    details: Dict[str, object] = field(default_factory=dict)

    def curve(self, method: str) -> MethodCurve:
        if method not in self.curves:
            self.curves[method] = MethodCurve(method=method)
        return self.curves[method]

    def improvement(self, baseline: str = "uniform", method: str = "abae") -> Dict[int, float]:
        """Per-budget ratio baseline_metric / method_metric (>1 means the method wins)."""
        base = self.curves[baseline]
        target = self.curves[method]
        ratios: Dict[int, float] = {}
        for budget, base_value in zip(base.budgets, base.values):
            try:
                method_value = target.value_at(budget)
            except KeyError:
                continue
            if method_value > 0:
                ratios[budget] = base_value / method_value
        return ratios
