"""Core data types shared by the sampling algorithms.

These are small, explicit dataclasses rather than ad-hoc tuples so that the
two-stage sampler, the bootstrap, the group-by extension and the tests all
agree on what a "stratum's worth of samples" contains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SamplingBudget", "StratumSample", "StratumEstimate"]


@dataclass(frozen=True)
class SamplingBudget:
    """The user's oracle budget, split between the two stages.

    ``stage1_per_stratum`` is the N1 of Algorithm 1 (samples drawn from each
    stratum in Stage 1); ``stage2_total`` is the N2 pool allocated across
    strata by the estimated optimal allocation.
    """

    total: int
    stage1_per_stratum: int
    stage2_total: int
    num_strata: int

    def __post_init__(self):
        if self.total < 0:
            raise ValueError(f"total budget must be non-negative, got {self.total}")
        if self.stage1_per_stratum < 0:
            raise ValueError(
                f"stage1_per_stratum must be non-negative, got {self.stage1_per_stratum}"
            )
        if self.stage2_total < 0:
            raise ValueError(
                f"stage2_total must be non-negative, got {self.stage2_total}"
            )
        if self.num_strata <= 0:
            raise ValueError(f"num_strata must be positive, got {self.num_strata}")
        spent = self.stage1_per_stratum * self.num_strata + self.stage2_total
        if spent > self.total:
            raise ValueError(
                f"budget split exceeds total: {self.stage1_per_stratum} x "
                f"{self.num_strata} + {self.stage2_total} > {self.total}"
            )

    @classmethod
    def from_fraction(
        cls, total: int, num_strata: int, stage1_fraction: float
    ) -> "SamplingBudget":
        """Split a total budget using the paper's C parameter.

        Stage 1 receives ``C * total`` samples divided evenly across the K
        strata (rounded down per stratum); everything left over goes to
        Stage 2, so no budget is wasted by rounding.
        """
        if total < 0:
            raise ValueError(f"total budget must be non-negative, got {total}")
        if num_strata <= 0:
            raise ValueError(f"num_strata must be positive, got {num_strata}")
        if not 0.0 <= stage1_fraction <= 1.0:
            raise ValueError(
                f"stage1_fraction must be in [0, 1], got {stage1_fraction}"
            )
        stage1_total = int(np.floor(total * stage1_fraction))
        stage1_per_stratum = stage1_total // num_strata
        stage2_total = total - stage1_per_stratum * num_strata
        return cls(
            total=total,
            stage1_per_stratum=stage1_per_stratum,
            stage2_total=stage2_total,
            num_strata=num_strata,
        )


@dataclass
class StratumSample:
    """All records drawn from a single stratum, across both stages.

    ``indices`` are dataset record indices; ``matches`` marks which drawn
    records satisfied the predicate; ``values`` holds the statistic for
    matching records and NaN elsewhere (the statistic is only defined /
    extracted for records passing the predicate).
    """

    stratum: int
    indices: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    matches: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))
    values: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=float))

    def __post_init__(self):
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.matches = np.asarray(self.matches, dtype=bool)
        self.values = np.asarray(self.values, dtype=float)
        if not (len(self.indices) == len(self.matches) == len(self.values)):
            raise ValueError(
                "indices, matches and values must have equal lengths, got "
                f"{len(self.indices)}, {len(self.matches)}, {len(self.values)}"
            )

    @property
    def num_draws(self) -> int:
        """Total number of records drawn (and hence oracle calls charged)."""
        return int(len(self.indices))

    @property
    def num_positive(self) -> int:
        """Number of drawn records that satisfied the predicate."""
        return int(self.matches.sum())

    @property
    def positive_values(self) -> np.ndarray:
        """Statistic values of the records that satisfied the predicate."""
        return self.values[self.matches]

    def extend(self, other: "StratumSample") -> "StratumSample":
        """Concatenate two sample sets from the same stratum."""
        if other.stratum != self.stratum:
            raise ValueError(
                f"cannot merge samples from stratum {other.stratum} into stratum "
                f"{self.stratum}"
            )
        return StratumSample(
            stratum=self.stratum,
            indices=np.concatenate([self.indices, other.indices]),
            matches=np.concatenate([self.matches, other.matches]),
            values=np.concatenate([self.values, other.values]),
        )


@dataclass(frozen=True)
class StratumEstimate:
    """Plug-in estimates for one stratum (the hatted quantities of Table 1)."""

    stratum: int
    p_hat: float
    mu_hat: float
    sigma_hat: float
    num_draws: int
    num_positive: int

    def __post_init__(self):
        if not 0.0 <= self.p_hat <= 1.0:
            raise ValueError(f"p_hat must be in [0, 1], got {self.p_hat}")
        if self.sigma_hat < 0:
            raise ValueError(f"sigma_hat must be non-negative, got {self.sigma_hat}")
        if self.num_positive > self.num_draws:
            raise ValueError(
                f"num_positive ({self.num_positive}) exceeds num_draws ({self.num_draws})"
            )

    @property
    def variance_hat(self) -> float:
        return self.sigma_hat**2
