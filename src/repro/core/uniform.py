"""Uniform-sampling baseline.

The only baseline applicable without precomputing predicate results
(Section 5.1): draw records uniformly at random, pay the oracle per draw,
and average the statistic over the draws that satisfy the predicate.  The
same bootstrap machinery provides its confidence intervals, so the Figure-5
comparison is apples to apples.

Like every sampler, this is a thin wrapper over the unified execution
engine: a degenerate single-stratum
:class:`~repro.engine.pipeline.SamplingPipeline` with the
:class:`~repro.engine.policies.UniformAllocationPolicy` /
:class:`~repro.engine.policies.UniformEstimator` pair.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.abae import _UNSET, StatisticLike  # noqa: F401 - re-export
from repro.core.results import EstimateResult
from repro.engine.builders import uniform_pipeline
from repro.engine.config import UNSET, ExecutionConfig, resolve_execution_config
from repro.stats.rng import RandomState

__all__ = ["run_uniform", "UniformSampler"]


def run_uniform(
    num_records: int,
    oracle: Callable[[int], bool],
    statistic: StatisticLike,
    budget: int,
    with_ci: bool = False,
    alpha: float = 0.05,
    num_bootstrap: int = 1000,
    rng: Optional[RandomState] = None,
    batch_size=UNSET,
    num_workers=UNSET,
    parallel_backend=UNSET,
    config: Optional[ExecutionConfig] = None,
) -> EstimateResult:
    """Estimate the aggregate by uniform sampling without replacement.

    ``config`` carries the execution knobs exactly as in
    :func:`repro.core.abae.run_abae`; the per-knob kwargs are deprecated
    aliases.  Results are identical for all settings.
    """
    config = resolve_execution_config(
        config,
        "run_uniform",
        stacklevel=3,
        batch_size=batch_size,
        num_workers=num_workers,
        parallel_backend=parallel_backend,
    )
    pipeline = uniform_pipeline(
        num_records=num_records,
        oracle=oracle,
        statistic=statistic,
        budget=budget,
        with_ci=with_ci,
        alpha=alpha,
        num_bootstrap=num_bootstrap,
        config=config,
    )
    return pipeline.run(rng)


class UniformSampler:
    """Facade mirroring :class:`repro.core.abae.ABae` for the baseline."""

    def __init__(
        self,
        num_records: int,
        oracle: Callable[[int], bool],
        statistic: StatisticLike,
        batch_size=UNSET,
        num_workers=UNSET,
        parallel_backend=UNSET,
        config: Optional[ExecutionConfig] = None,
    ):
        if num_records <= 0:
            raise ValueError(f"num_records must be positive, got {num_records}")
        self.config = resolve_execution_config(
            config,
            "UniformSampler",
            stacklevel=3,
            batch_size=batch_size,
            num_workers=num_workers,
            parallel_backend=parallel_backend,
        )
        self.num_records = num_records
        self.oracle = oracle
        self.statistic = statistic

    @property
    def batch_size(self):
        return self.config.batch_size

    @property
    def num_workers(self):
        return self.config.num_workers

    @property
    def parallel_backend(self):
        return self.config.parallel_backend

    def estimate(
        self,
        budget: int,
        with_ci: bool = False,
        alpha: float = 0.05,
        num_bootstrap: int = 1000,
        rng: Optional[RandomState] = None,
        seed: Optional[int] = None,
        batch_size=UNSET,
        num_workers=UNSET,
        config: Optional[ExecutionConfig] = None,
    ) -> EstimateResult:
        if rng is None:
            rng = RandomState(seed)
        run_config = resolve_execution_config(
            config,
            "UniformSampler.estimate",
            stacklevel=3,
            default=self.config,
            batch_size=batch_size,
            num_workers=num_workers,
        )
        return run_uniform(
            num_records=self.num_records,
            oracle=self.oracle,
            statistic=self.statistic,
            budget=budget,
            with_ci=with_ci,
            alpha=alpha,
            num_bootstrap=num_bootstrap,
            rng=rng,
            config=run_config,
        )

    def session(
        self,
        budget: int,
        with_ci: bool = False,
        alpha: float = 0.05,
        num_bootstrap: int = 1000,
        rng: Optional[RandomState] = None,
        seed: Optional[int] = None,
        config: Optional[ExecutionConfig] = None,
    ):
        """A streaming / resumable session; bit-identical to :meth:`estimate`."""
        if rng is None:
            rng = RandomState(seed)
        run_config = resolve_execution_config(
            config, "UniformSampler.session", default=self.config
        )
        pipeline = uniform_pipeline(
            num_records=self.num_records,
            oracle=self.oracle,
            statistic=self.statistic,
            budget=budget,
            with_ci=with_ci,
            alpha=alpha,
            num_bootstrap=num_bootstrap,
            config=run_config,
        )
        return pipeline.session(rng)
