"""Uniform-sampling baseline.

The only baseline applicable without precomputing predicate results
(Section 5.1): draw records uniformly at random, pay the oracle per draw,
and average the statistic over the draws that satisfy the predicate.  The
same bootstrap machinery provides its confidence intervals, so the Figure-5
comparison is apples to apples.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.core.abae import (
    _UNSET,
    StatisticLike,
    _normalize_statistic,
    draw_stratum_sample,
)
from repro.core.batching import DEFAULT_BATCH_SIZE
from repro.core.bootstrap import bootstrap_confidence_interval
from repro.core.parallel import (
    THREAD_BACKEND,
    parallelize_oracle,
    resolve_backend,
    resolve_num_workers,
)
from repro.core.estimators import estimate_all_strata
from repro.core.results import EstimateResult
from repro.stats.rng import RandomState

__all__ = ["run_uniform", "UniformSampler"]


def run_uniform(
    num_records: int,
    oracle: Callable[[int], bool],
    statistic: StatisticLike,
    budget: int,
    with_ci: bool = False,
    alpha: float = 0.05,
    num_bootstrap: int = 1000,
    rng: Optional[RandomState] = None,
    batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
    num_workers: Optional[int] = None,
    parallel_backend: str = THREAD_BACKEND,
) -> EstimateResult:
    """Estimate the aggregate by uniform sampling without replacement.

    ``batch_size`` and ``num_workers`` tune oracle batching and sharding
    exactly as in :func:`repro.core.abae.run_abae`; results are identical
    for all values.
    """
    if num_records <= 0:
        raise ValueError(f"num_records must be positive, got {num_records}")
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    rng = rng or RandomState(0)
    oracle = parallelize_oracle(oracle, num_workers, parallel_backend)
    statistic_fn = _normalize_statistic(statistic)

    sample = draw_stratum_sample(
        0,
        np.arange(num_records, dtype=np.int64),
        budget,
        oracle,
        statistic_fn,
        rng,
        batch_size=batch_size,
    )
    positives = sample.positive_values
    estimate = float(positives.mean()) if positives.size else 0.0

    ci = None
    if with_ci:
        ci = bootstrap_confidence_interval(
            [sample], alpha=alpha, num_bootstrap=num_bootstrap, rng=rng
        )

    return EstimateResult(
        estimate=estimate,
        ci=ci,
        oracle_calls=sample.num_draws,
        strata_estimates=estimate_all_strata([sample]),
        samples=[sample],
        method="uniform",
        details={"num_records": num_records},
    )


class UniformSampler:
    """Facade mirroring :class:`repro.core.abae.ABae` for the baseline."""

    def __init__(
        self,
        num_records: int,
        oracle: Callable[[int], bool],
        statistic: StatisticLike,
        batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
        num_workers: Optional[int] = None,
        parallel_backend: str = THREAD_BACKEND,
    ):
        if num_records <= 0:
            raise ValueError(f"num_records must be positive, got {num_records}")
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be a positive integer, got {batch_size}")
        resolve_num_workers(num_workers)  # fail fast on bad execution knobs
        resolve_backend(parallel_backend)
        self.num_records = num_records
        self.oracle = oracle
        self.statistic = statistic
        self.batch_size = batch_size
        self.num_workers = num_workers
        self.parallel_backend = parallel_backend

    def estimate(
        self,
        budget: int,
        with_ci: bool = False,
        alpha: float = 0.05,
        num_bootstrap: int = 1000,
        rng: Optional[RandomState] = None,
        seed: Optional[int] = None,
        batch_size: Optional[int] = _UNSET,
        num_workers: Optional[int] = _UNSET,
    ) -> EstimateResult:
        if rng is None:
            rng = RandomState(seed)
        effective_batch = self.batch_size if batch_size is _UNSET else batch_size
        effective_workers = self.num_workers if num_workers is _UNSET else num_workers
        return run_uniform(
            num_records=self.num_records,
            oracle=self.oracle,
            statistic=self.statistic,
            budget=budget,
            with_ci=with_ci,
            alpha=alpha,
            num_bootstrap=num_bootstrap,
            rng=rng,
            batch_size=effective_batch,
            num_workers=effective_workers,
            parallel_backend=self.parallel_backend,
        )
