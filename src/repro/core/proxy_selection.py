"""Proxy selection and proxy combination (Section 3.4).

Two capabilities:

* **Selection** — given several candidate proxies for the same predicate,
  estimate which stratification will yield the lowest MSE.  ABae reuses a
  uniform pilot sample: for each proxy it assigns the pilot records to that
  proxy's quantile strata, computes plug-in ``p_hat_k`` / ``sigma_hat_k``,
  and evaluates the Proposition-2 MSE formula.  The proxy with the lowest
  predicted MSE is selected; the ratio against the uniform-sampling MSE is
  the "expected performance gain".

* **Combination** — train a logistic regression on the pilot samples with
  each proxy's score as a feature and the oracle result as the target; the
  fitted model's predicted probabilities become a new, combined proxy.
  The regression effectively "ignores" uninformative proxies (their weights
  shrink toward zero), which Figure 12 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.abae import StatisticLike, _normalize_statistic
from repro.core.batching import label_records
from repro.core.allocation import (
    optimal_stratified_mse,
    uniform_sampling_mse,
)
from repro.core.stratification import Stratification
from repro.proxy.base import PrecomputedProxy, Proxy
from repro.proxy.logistic import LogisticRegression
from repro.stats.descriptive import safe_mean, safe_std
from repro.stats.rng import RandomState
from repro.stats.sampling import sample_without_replacement

__all__ = [
    "PilotSample",
    "ProxyScore",
    "draw_pilot_sample",
    "rank_proxies",
    "select_proxy",
    "combine_proxies",
]


@dataclass
class PilotSample:
    """A uniform pilot sample with oracle labels and statistic values."""

    indices: np.ndarray
    matches: np.ndarray
    values: np.ndarray

    @property
    def size(self) -> int:
        return int(self.indices.shape[0])


@dataclass
class ProxyScore:
    """Predicted quality of one candidate proxy."""

    proxy: Proxy
    predicted_mse: float
    predicted_uniform_mse: float

    @property
    def predicted_gain(self) -> float:
        """Expected speedup over uniform sampling (>= 1 means the proxy helps)."""
        if self.predicted_mse == 0:
            return float("inf")
        if not np.isfinite(self.predicted_mse) or not np.isfinite(
            self.predicted_uniform_mse
        ):
            return 1.0
        return self.predicted_uniform_mse / self.predicted_mse


def draw_pilot_sample(
    num_records: int,
    oracle: Callable[[int], bool],
    statistic: StatisticLike,
    pilot_budget: int,
    rng: Optional[RandomState] = None,
    batch_size: Optional[int] = None,
) -> PilotSample:
    """Draw a uniform pilot sample and label it with the batched engine."""
    if num_records <= 0:
        raise ValueError(f"num_records must be positive, got {num_records}")
    if pilot_budget <= 0:
        raise ValueError(f"pilot_budget must be positive, got {pilot_budget}")
    rng = rng or RandomState(0)
    statistic_fn = _normalize_statistic(statistic)
    indices = sample_without_replacement(
        np.arange(num_records, dtype=np.int64), pilot_budget, rng
    )
    matches, values = label_records(indices, oracle, statistic_fn, batch_size)
    return PilotSample(indices=indices, matches=matches, values=values)


def _pilot_estimates_for_proxy(
    proxy: Proxy, pilot: PilotSample, num_strata: int
) -> tuple:
    """Assign pilot records to the proxy's strata; return (p_hat, sigma_hat, mu_hat)."""
    stratification = Stratification.by_proxy_quantile(proxy, num_strata)
    assignment = stratification.stratum_of()
    pilot_strata = assignment[pilot.indices]
    p_hat = np.zeros(num_strata)
    sigma_hat = np.zeros(num_strata)
    mu_hat = np.zeros(num_strata)
    for k in range(num_strata):
        in_stratum = pilot_strata == k
        draws = int(in_stratum.sum())
        if draws == 0:
            continue
        matches_k = pilot.matches[in_stratum]
        p_hat[k] = float(matches_k.mean())
        positive_values = pilot.values[in_stratum][matches_k]
        mu_hat[k] = safe_mean(positive_values)
        sigma_hat[k] = safe_std(positive_values)
    return p_hat, sigma_hat, mu_hat


def rank_proxies(
    proxies: Sequence[Proxy],
    pilot: PilotSample,
    num_strata: int = 5,
    reference_budget: int = 1000,
) -> List[ProxyScore]:
    """Rank candidate proxies by predicted MSE (best first)."""
    if not proxies:
        raise ValueError("rank_proxies requires at least one candidate proxy")
    if pilot.size == 0:
        raise ValueError("the pilot sample is empty")
    scored: List[ProxyScore] = []
    for proxy in proxies:
        p_hat, sigma_hat, mu_hat = _pilot_estimates_for_proxy(proxy, pilot, num_strata)
        predicted = optimal_stratified_mse(p_hat, sigma_hat, reference_budget)
        uniform = uniform_sampling_mse(p_hat, sigma_hat, reference_budget, mu=mu_hat)
        scored.append(
            ProxyScore(
                proxy=proxy, predicted_mse=predicted, predicted_uniform_mse=uniform
            )
        )
    return sorted(scored, key=lambda s: s.predicted_mse)


def select_proxy(
    proxies: Sequence[Proxy],
    pilot: PilotSample,
    num_strata: int = 5,
) -> Proxy:
    """The proxy with the lowest predicted MSE (Section 3.4's selection rule)."""
    return rank_proxies(proxies, pilot, num_strata=num_strata)[0].proxy


def combine_proxies(
    proxies: Sequence[Proxy],
    pilot: PilotSample,
    name: str = "combined_proxy",
    learning_rate: float = 0.5,
    max_iter: int = 2000,
) -> PrecomputedProxy:
    """Combine proxies into one via logistic regression on the pilot sample.

    Features are each proxy's score for the pilot records; the target is the
    oracle's answer.  The combined proxy's scores over the whole dataset are
    the fitted model's predicted probabilities.
    """
    if not proxies:
        raise ValueError("combine_proxies requires at least one proxy")
    if pilot.size == 0:
        raise ValueError("the pilot sample is empty")
    lengths = {len(p) for p in proxies}
    if len(lengths) != 1:
        raise ValueError(
            f"all proxies must score the same number of records, got {sorted(lengths)}"
        )

    # Feature extraction touches only the pilot records, so lazy proxies
    # (CallableProxy, LogisticProxy) score just those rows here; the full
    # vectors are only materialized for the final combined prediction.
    features = np.column_stack([p.scores_batch(pilot.indices) for p in proxies])
    labels = pilot.matches.astype(float)

    model = LogisticRegression(learning_rate=learning_rate, max_iter=max_iter)
    model.fit(features, labels)
    all_scores = np.column_stack([p.scores() for p in proxies])
    combined = np.clip(model.predict_proba(all_scores), 0.0, 1.0)
    return PrecomputedProxy(combined, name=name)
