"""Adaptive extensions of ABae.

The paper's discussion (Section 4.6) points at two natural extensions that
it defers to future work; both are implemented here so they can be compared
against the two-stage algorithm empirically:

* :func:`run_abae_sequential` — a bandit-style sampler that re-estimates
  ``p_k`` and ``sigma_k`` after every batch of draws and always sends the
  next batch to the stratum whose marginal variance reduction is largest.
  The two-stage algorithm is the special case of one re-allocation point;
  the sequential variant can adapt earlier when the pilot estimates are
  poor, at the price of more estimator updates.

* :func:`run_abae_until_width` — an online-aggregation-style driver that
  keeps sampling (with the same allocation machinery) until the bootstrap
  confidence interval is narrower than a user-specified target width or the
  oracle budget runs out.  This supports the "how many samples to reach a
  target error" metric the paper reports alongside fixed-budget RMSE.

Both are expressed as pipelines over the unified execution engine: the
allocation loops live in
:class:`~repro.engine.policies.SequentialAllocationPolicy` and
:class:`~repro.engine.policies.UntilWidthAllocationPolicy`; this module
only keeps the validated, documented entry points (plus deprecated
execution-knob aliases).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

from repro.core.abae import StatisticLike
from repro.core.results import EstimateResult
from repro.engine.builders import sequential_pipeline, until_width_pipeline
from repro.engine.config import UNSET, ExecutionConfig, resolve_execution_config
from repro.engine.pipeline import StratumPool as _StratumPool  # noqa: F401 - compat
from repro.engine.policies import (  # noqa: F401 - compat re-export
    marginal_variance_reduction as _marginal_variance_reduction,
)
from repro.proxy.base import Proxy
from repro.stats.rng import RandomState

__all__ = ["run_abae_sequential", "run_abae_until_width"]


def run_abae_sequential(
    proxy: Union[Proxy, Sequence[float]],
    oracle: Callable[[int], bool],
    statistic: StatisticLike,
    budget: int,
    num_strata: int = 5,
    warmup_per_stratum: int = 20,
    batch_size: int = 50,
    with_ci: bool = False,
    alpha: float = 0.05,
    num_bootstrap: int = 1000,
    rng: Optional[RandomState] = None,
    oracle_batch_size=UNSET,
    num_workers=UNSET,
    parallel_backend=UNSET,
    config: Optional[ExecutionConfig] = None,
) -> EstimateResult:
    """Bandit-style ABae: re-allocate after every batch instead of once.

    Parameters mirror :func:`repro.core.abae.run_abae`; ``warmup_per_stratum``
    plays the role of a (much smaller) Stage 1, and ``batch_size`` controls
    how often the allocation is revisited.  Execution knobs travel in
    ``config``; the ``oracle_batch_size`` alias maps to
    ``config.batch_size`` (records per oracle invocation batch) and is
    named distinctly because ``batch_size`` here already means the
    re-allocation cadence.  Like every execution knob it never changes
    results.
    """
    config = resolve_execution_config(
        config,
        "run_abae_sequential",
        stacklevel=3,
        batch_size=oracle_batch_size,
        num_workers=num_workers,
        parallel_backend=parallel_backend,
    )
    pipeline = sequential_pipeline(
        proxy=proxy,
        oracle=oracle,
        statistic=statistic,
        budget=budget,
        num_strata=num_strata,
        warmup_per_stratum=warmup_per_stratum,
        reallocation_batch=batch_size,
        with_ci=with_ci,
        alpha=alpha,
        num_bootstrap=num_bootstrap,
        config=config,
    )
    return pipeline.run(rng)


def run_abae_until_width(
    proxy: Union[Proxy, Sequence[float]],
    oracle: Callable[[int], bool],
    statistic: StatisticLike,
    target_width: float,
    max_budget: int,
    num_strata: int = 5,
    batch_size: int = 200,
    alpha: float = 0.05,
    num_bootstrap: int = 300,
    rng: Optional[RandomState] = None,
    oracle_batch_size=UNSET,
    num_workers=UNSET,
    parallel_backend=UNSET,
    config: Optional[ExecutionConfig] = None,
) -> EstimateResult:
    """Sample until the bootstrap CI is narrower than ``target_width``.

    The driver runs the sequential sampler in batches and recomputes the
    bootstrap CI after each batch; it stops as soon as the CI width drops to
    the target or ``max_budget`` oracle calls have been spent.  The result's
    ``details["trace"]`` records the (budget, width) checkpoints, which is
    what a "samples needed to reach error X" comparison consumes.
    """
    config = resolve_execution_config(
        config,
        "run_abae_until_width",
        stacklevel=3,
        batch_size=oracle_batch_size,
        num_workers=num_workers,
        parallel_backend=parallel_backend,
    )
    pipeline = until_width_pipeline(
        proxy=proxy,
        oracle=oracle,
        statistic=statistic,
        target_width=target_width,
        max_budget=max_budget,
        num_strata=num_strata,
        reallocation_batch=batch_size,
        alpha=alpha,
        num_bootstrap=num_bootstrap,
        config=config,
    )
    return pipeline.run(rng)
