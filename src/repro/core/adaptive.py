"""Adaptive extensions of ABae.

The paper's discussion (Section 4.6) points at two natural extensions that
it defers to future work; both are implemented here so they can be compared
against the two-stage algorithm empirically:

* :func:`run_abae_sequential` — a bandit-style sampler that re-estimates
  ``p_k`` and ``sigma_k`` after every batch of draws and always sends the
  next batch to the stratum whose marginal variance reduction is largest.
  The two-stage algorithm is the special case of one re-allocation point;
  the sequential variant can adapt earlier when the pilot estimates are
  poor, at the price of more estimator updates.

* :func:`run_abae_until_width` — an online-aggregation-style driver that
  keeps sampling (with the same allocation machinery) until the bootstrap
  confidence interval is narrower than a user-specified target width or the
  oracle budget runs out.  This supports the "how many samples to reach a
  target error" metric the paper reports alongside fixed-budget RMSE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.core.abae import (
    StatisticLike,
    _normalize_statistic,
    draw_stratum_sample,
)
from repro.core.batching import DEFAULT_BATCH_SIZE
from repro.core.bootstrap import bootstrap_confidence_interval
from repro.core.parallel import THREAD_BACKEND, parallelize_oracle
from repro.core.estimators import combine_estimates, estimate_all_strata
from repro.core.results import EstimateResult
from repro.core.stratification import Stratification
from repro.core.types import StratumSample
from repro.proxy.base import PrecomputedProxy, Proxy
from repro.stats.rng import RandomState

__all__ = ["run_abae_sequential", "run_abae_until_width"]


def _as_proxy(proxy: Union[Proxy, Sequence[float]]) -> Proxy:
    if isinstance(proxy, Proxy):
        return proxy
    return PrecomputedProxy(np.asarray(proxy, dtype=float), name="scores")


class _StratumPool:
    """Array-native bookkeeping of not-yet-drawn records per stratum.

    The samplers used to keep a Python ``set`` of remaining indices per
    stratum and rebuild a candidate array from it before every draw —
    O(stratum) object churn per draw batch, with hash-order-dependent
    candidate ordering.  This pool keeps one boolean availability mask per
    stratum over the stratification's (sorted, read-only) index views:
    candidates are a single boolean gather, and marking records drawn is a
    ``searchsorted`` into the sorted stratum.  Candidate order is the
    stratum's ascending record order — deterministic by construction.
    """

    __slots__ = ("_strata", "_available", "remaining")

    def __init__(self, stratification: Stratification):
        self._strata = [
            stratification.stratum(k) for k in range(stratification.num_strata)
        ]
        self._available = [np.ones(s.size, dtype=bool) for s in self._strata]
        self.remaining = np.array([s.size for s in self._strata], dtype=np.int64)

    def candidates(self, k: int) -> np.ndarray:
        """Record indices of stratum ``k`` not yet drawn (ascending order)."""
        return self._strata[k][self._available[k]]

    def mark_drawn(self, k: int, indices: np.ndarray) -> None:
        if len(indices) == 0:
            return
        positions = np.searchsorted(self._strata[k], indices)
        self._available[k][positions] = False
        self.remaining[k] -= len(indices)


def _marginal_variance_reduction(samples: Sequence[StratumSample]) -> np.ndarray:
    """Priority score per stratum: estimated variance removed by one more draw.

    The estimator's variance has two per-stratum components:

    * the usual within-stratum term ``w_k^2 sigma_k^2 / (p_k n_k)`` from the
      uncertainty of ``mu_hat_k`` (the leading term of Proposition 3), and
    * a weight-uncertainty term from ``p_hat_k`` itself: the final estimate
      weighs ``mu_hat_k`` by ``p_hat_k / p_all``, so by the delta method a
      stratum whose mean differs from the overall mean contributes roughly
      ``((mu_k - mu_all) / p_all)^2 p_k (1 - p_k) / n_k``.

    One more draw divides each term's ``1/n_k`` by roughly ``(n_k + 1)/n_k``,
    so the marginal gain is the current contribution divided by ``n_k + 1``.
    Including the second term matters in practice: with a binary statistic a
    stratum can have ``sigma_hat_k = 0`` while its ``p_hat_k`` is still very
    uncertain, and a criterion based on ``sigma_hat_k`` alone would starve it
    (and inflate the final error).  Strata with no draws yet receive an
    exploration bonus equal to the largest known priority.
    """
    estimates = estimate_all_strata(samples)
    p = np.array([e.p_hat for e in estimates])
    sigma = np.array([e.sigma_hat for e in estimates])
    mu = np.array([e.mu_hat for e in estimates])
    draws = np.array([s.num_draws for s in samples], dtype=float)
    p_all = p.sum()
    if p_all == 0:
        # Nothing known yet anywhere: explore uniformly.
        return np.ones(len(samples))
    w = p / p_all
    mu_all = float(np.dot(w, mu))

    with np.errstate(divide="ignore", invalid="ignore"):
        within = np.where(p > 0, w**2 * sigma**2 / np.maximum(p, 1e-12), 0.0)
        weight_uncertainty = ((mu - mu_all) / p_all) ** 2 * p * (1.0 - p)
        contribution = (within + weight_uncertainty) / np.maximum(draws, 1.0)
        priority = contribution / np.maximum(draws + 1.0, 1.0)

    unexplored = draws == 0
    if unexplored.any():
        bonus = float(priority[~unexplored].max()) if (~unexplored).any() else 1.0
        priority[unexplored] = max(bonus, 1e-12)
    return priority


def run_abae_sequential(
    proxy: Union[Proxy, Sequence[float]],
    oracle: Callable[[int], bool],
    statistic: StatisticLike,
    budget: int,
    num_strata: int = 5,
    warmup_per_stratum: int = 20,
    batch_size: int = 50,
    with_ci: bool = False,
    alpha: float = 0.05,
    num_bootstrap: int = 1000,
    rng: Optional[RandomState] = None,
    oracle_batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
    num_workers: Optional[int] = None,
    parallel_backend: str = THREAD_BACKEND,
) -> EstimateResult:
    """Bandit-style ABae: re-allocate after every batch instead of once.

    Parameters mirror :func:`repro.core.abae.run_abae`; ``warmup_per_stratum``
    plays the role of a (much smaller) Stage 1, and ``batch_size`` controls
    how often the allocation is revisited.  ``oracle_batch_size`` is the
    execution-engine knob (records per oracle invocation batch) and is
    named distinctly because ``batch_size`` here already means the
    re-allocation cadence; like ``num_workers`` (worker-pool sharding) it
    never changes results.
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    if warmup_per_stratum < 1:
        raise ValueError(f"warmup_per_stratum must be positive, got {warmup_per_stratum}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    rng = rng or RandomState(0)
    oracle = parallelize_oracle(oracle, num_workers, parallel_backend)
    proxy_obj = _as_proxy(proxy)
    statistic_fn = _normalize_statistic(statistic)

    stratification = Stratification.by_proxy_quantile(proxy_obj, num_strata)
    num_strata = stratification.num_strata
    pool = _StratumPool(stratification)
    samples: List[StratumSample] = [StratumSample(stratum=k) for k in range(num_strata)]
    spent = 0

    def draw_from(k: int, count: int) -> None:
        nonlocal spent
        if count <= 0 or pool.remaining[k] == 0:
            return
        fresh = draw_stratum_sample(
            k, pool.candidates(k), count, oracle, statistic_fn, rng,
            batch_size=oracle_batch_size,
        )
        pool.mark_drawn(k, fresh.indices)
        samples[k] = samples[k].extend(fresh)
        spent += fresh.num_draws

    # ---- Warm-up: a small round-robin pass so every stratum has estimates --------
    warmup = min(warmup_per_stratum, budget // max(num_strata, 1))
    for k in range(num_strata):
        draw_from(k, warmup)

    # ---- Adaptive batches ----------------------------------------------------------
    while spent < budget:
        this_batch = min(batch_size, budget - spent)
        priorities = _marginal_variance_reduction(samples)
        # Mask out exhausted strata.
        priorities[pool.remaining == 0] = 0.0
        total_priority = priorities.sum()
        if total_priority == 0:
            break
        # Spread the batch proportionally to priority rather than sending it
        # all to the argmax, so one noisy priority estimate cannot distort
        # the allocation for a whole batch.
        weights = priorities / total_priority
        counts = np.floor(weights * this_batch).astype(int)
        counts[int(np.argmax(weights))] += this_batch - int(counts.sum())
        for k in range(num_strata):
            draw_from(k, int(counts[k]))

    estimates = estimate_all_strata(samples)
    estimate = combine_estimates(estimates)
    ci = None
    if with_ci:
        ci = bootstrap_confidence_interval(
            samples, alpha=alpha, num_bootstrap=num_bootstrap, rng=rng
        )
    return EstimateResult(
        estimate=estimate,
        ci=ci,
        oracle_calls=spent,
        strata_estimates=estimates,
        samples=samples,
        method="abae-sequential",
        details={
            "num_strata": num_strata,
            "warmup_per_stratum": warmup,
            "batch_size": batch_size,
            "stratum_sizes": stratification.sizes().tolist(),
        },
    )


@dataclass
class _WidthTrace:
    """One checkpoint of the until-width driver (budget spent, CI width)."""

    oracle_calls: int
    estimate: float
    ci_width: float


def run_abae_until_width(
    proxy: Union[Proxy, Sequence[float]],
    oracle: Callable[[int], bool],
    statistic: StatisticLike,
    target_width: float,
    max_budget: int,
    num_strata: int = 5,
    batch_size: int = 200,
    alpha: float = 0.05,
    num_bootstrap: int = 300,
    rng: Optional[RandomState] = None,
    oracle_batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
    num_workers: Optional[int] = None,
    parallel_backend: str = THREAD_BACKEND,
) -> EstimateResult:
    """Sample until the bootstrap CI is narrower than ``target_width``.

    The driver runs the sequential sampler in batches and recomputes the
    bootstrap CI after each batch; it stops as soon as the CI width drops to
    the target or ``max_budget`` oracle calls have been spent.  The result's
    ``details["trace"]`` records the (budget, width) checkpoints, which is
    what a "samples needed to reach error X" comparison consumes.
    """
    if target_width <= 0:
        raise ValueError(f"target_width must be positive, got {target_width}")
    if max_budget <= 0:
        raise ValueError(f"max_budget must be positive, got {max_budget}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    rng = rng or RandomState(0)
    oracle = parallelize_oracle(oracle, num_workers, parallel_backend)
    proxy_obj = _as_proxy(proxy)
    statistic_fn = _normalize_statistic(statistic)

    stratification = Stratification.by_proxy_quantile(proxy_obj, num_strata)
    num_strata = stratification.num_strata
    pool = _StratumPool(stratification)
    samples: List[StratumSample] = [StratumSample(stratum=k) for k in range(num_strata)]
    spent = 0
    trace: List[_WidthTrace] = []

    def draw_from(k: int, count: int) -> None:
        nonlocal spent
        if count <= 0 or pool.remaining[k] == 0:
            return
        fresh = draw_stratum_sample(
            k, pool.candidates(k), count, oracle, statistic_fn, rng,
            batch_size=oracle_batch_size,
        )
        pool.mark_drawn(k, fresh.indices)
        samples[k] = samples[k].extend(fresh)
        spent += fresh.num_draws

    # Initial round-robin so the first CI is defined.
    per_stratum = max(1, batch_size // num_strata)
    for k in range(num_strata):
        draw_from(k, min(per_stratum, max(0, max_budget - spent)))

    ci = bootstrap_confidence_interval(
        samples, alpha=alpha, num_bootstrap=num_bootstrap, rng=rng
    )
    estimate = combine_estimates(estimate_all_strata(samples))
    trace.append(_WidthTrace(spent, estimate, ci.width))

    while ci.width > target_width and spent < max_budget:
        priorities = _marginal_variance_reduction(samples)
        priorities[pool.remaining == 0] = 0.0
        total_priority = priorities.sum()
        if total_priority == 0:
            break
        # Spread the batch across strata proportionally to priority, so a
        # single noisy priority estimate cannot hog the whole batch.
        weights = priorities / total_priority
        batch = min(batch_size, max_budget - spent)
        counts = np.floor(weights * batch).astype(int)
        counts[int(np.argmax(weights))] += batch - int(counts.sum())
        for k in range(num_strata):
            draw_from(k, int(counts[k]))
        ci = bootstrap_confidence_interval(
            samples, alpha=alpha, num_bootstrap=num_bootstrap, rng=rng
        )
        estimate = combine_estimates(estimate_all_strata(samples))
        trace.append(_WidthTrace(spent, estimate, ci.width))

    estimates = estimate_all_strata(samples)
    return EstimateResult(
        estimate=combine_estimates(estimates),
        ci=ci,
        oracle_calls=spent,
        strata_estimates=estimates,
        samples=samples,
        method="abae-until-width",
        details={
            "target_width": target_width,
            "reached_target": ci.width <= target_width,
            "trace": [
                {"oracle_calls": t.oracle_calls, "estimate": t.estimate, "ci_width": t.ci_width}
                for t in trace
            ],
            "stratum_sizes": stratification.sizes().tolist(),
        },
    )
