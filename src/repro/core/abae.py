"""The ABae two-stage sampling algorithm (Algorithm 1).

This is the paper's primary contribution: accelerate ``AVG`` / ``SUM`` /
``COUNT`` queries with an expensive predicate by

1. stratifying records by proxy-score quantile,
2. spending a pilot fraction of the oracle budget uniformly across strata
   to estimate each stratum's positive rate ``p_k`` and statistic spread
   ``sigma_k``,
3. spending the rest proportional to ``sqrt(p_hat_k) * sigma_hat_k``
   (the plug-in optimal allocation of Proposition 1), and
4. combining per-stratum estimates into
   ``sum_k p_hat_k mu_hat_k / sum_k p_hat_k``,
   reusing samples from both stages (the lesion study shows reuse matters).

The public entry points are the :class:`ABae` facade (construct once, call
:meth:`ABae.estimate`) and the lower-level :func:`run_abae` function used by
the extensions, which exposes every knob explicitly.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.core.allocation import allocation_from_estimates
from repro.core.bootstrap import bootstrap_confidence_interval
from repro.core.estimators import combine_estimates, estimate_all_strata
from repro.core.results import EstimateResult
from repro.core.stratification import Stratification
from repro.core.types import SamplingBudget, StratumSample
from repro.proxy.base import Proxy, PrecomputedProxy
from repro.stats.rng import RandomState
from repro.stats.sampling import (
    proportional_integer_allocation,
    sample_without_replacement,
)

__all__ = ["ABae", "run_abae", "draw_stratum_sample", "bounded_allocation"]

StatisticLike = Union[Callable[[int], float], Sequence[float], np.ndarray]


def _normalize_statistic(statistic: StatisticLike) -> Callable[[int], float]:
    """Accept either a per-record callable or a precomputed value array."""
    if callable(statistic):
        return statistic
    values = np.asarray(statistic, dtype=float)

    def lookup(index: int) -> float:
        return float(values[index])

    return lookup


def draw_stratum_sample(
    stratum_index: int,
    candidate_indices: np.ndarray,
    n: int,
    oracle: Callable[[int], bool],
    statistic: Callable[[int], float],
    rng: RandomState,
) -> StratumSample:
    """Sample ``n`` records without replacement and label them with the oracle.

    The statistic is only evaluated for records that satisfy the predicate
    (its value is undefined otherwise — e.g. ``count_cars`` of a frame with
    no cars filtered by ``count_cars > 0``); non-matching draws carry NaN.
    """
    drawn = sample_without_replacement(candidate_indices, n, rng)
    matches = np.empty(drawn.shape[0], dtype=bool)
    values = np.full(drawn.shape[0], np.nan, dtype=float)
    for i, record_index in enumerate(drawn):
        is_match = bool(oracle(int(record_index)))
        matches[i] = is_match
        if is_match:
            values[i] = float(statistic(int(record_index)))
    return StratumSample(
        stratum=stratum_index, indices=drawn, matches=matches, values=values
    )


def bounded_allocation(
    weights: Sequence[float], total: int, capacities: Sequence[int]
) -> List[int]:
    """Proportional integer allocation that respects per-stratum capacities.

    Strata are finite; Stage 2 cannot draw more records from a stratum than
    remain unsampled.  We allocate proportionally, clip at each capacity,
    and redistribute the clipped budget among strata that still have room,
    repeating until either the budget is exhausted or no capacity remains.
    """
    caps = np.asarray(capacities, dtype=np.int64)
    w = np.asarray(weights, dtype=float)
    if caps.shape != w.shape:
        raise ValueError("weights and capacities must have the same shape")
    allocation = np.zeros_like(caps)
    remaining_budget = int(total)
    active = caps > 0
    while remaining_budget > 0 and active.any():
        active_weights = np.where(active, w, 0.0)
        if active_weights.sum() == 0:
            active_weights = active.astype(float)
        proposal = np.array(
            proportional_integer_allocation(active_weights, remaining_budget),
            dtype=np.int64,
        )
        headroom = caps - allocation
        granted = np.minimum(proposal, headroom)
        if granted.sum() == 0:
            # Weights point only at full strata; spread one sample at a time.
            for k in np.nonzero(headroom > 0)[0]:
                if remaining_budget == 0:
                    break
                allocation[k] += 1
                remaining_budget -= 1
            break
        allocation += granted
        remaining_budget -= int(granted.sum())
        active = (caps - allocation) > 0
    return allocation.tolist()


def run_abae(
    proxy: Union[Proxy, Sequence[float]],
    oracle: Callable[[int], bool],
    statistic: StatisticLike,
    budget: int,
    num_strata: int = 5,
    stage1_fraction: float = 0.5,
    reuse_samples: bool = True,
    stratification: Optional[Stratification] = None,
    with_ci: bool = False,
    alpha: float = 0.05,
    num_bootstrap: int = 1000,
    rng: Optional[RandomState] = None,
) -> EstimateResult:
    """Execute Algorithm 1 once and return the estimate (optionally with a CI).

    Parameters
    ----------
    proxy:
        A :class:`~repro.proxy.base.Proxy` or a raw score vector in [0, 1].
    oracle:
        The expensive predicate, ``record_index -> bool``.  Each draw calls
        it exactly once per distinct record.
    statistic:
        The expression aggregated over (callable or precomputed array).  It
        is only evaluated for records satisfying the predicate.
    budget:
        Total number of oracle invocations allowed (the ORACLE LIMIT).
    num_strata:
        K, the number of proxy-quantile strata.
    stage1_fraction:
        C, the fraction of the budget spent in the pilot stage.
    reuse_samples:
        Whether Stage-1 samples are folded into the final estimates (the
        paper's default; turning this off reproduces the lesion study).
    stratification:
        Pre-built stratification to use instead of proxy quantiles (used by
        ablations); when given, ``proxy`` is only used for its length check.
    with_ci / alpha / num_bootstrap:
        Bootstrap confidence-interval controls (Algorithm 2).
    rng:
        Source of randomness; defaults to a fresh seed-0 generator.
    """
    rng = rng or RandomState(0)
    if isinstance(proxy, Proxy):
        proxy_obj = proxy
    else:
        proxy_obj = PrecomputedProxy(np.asarray(proxy, dtype=float), name="scores")
    statistic_fn = _normalize_statistic(statistic)

    if stratification is None:
        stratification = Stratification.by_proxy_quantile(proxy_obj, num_strata)
    elif stratification.num_records != len(proxy_obj):
        raise ValueError(
            "provided stratification covers a different number of records "
            f"({stratification.num_records}) than the proxy ({len(proxy_obj)})"
        )
    num_strata = stratification.num_strata

    split = SamplingBudget.from_fraction(budget, num_strata, stage1_fraction)

    # ---- Stage 1: pilot sampling, N1 draws from every stratum -------------------
    stage1_samples: List[StratumSample] = []
    for k in range(num_strata):
        stage1_samples.append(
            draw_stratum_sample(
                k,
                stratification.stratum(k),
                split.stage1_per_stratum,
                oracle,
                statistic_fn,
                rng,
            )
        )

    stage1_estimates = estimate_all_strata(stage1_samples)
    allocation_weights = allocation_from_estimates(stage1_estimates)

    # ---- Stage 2: allocate the remaining budget by the plug-in optimum ----------
    remaining_capacity = [
        stratification.stratum(k).size - stage1_samples[k].num_draws
        for k in range(num_strata)
    ]
    stage2_counts = bounded_allocation(
        allocation_weights, split.stage2_total, remaining_capacity
    )

    stage2_samples: List[StratumSample] = []
    for k in range(num_strata):
        already_drawn = set(stage1_samples[k].indices.tolist())
        fresh_candidates = np.array(
            [i for i in stratification.stratum(k) if i not in already_drawn],
            dtype=np.int64,
        )
        stage2_samples.append(
            draw_stratum_sample(
                k, fresh_candidates, stage2_counts[k], oracle, statistic_fn, rng
            )
        )

    # ---- Combine -----------------------------------------------------------------
    if reuse_samples:
        final_samples = [
            stage1_samples[k].extend(stage2_samples[k]) for k in range(num_strata)
        ]
    else:
        final_samples = stage2_samples
    final_estimates = estimate_all_strata(final_samples)
    estimate = combine_estimates(final_estimates)

    oracle_calls = sum(s.num_draws for s in stage1_samples) + sum(
        s.num_draws for s in stage2_samples
    )

    ci = None
    if with_ci:
        ci = bootstrap_confidence_interval(
            final_samples, alpha=alpha, num_bootstrap=num_bootstrap, rng=rng
        )

    return EstimateResult(
        estimate=estimate,
        ci=ci,
        oracle_calls=oracle_calls,
        strata_estimates=final_estimates,
        samples=final_samples,
        method="abae" if reuse_samples else "abae-no-reuse",
        details={
            "num_strata": num_strata,
            "stage1_per_stratum": split.stage1_per_stratum,
            "stage2_total": split.stage2_total,
            "stage2_counts": list(stage2_counts),
            "allocation_weights": allocation_weights.tolist(),
            "stage1_estimates": stage1_estimates,
            "stratum_sizes": stratification.sizes().tolist(),
        },
    )


class ABae:
    """User-facing facade around :func:`run_abae`.

    Construct it once with the dataset's proxy, oracle and statistic; call
    :meth:`estimate` per query/budget.  The facade exists so examples and
    the query executor read naturally::

        sampler = ABae(proxy=proxy, oracle=oracle, statistic=views)
        result = sampler.estimate(budget=10_000, with_ci=True)
    """

    def __init__(
        self,
        proxy: Union[Proxy, Sequence[float]],
        oracle: Callable[[int], bool],
        statistic: StatisticLike,
        num_strata: int = 5,
        stage1_fraction: float = 0.5,
        reuse_samples: bool = True,
    ):
        if num_strata <= 0:
            raise ValueError(f"num_strata must be positive, got {num_strata}")
        if not 0.0 < stage1_fraction < 1.0:
            raise ValueError(
                f"stage1_fraction must be strictly between 0 and 1, got {stage1_fraction}"
            )
        self.proxy = proxy
        self.oracle = oracle
        self.statistic = statistic
        self.num_strata = num_strata
        self.stage1_fraction = stage1_fraction
        self.reuse_samples = reuse_samples

    def estimate(
        self,
        budget: int,
        with_ci: bool = False,
        alpha: float = 0.05,
        num_bootstrap: int = 1000,
        rng: Optional[RandomState] = None,
        seed: Optional[int] = None,
    ) -> EstimateResult:
        """Run the two-stage sampler with the configured parameters."""
        if rng is None:
            rng = RandomState(seed)
        return run_abae(
            proxy=self.proxy,
            oracle=self.oracle,
            statistic=self.statistic,
            budget=budget,
            num_strata=self.num_strata,
            stage1_fraction=self.stage1_fraction,
            reuse_samples=self.reuse_samples,
            with_ci=with_ci,
            alpha=alpha,
            num_bootstrap=num_bootstrap,
            rng=rng,
        )
