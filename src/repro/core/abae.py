"""The ABae two-stage sampling algorithm (Algorithm 1).

This is the paper's primary contribution: accelerate ``AVG`` / ``SUM`` /
``COUNT`` queries with an expensive predicate by

1. stratifying records by proxy-score quantile,
2. spending a pilot fraction of the oracle budget uniformly across strata
   to estimate each stratum's positive rate ``p_k`` and statistic spread
   ``sigma_k``,
3. spending the rest proportional to ``sqrt(p_hat_k) * sigma_hat_k``
   (the plug-in optimal allocation of Proposition 1), and
4. combining per-stratum estimates into
   ``sum_k p_hat_k mu_hat_k / sum_k p_hat_k``,
   reusing samples from both stages (the lesion study shows reuse matters).

The public entry points are the :class:`ABae` facade (construct once, call
:meth:`ABae.estimate`) and the lower-level :func:`run_abae` function used by
the extensions.  Both are thin wrappers over the unified execution engine
(:mod:`repro.engine`): the algorithm itself is the
:class:`~repro.engine.policies.TwoStageAllocationPolicy` /
:class:`~repro.engine.policies.TwoStageEstimator` pair plugged into the
shared :class:`~repro.engine.pipeline.SamplingPipeline`.  Execution knobs
travel in an :class:`~repro.engine.config.ExecutionConfig`; the historical
``batch_size`` / ``num_workers`` / ``parallel_backend`` kwargs keep
working as deprecated aliases.  For streaming or resumable execution, use
:func:`repro.engine.two_stage_pipeline` and drive the session directly.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.core.allocation import bounded_allocation
from repro.core.results import EstimateResult
from repro.core.stratification import Stratification
from repro.engine.builders import two_stage_pipeline
from repro.engine.config import (
    UNSET,
    ExecutionConfig,
    resolve_execution_config,
)
from repro.engine.pipeline import (
    StatisticLike,
    _ArrayStatistic,
    draw_stratum_sample,
    normalize_statistic,
)
from repro.proxy.base import PrecomputedProxy, Proxy
from repro.stats.rng import RandomState

__all__ = ["ABae", "run_abae", "draw_stratum_sample", "bounded_allocation"]

# Backward-compatible aliases: these moved into the engine, but the
# extensions (and downstream code) historically imported them from here.
_normalize_statistic = normalize_statistic
_ArrayStatistic = _ArrayStatistic  # noqa: PLW0127 - re-exported name

# Sentinel distinguishing "argument omitted" from an explicit None (which
# legitimately means "whole-draw batches") in ABae.estimate.
_UNSET = UNSET


def run_abae(
    proxy: Union[Proxy, Sequence[float]],
    oracle: Callable[[int], bool],
    statistic: StatisticLike,
    budget: int,
    num_strata: int = 5,
    stage1_fraction: float = 0.5,
    reuse_samples: bool = True,
    stratification: Optional[Stratification] = None,
    with_ci: bool = False,
    alpha: float = 0.05,
    num_bootstrap: int = 1000,
    rng: Optional[RandomState] = None,
    batch_size=UNSET,
    num_workers=UNSET,
    parallel_backend=UNSET,
    config: Optional[ExecutionConfig] = None,
) -> EstimateResult:
    """Execute Algorithm 1 once and return the estimate (optionally with a CI).

    Parameters
    ----------
    proxy:
        A :class:`~repro.proxy.base.Proxy` or a raw score vector in [0, 1].
    oracle:
        The expensive predicate, ``record_index -> bool``.  Each draw calls
        it exactly once per distinct record.
    statistic:
        The expression aggregated over (callable or precomputed array).  It
        is only evaluated for records satisfying the predicate.
    budget:
        Total number of oracle invocations allowed (the ORACLE LIMIT).
    num_strata:
        K, the number of proxy-quantile strata.
    stage1_fraction:
        C, the fraction of the budget spent in the pilot stage.
    reuse_samples:
        Whether Stage-1 samples are folded into the final estimates (the
        paper's default; turning this off reproduces the lesion study).
    stratification:
        Pre-built stratification to use instead of proxy quantiles (used by
        ablations); when given, ``proxy`` is only used for its length check.
    with_ci / alpha / num_bootstrap:
        Bootstrap confidence-interval controls (Algorithm 2).
    rng:
        Source of randomness; defaults to a fresh generator seeded by
        ``config.seed`` (historically seed 0).
    config:
        The :class:`~repro.engine.config.ExecutionConfig` with every
        physical execution knob.  Purely performance: results and oracle
        accounting are bit-identical for every setting.
    batch_size / num_workers / parallel_backend:
        Deprecated aliases for the corresponding ``config`` fields; kept
        working with a :class:`DeprecationWarning`.
    """
    config = resolve_execution_config(
        config,
        "run_abae",
        stacklevel=3,
        batch_size=batch_size,
        num_workers=num_workers,
        parallel_backend=parallel_backend,
    )
    pipeline = two_stage_pipeline(
        proxy=proxy,
        oracle=oracle,
        statistic=statistic,
        budget=budget,
        num_strata=num_strata,
        stage1_fraction=stage1_fraction,
        reuse_samples=reuse_samples,
        stratification=stratification,
        with_ci=with_ci,
        alpha=alpha,
        num_bootstrap=num_bootstrap,
        config=config,
    )
    return pipeline.run(rng)


class ABae:
    """User-facing facade around :func:`run_abae`.

    Construct it once with the dataset's proxy, oracle and statistic; call
    :meth:`estimate` per query/budget.  The facade exists so examples and
    the query executor read naturally::

        sampler = ABae(proxy=proxy, oracle=oracle, statistic=views)
        result = sampler.estimate(budget=10_000, with_ci=True)

    Execution knobs live in ``self.config`` (an
    :class:`~repro.engine.config.ExecutionConfig`); the historical
    per-knob constructor arguments remain as deprecated aliases.
    """

    def __init__(
        self,
        proxy: Union[Proxy, Sequence[float]],
        oracle: Callable[[int], bool],
        statistic: StatisticLike,
        num_strata: int = 5,
        stage1_fraction: float = 0.5,
        reuse_samples: bool = True,
        batch_size=UNSET,
        num_workers=UNSET,
        parallel_backend=UNSET,
        config: Optional[ExecutionConfig] = None,
    ):
        if num_strata <= 0:
            raise ValueError(f"num_strata must be positive, got {num_strata}")
        if not 0.0 < stage1_fraction < 1.0:
            raise ValueError(
                f"stage1_fraction must be strictly between 0 and 1, got {stage1_fraction}"
            )
        # Eager shared-path validation of every execution knob (the config
        # constructor raises ExecutionConfigError, a ValueError).
        self.config = resolve_execution_config(
            config,
            "ABae",
            stacklevel=3,
            batch_size=batch_size,
            num_workers=num_workers,
            parallel_backend=parallel_backend,
        )
        self.proxy = proxy
        self.oracle = oracle
        self.statistic = statistic
        self.num_strata = num_strata
        self.stage1_fraction = stage1_fraction
        self.reuse_samples = reuse_samples
        # Proxy-quantile stratification is deterministic in (proxy, K), so
        # the facade builds it once and reuses it across estimate() calls —
        # repeated queries skip the O(n log n) sort of the score vector.
        # The cache is keyed on (proxy identity, num_strata) so reassigning
        # either public attribute transparently rebuilds it; mutating a score
        # array in place is not detected.
        self._stratification: Optional[Stratification] = None
        self._stratification_key = None

    # Legacy read access: the knobs now live on the config.
    @property
    def batch_size(self):
        return self.config.batch_size

    @property
    def num_workers(self):
        return self.config.num_workers

    @property
    def parallel_backend(self):
        return self.config.parallel_backend

    def estimate(
        self,
        budget: int,
        with_ci: bool = False,
        alpha: float = 0.05,
        num_bootstrap: int = 1000,
        rng: Optional[RandomState] = None,
        seed: Optional[int] = None,
        batch_size=UNSET,
        num_workers=UNSET,
        config: Optional[ExecutionConfig] = None,
    ) -> EstimateResult:
        """Run the two-stage sampler with the configured parameters.

        ``config`` replaces the instance-level execution config for this
        run when given.  The deprecated ``batch_size`` / ``num_workers``
        aliases override the corresponding field for this run (including
        an explicit ``None``, which means whole-draw batches / serial
        execution respectively).
        """
        if rng is None:
            rng = RandomState(seed)
        run_config = resolve_execution_config(
            config,
            "ABae.estimate",
            stacklevel=3,
            default=self.config,
            batch_size=batch_size,
            num_workers=num_workers,
        )
        cache_valid = (
            self._stratification is not None
            and self._stratification_key is not None
            and self._stratification_key[0] is self.proxy
            and self._stratification_key[1] == self.num_strata
        )
        if not cache_valid:
            proxy_obj = (
                self.proxy
                if isinstance(self.proxy, Proxy)
                else PrecomputedProxy(np.asarray(self.proxy, dtype=float), name="scores")
            )
            self._stratification = Stratification.by_proxy_quantile(
                proxy_obj, self.num_strata
            )
            self._stratification_key = (self.proxy, self.num_strata)
        return run_abae(
            proxy=self.proxy,
            oracle=self.oracle,
            statistic=self.statistic,
            budget=budget,
            num_strata=self.num_strata,
            stage1_fraction=self.stage1_fraction,
            reuse_samples=self.reuse_samples,
            stratification=self._stratification,
            with_ci=with_ci,
            alpha=alpha,
            num_bootstrap=num_bootstrap,
            rng=rng,
            config=run_config,
        )

    def session(
        self,
        budget: int,
        with_ci: bool = False,
        alpha: float = 0.05,
        num_bootstrap: int = 1000,
        rng: Optional[RandomState] = None,
        seed: Optional[int] = None,
        config: Optional[ExecutionConfig] = None,
    ):
        """A streaming / resumable session for one estimate.

        Bit-identical to :meth:`estimate` when stepped to completion:
        ``session.run()`` and ``estimate()`` perform the same draws against
        the same random stream.  See
        :class:`~repro.engine.session.SamplingSession`.
        """
        if rng is None:
            rng = RandomState(seed)
        run_config = resolve_execution_config(
            config, "ABae.session", default=self.config
        )
        pipeline = two_stage_pipeline(
            proxy=self.proxy,
            oracle=self.oracle,
            statistic=self.statistic,
            budget=budget,
            num_strata=self.num_strata,
            stage1_fraction=self.stage1_fraction,
            reuse_samples=self.reuse_samples,
            with_ci=with_ci,
            alpha=alpha,
            num_bootstrap=num_bootstrap,
            config=run_config,
        )
        return pipeline.session(rng)
