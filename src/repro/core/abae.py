"""The ABae two-stage sampling algorithm (Algorithm 1).

This is the paper's primary contribution: accelerate ``AVG`` / ``SUM`` /
``COUNT`` queries with an expensive predicate by

1. stratifying records by proxy-score quantile,
2. spending a pilot fraction of the oracle budget uniformly across strata
   to estimate each stratum's positive rate ``p_k`` and statistic spread
   ``sigma_k``,
3. spending the rest proportional to ``sqrt(p_hat_k) * sigma_hat_k``
   (the plug-in optimal allocation of Proposition 1), and
4. combining per-stratum estimates into
   ``sum_k p_hat_k mu_hat_k / sum_k p_hat_k``,
   reusing samples from both stages (the lesion study shows reuse matters).

The public entry points are the :class:`ABae` facade (construct once, call
:meth:`ABae.estimate`) and the lower-level :func:`run_abae` function used by
the extensions, which exposes every knob explicitly.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.core.allocation import allocation_from_estimates
from repro.core.batching import DEFAULT_BATCH_SIZE, label_records
from repro.core.parallel import (
    THREAD_BACKEND,
    parallelize_oracle,
    resolve_backend,
    resolve_num_workers,
)
from repro.core.bootstrap import bootstrap_confidence_interval
from repro.core.estimators import combine_estimates, estimate_all_strata
from repro.core.results import EstimateResult
from repro.core.stratification import Stratification
from repro.core.types import SamplingBudget, StratumSample
from repro.proxy.base import Proxy, PrecomputedProxy
from repro.stats.rng import RandomState
from repro.stats.sampling import (
    proportional_integer_allocation,
    sample_without_replacement,
)

__all__ = ["ABae", "run_abae", "draw_stratum_sample", "bounded_allocation"]

StatisticLike = Union[Callable[[int], float], Sequence[float], np.ndarray]

# Sentinel distinguishing "argument omitted" from an explicit None (which
# legitimately means "whole-draw batches") in ABae.estimate.
_UNSET = object()


class _ArrayStatistic:
    """Adapter giving a precomputed value array both call styles.

    Calling it with one index mirrors the legacy scalar interface; the
    ``batch`` method gathers many records with a single fancy index, which
    is what :func:`repro.core.batching.label_records` consumes.
    """

    __slots__ = ("_values",)

    def __init__(self, values: np.ndarray):
        self._values = values

    @property
    def values(self) -> np.ndarray:
        """The backing value column (used by the batched gather fast path)."""
        return self._values

    def __call__(self, record_index: int) -> float:
        return float(self._values[record_index])

    def batch(self, record_indices) -> np.ndarray:
        return self._values[np.asarray(record_indices, dtype=np.int64)]


def _normalize_statistic(statistic: StatisticLike) -> Callable[[int], float]:
    """Accept either a per-record callable or a precomputed value array.

    Arrays come back wrapped in :class:`_ArrayStatistic` so the batched
    execution engine can gather values without a Python-level loop;
    callables pass through unchanged (keeping any ``batch`` method they
    already expose, e.g. :class:`repro.oracle.base.StatisticOracle`).
    """
    if callable(statistic):
        return statistic
    return _ArrayStatistic(np.asarray(statistic, dtype=float))


def draw_stratum_sample(
    stratum_index: int,
    candidate_indices: np.ndarray,
    n: int,
    oracle: Callable[[int], bool],
    statistic: Callable[[int], float],
    rng: RandomState,
    batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
) -> StratumSample:
    """Sample ``n`` records without replacement and label them with the oracle.

    The statistic is only evaluated for records that satisfy the predicate
    (its value is undefined otherwise — e.g. ``count_cars`` of a frame with
    no cars filtered by ``count_cars > 0``); non-matching draws carry NaN.

    ``batch_size`` controls how many records each oracle invocation labels
    (``None`` = the whole draw in one batch, ``1`` = the strictly sequential
    legacy path); every setting yields bit-identical samples and oracle
    accounting because record selection happens before labeling and never
    shares the random stream with it.  Worker-pool sharding is the
    *caller's* concern: the samplers wrap the oracle once with
    :func:`repro.core.parallel.parallelize_oracle` before drawing, so the
    sharding applies to every draw without per-call wrapping here.
    """
    drawn = sample_without_replacement(candidate_indices, n, rng)
    matches, values = label_records(drawn, oracle, statistic, batch_size)
    return StratumSample(
        stratum=stratum_index, indices=drawn, matches=matches, values=values
    )


def bounded_allocation(
    weights: Sequence[float], total: int, capacities: Sequence[int]
) -> List[int]:
    """Proportional integer allocation that respects per-stratum capacities.

    Strata are finite; Stage 2 cannot draw more records from a stratum than
    remain unsampled.  We allocate proportionally, clip at each capacity,
    and redistribute the clipped budget among strata that still have room,
    repeating until either the budget is exhausted or no capacity remains.
    """
    caps = np.asarray(capacities, dtype=np.int64)
    w = np.asarray(weights, dtype=float)
    if caps.shape != w.shape:
        raise ValueError("weights and capacities must have the same shape")
    allocation = np.zeros_like(caps)
    remaining_budget = int(total)
    active = caps > 0
    while remaining_budget > 0 and active.any():
        active_weights = np.where(active, w, 0.0)
        if active_weights.sum() == 0:
            active_weights = active.astype(float)
        proposal = np.array(
            proportional_integer_allocation(active_weights, remaining_budget),
            dtype=np.int64,
        )
        headroom = caps - allocation
        granted = np.minimum(proposal, headroom)
        if granted.sum() == 0:
            # Weights point only at full strata; spread one sample at a time.
            for k in np.nonzero(headroom > 0)[0]:
                if remaining_budget == 0:
                    break
                allocation[k] += 1
                remaining_budget -= 1
            break
        allocation += granted
        remaining_budget -= int(granted.sum())
        active = (caps - allocation) > 0
    return allocation.tolist()


def run_abae(
    proxy: Union[Proxy, Sequence[float]],
    oracle: Callable[[int], bool],
    statistic: StatisticLike,
    budget: int,
    num_strata: int = 5,
    stage1_fraction: float = 0.5,
    reuse_samples: bool = True,
    stratification: Optional[Stratification] = None,
    with_ci: bool = False,
    alpha: float = 0.05,
    num_bootstrap: int = 1000,
    rng: Optional[RandomState] = None,
    batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
    num_workers: Optional[int] = None,
    parallel_backend: str = THREAD_BACKEND,
) -> EstimateResult:
    """Execute Algorithm 1 once and return the estimate (optionally with a CI).

    Parameters
    ----------
    proxy:
        A :class:`~repro.proxy.base.Proxy` or a raw score vector in [0, 1].
    oracle:
        The expensive predicate, ``record_index -> bool``.  Each draw calls
        it exactly once per distinct record.
    statistic:
        The expression aggregated over (callable or precomputed array).  It
        is only evaluated for records satisfying the predicate.
    budget:
        Total number of oracle invocations allowed (the ORACLE LIMIT).
    num_strata:
        K, the number of proxy-quantile strata.
    stage1_fraction:
        C, the fraction of the budget spent in the pilot stage.
    reuse_samples:
        Whether Stage-1 samples are folded into the final estimates (the
        paper's default; turning this off reproduces the lesion study).
    stratification:
        Pre-built stratification to use instead of proxy quantiles (used by
        ablations); when given, ``proxy`` is only used for its length check.
    with_ci / alpha / num_bootstrap:
        Bootstrap confidence-interval controls (Algorithm 2).
    rng:
        Source of randomness; defaults to a fresh seed-0 generator.
    batch_size:
        Records per oracle invocation batch (``None`` = whole per-stratum
        draws at once, ``1`` = strictly per-record).  Purely a performance
        knob: results and oracle call counts are identical for every value.
    num_workers / parallel_backend:
        Shard each oracle batch across this many workers (threads or
        processes; see :mod:`repro.core.parallel`).  Like ``batch_size``,
        purely a performance knob — results are bit-identical for every
        worker count.
    """
    rng = rng or RandomState(0)
    oracle = parallelize_oracle(oracle, num_workers, parallel_backend)
    if isinstance(proxy, Proxy):
        proxy_obj = proxy
    else:
        proxy_obj = PrecomputedProxy(np.asarray(proxy, dtype=float), name="scores")
    statistic_fn = _normalize_statistic(statistic)

    if stratification is None:
        stratification = Stratification.by_proxy_quantile(proxy_obj, num_strata)
    elif stratification.num_records != len(proxy_obj):
        raise ValueError(
            "provided stratification covers a different number of records "
            f"({stratification.num_records}) than the proxy ({len(proxy_obj)})"
        )
    num_strata = stratification.num_strata

    split = SamplingBudget.from_fraction(budget, num_strata, stage1_fraction)

    # ---- Stage 1: pilot sampling, N1 draws from every stratum -------------------
    stage1_samples: List[StratumSample] = []
    for k in range(num_strata):
        stage1_samples.append(
            draw_stratum_sample(
                k,
                stratification.stratum(k),
                split.stage1_per_stratum,
                oracle,
                statistic_fn,
                rng,
                batch_size=batch_size,
            )
        )

    stage1_estimates = estimate_all_strata(stage1_samples)
    allocation_weights = allocation_from_estimates(stage1_estimates)

    # ---- Stage 2: allocate the remaining budget by the plug-in optimum ----------
    remaining_capacity = [
        stratification.stratum(k).size - stage1_samples[k].num_draws
        for k in range(num_strata)
    ]
    stage2_counts = bounded_allocation(
        allocation_weights, split.stage2_total, remaining_capacity
    )

    # A dataset-length membership mask is O(n + draws) per stratum, versus
    # np.isin's sort-based O((n + draws) log draws); with strata frozen as
    # read-only views this is the only per-run allocation on this path.
    drawn_mask = np.zeros(stratification.num_records, dtype=bool)
    stage2_samples: List[StratumSample] = []
    for k in range(num_strata):
        stratum = stratification.stratum(k)
        drawn_mask[stage1_samples[k].indices] = True
        fresh_candidates = stratum[~drawn_mask[stratum]]
        stage2_samples.append(
            draw_stratum_sample(
                k,
                fresh_candidates,
                stage2_counts[k],
                oracle,
                statistic_fn,
                rng,
                batch_size=batch_size,
            )
        )

    # ---- Combine -----------------------------------------------------------------
    if reuse_samples:
        final_samples = [
            stage1_samples[k].extend(stage2_samples[k]) for k in range(num_strata)
        ]
    else:
        final_samples = stage2_samples
    final_estimates = estimate_all_strata(final_samples)
    estimate = combine_estimates(final_estimates)

    oracle_calls = sum(s.num_draws for s in stage1_samples) + sum(
        s.num_draws for s in stage2_samples
    )

    ci = None
    if with_ci:
        ci = bootstrap_confidence_interval(
            final_samples, alpha=alpha, num_bootstrap=num_bootstrap, rng=rng
        )

    return EstimateResult(
        estimate=estimate,
        ci=ci,
        oracle_calls=oracle_calls,
        strata_estimates=final_estimates,
        samples=final_samples,
        method="abae" if reuse_samples else "abae-no-reuse",
        details={
            "num_strata": num_strata,
            "stage1_per_stratum": split.stage1_per_stratum,
            "stage2_total": split.stage2_total,
            "stage2_counts": list(stage2_counts),
            "allocation_weights": allocation_weights.tolist(),
            "stage1_estimates": stage1_estimates,
            "stratum_sizes": stratification.sizes().tolist(),
        },
    )


class ABae:
    """User-facing facade around :func:`run_abae`.

    Construct it once with the dataset's proxy, oracle and statistic; call
    :meth:`estimate` per query/budget.  The facade exists so examples and
    the query executor read naturally::

        sampler = ABae(proxy=proxy, oracle=oracle, statistic=views)
        result = sampler.estimate(budget=10_000, with_ci=True)
    """

    def __init__(
        self,
        proxy: Union[Proxy, Sequence[float]],
        oracle: Callable[[int], bool],
        statistic: StatisticLike,
        num_strata: int = 5,
        stage1_fraction: float = 0.5,
        reuse_samples: bool = True,
        batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
        num_workers: Optional[int] = None,
        parallel_backend: str = THREAD_BACKEND,
    ):
        if num_strata <= 0:
            raise ValueError(f"num_strata must be positive, got {num_strata}")
        if not 0.0 < stage1_fraction < 1.0:
            raise ValueError(
                f"stage1_fraction must be strictly between 0 and 1, got {stage1_fraction}"
            )
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be a positive integer, got {batch_size}")
        resolve_num_workers(num_workers)  # fail fast on bad execution knobs
        resolve_backend(parallel_backend)
        self.proxy = proxy
        self.oracle = oracle
        self.statistic = statistic
        self.num_strata = num_strata
        self.stage1_fraction = stage1_fraction
        self.reuse_samples = reuse_samples
        self.batch_size = batch_size
        self.num_workers = num_workers
        self.parallel_backend = parallel_backend
        # Proxy-quantile stratification is deterministic in (proxy, K), so
        # the facade builds it once and reuses it across estimate() calls —
        # repeated queries skip the O(n log n) sort of the score vector.
        # The cache is keyed on (proxy identity, num_strata) so reassigning
        # either public attribute transparently rebuilds it; mutating a score
        # array in place is not detected.
        self._stratification: Optional[Stratification] = None
        self._stratification_key = None

    def estimate(
        self,
        budget: int,
        with_ci: bool = False,
        alpha: float = 0.05,
        num_bootstrap: int = 1000,
        rng: Optional[RandomState] = None,
        seed: Optional[int] = None,
        batch_size: Optional[int] = _UNSET,
        num_workers: Optional[int] = _UNSET,
    ) -> EstimateResult:
        """Run the two-stage sampler with the configured parameters.

        ``batch_size`` and ``num_workers`` override the instance-level
        settings for this run when given (including an explicit ``None``,
        which means whole-draw batches / serial execution respectively).
        """
        if rng is None:
            rng = RandomState(seed)
        effective_batch = self.batch_size if batch_size is _UNSET else batch_size
        effective_workers = self.num_workers if num_workers is _UNSET else num_workers
        cache_valid = (
            self._stratification is not None
            and self._stratification_key is not None
            and self._stratification_key[0] is self.proxy
            and self._stratification_key[1] == self.num_strata
        )
        if not cache_valid:
            proxy_obj = (
                self.proxy
                if isinstance(self.proxy, Proxy)
                else PrecomputedProxy(np.asarray(self.proxy, dtype=float), name="scores")
            )
            self._stratification = Stratification.by_proxy_quantile(
                proxy_obj, self.num_strata
            )
            self._stratification_key = (self.proxy, self.num_strata)
        return run_abae(
            proxy=self.proxy,
            oracle=self.oracle,
            statistic=self.statistic,
            budget=budget,
            num_strata=self.num_strata,
            stage1_fraction=self.stage1_fraction,
            reuse_samples=self.reuse_samples,
            stratification=self._stratification,
            with_ci=with_ci,
            alpha=alpha,
            num_bootstrap=num_bootstrap,
            rng=rng,
            batch_size=effective_batch,
            num_workers=effective_workers,
            parallel_backend=self.parallel_backend,
        )
