"""Result objects returned by the samplers.

Every estimator in the package (ABae, the uniform baseline, the group-by
and multi-predicate extensions) returns an :class:`EstimateResult` so the
experiment harness, the query executor and users see one consistent shape:
the point estimate, an optional confidence interval, the oracle cost paid,
and per-stratum diagnostics for debugging and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.types import StratumEstimate, StratumSample

__all__ = ["ConfidenceInterval", "EstimateResult", "GroupByResult"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval at confidence level ``1 - alpha``."""

    lower: float
    upper: float
    alpha: float

    def __post_init__(self):
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.upper < self.lower:
            raise ValueError(
                f"upper bound {self.upper} is below lower bound {self.lower}"
            )

    @property
    def width(self) -> float:
        return self.upper - self.lower

    @property
    def confidence(self) -> float:
        return 1.0 - self.alpha

    def covers(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CI[{self.lower:.6g}, {self.upper:.6g}] "
            f"@ {100 * self.confidence:.0f}%"
        )


@dataclass
class EstimateResult:
    """The answer to an approximate aggregation query.

    Attributes
    ----------
    estimate:
        The approximate aggregate (mu_hat_all for AVG-style queries; the
        query executor rescales for SUM / COUNT).
    ci:
        Bootstrap confidence interval, when the caller requested one.
    oracle_calls:
        Number of oracle invocations actually charged.
    strata_estimates:
        Per-stratum plug-in estimates (diagnostics; empty for the uniform
        baseline, which has a single implicit stratum).
    samples:
        The raw per-stratum samples, kept so the bootstrap (and tests) can
        resample without re-querying the oracle.
    method:
        Human-readable method name ("abae", "uniform", ...).
    details:
        Free-form extra diagnostics (allocations, stage sizes, ...).
    """

    estimate: float
    ci: Optional[ConfidenceInterval] = None
    oracle_calls: int = 0
    strata_estimates: List[StratumEstimate] = field(default_factory=list)
    samples: List[StratumSample] = field(default_factory=list)
    method: str = "abae"
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def num_positive_samples(self) -> int:
        return sum(s.num_positive for s in self.samples)

    @property
    def num_draws(self) -> int:
        return sum(s.num_draws for s in self.samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ci_text = f", ci={self.ci}" if self.ci is not None else ""
        return (
            f"EstimateResult(method={self.method!r}, estimate={self.estimate:.6g}, "
            f"oracle_calls={self.oracle_calls}{ci_text})"
        )


@dataclass
class GroupByResult:
    """Per-group results for a GROUP BY query."""

    group_results: Dict[object, EstimateResult] = field(default_factory=dict)
    allocation: Dict[object, float] = field(default_factory=dict)
    oracle_calls: int = 0
    method: str = "abae-groupby"
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def groups(self) -> Sequence[object]:
        return list(self.group_results)

    def estimate(self, group) -> float:
        return self.group_results[group].estimate

    def estimates(self) -> Dict[object, float]:
        return {g: r.estimate for g, r in self.group_results.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{group}={result.estimate:.4g}"
            for group, result in self.group_results.items()
        )
        return f"GroupByResult({parts})"
