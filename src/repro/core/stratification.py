"""Stratification by proxy-score quantile (ABaeInit, Algorithm 1).

ABae sorts records by proxy score and splits them into K equal-size strata.
Under the monotonicity assumption this groups records with similar
probability of matching the predicate, which is what makes the optimal
allocation effective.  The class also supports arbitrary index-based
stratifications so ablation benchmarks can compare against random strata.

Caching
-------
Proxy-quantile stratification is a pure function of ``(scores, K,
descending)``, yet figure grids re-derive it for every (budget, seed,
trial) cell of a sweep — an O(n log n) sort plus O(n) validation per cell
that dwarfs the actual sampling work once oracle batching is in place.
Two memoization layers remove that cost:

* :meth:`Stratification.by_proxy_quantile` keeps a weak-keyed per-proxy
  cache, so repeated stratification of the *same proxy object* (the
  experiment runner's per-trial loop, the query executor's repeated
  queries) never re-scores or re-sorts;
* :meth:`Stratification.from_scores` memoizes by a content fingerprint of
  the score vector — ``(sha1(bytes), length, K, descending)`` — so even
  freshly-wrapped copies of the same scores (``PrecomputedProxy`` built
  per trial, MultiPred combined-score vectors) hit the cache.

Cached instances are safe to share because strata are frozen at
construction: every index array is read-only and accessors return views,
never fresh copies.  The one caveat (documented on the facade since PR 1)
is in-place mutation of a score array *after* it has been stratified —
the fingerprint is computed per call, so the content cache notices, but
the weak per-proxy cache cannot; mutate-and-rescore workloads should call
:func:`clear_stratification_cache` or run under
:func:`stratification_cache_disabled`.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.annotations import guard_module_globals
from repro.proxy.base import Proxy
from repro.stats.rng import RandomState

__all__ = [
    "Stratification",
    "stratification_cache_disabled",
    "clear_stratification_cache",
    "stratification_cache_info",
]


# ---------------------------------------------------------------------------
# Plan-level stratification cache
# ---------------------------------------------------------------------------

_CACHE_LOCK = threading.RLock()
# Thread-local depth counter: a disabled context affects only the thread
# that opened it, so one query opting out (``plan_cache=False``) cannot
# strip caching from — or, worse, have its own opt-out cancelled by —
# concurrent queries on other threads.  Depth (not a boolean) makes
# nested contexts on one thread compose correctly.
_CACHE_DISABLED = threading.local()
# Content-addressed cache: (scores-fingerprint, K, descending) -> Stratification.
# Bounded LRU so long-lived servers sweeping many datasets cannot grow it
# without limit.  Two budgets: an entry count (covers a figure grid's
# dataset x K combinations) and a total-records budget, because each entry
# pins O(num_records) of int64 index arrays — 20M cached records is
# ~160 MB of indices regardless of how many entries hold them.
_SCORES_CACHE: "OrderedDict[Tuple, Stratification]" = OrderedDict()
_SCORES_CACHE_MAX_ENTRIES = 128
_SCORES_CACHE_MAX_RECORDS = 20_000_000
_SCORES_CACHE_RECORDS = 0
guard_module_globals(
    "_CACHE_LOCK", "_SCORES_CACHE", "_SCORES_CACHE_RECORDS"
)
# Identity cache: proxy object -> {(K, descending): Stratification}.  Weak
# keys so caching never extends a proxy's lifetime.
_PROXY_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_CACHE_STATS = {"hits": 0, "misses": 0}


def _scores_fingerprint(arr: np.ndarray) -> Tuple[str, int]:
    """Content fingerprint of a score vector: (sha1 of bytes, length)."""
    data = np.ascontiguousarray(arr)
    return (hashlib.sha1(data.tobytes()).hexdigest(), int(arr.shape[0]))


def _cache_enabled() -> bool:
    return getattr(_CACHE_DISABLED, "depth", 0) == 0


@contextmanager
def stratification_cache_disabled():
    """Temporarily bypass the stratification caches (benchmarks, tests).

    Inside the context every :meth:`Stratification.by_proxy_quantile` /
    :meth:`Stratification.from_scores` call rebuilds from scratch, exactly
    as the pre-caching implementation did.  Existing cache entries are
    kept (and used again once the last disabler exits).  The scope is the
    *current thread*: nested contexts compose, and concurrent threads —
    e.g. other queries running with caching on — are unaffected.  Work a
    disabled caller dispatches to worker threads itself (``parallel_map``)
    is therefore not covered; open the context inside the task instead.
    """
    _CACHE_DISABLED.depth = getattr(_CACHE_DISABLED, "depth", 0) + 1
    try:
        yield
    finally:
        _CACHE_DISABLED.depth -= 1


def clear_stratification_cache() -> None:
    """Drop every cached stratification (content and per-proxy layers)."""
    global _SCORES_CACHE_RECORDS
    with _CACHE_LOCK:
        _SCORES_CACHE.clear()
        _SCORES_CACHE_RECORDS = 0
        _PROXY_CACHE.clear()
        _CACHE_STATS["hits"] = 0
        _CACHE_STATS["misses"] = 0


def stratification_cache_info() -> Dict[str, int]:
    """Hit/miss counters and current sizes (for diagnostics and tests)."""
    with _CACHE_LOCK:
        return {
            "hits": _CACHE_STATS["hits"],
            "misses": _CACHE_STATS["misses"],
            "content_entries": len(_SCORES_CACHE),
            "proxy_entries": len(_PROXY_CACHE),
        }


class Stratification:
    """A partition of record indices into K disjoint strata.

    Strata are immutable once constructed: the index arrays are frozen
    (read-only) and every accessor returns a zero-copy view, so instances
    can be shared freely across trials, threads and the module-level
    caches.
    """

    def __init__(self, strata: Sequence[np.ndarray], num_records: int):
        if not strata:
            raise ValueError("a stratification requires at least one stratum")
        cleaned: List[np.ndarray] = []
        seen = 0
        for k, stratum in enumerate(strata):
            # Always copy: the instance freezes its arrays, and callers'
            # arrays must not change flags (or content) under them.
            arr = np.array(stratum, dtype=np.int64, copy=True)
            if arr.ndim != 1:
                raise ValueError(f"stratum {k} must be a 1-D index array")
            arr.setflags(write=False)
            cleaned.append(arr)
            seen += arr.size
        if seen != num_records:
            raise ValueError(
                f"strata cover {seen} records but the dataset has {num_records}"
            )
        all_indices = np.concatenate(cleaned) if cleaned else np.empty(0, dtype=np.int64)
        if all_indices.size and (all_indices.min() < 0 or all_indices.max() >= num_records):
            raise ValueError("stratum indices out of range for the dataset")
        # With indices known to lie in [0, num_records), a bincount detects
        # duplicates in O(n) — far cheaper than hashing via np.unique, and
        # this constructor sits on the per-query hot path.
        if all_indices.size and np.bincount(all_indices, minlength=num_records).max() > 1:
            raise ValueError("strata must be disjoint (duplicate record index found)")
        self._strata = cleaned
        self._num_records = num_records
        # Read-only derived columns, computed once: repeated accessor calls
        # used to allocate fresh arrays on every access (the per-trial loops
        # of the figure grids called them thousands of times).
        self._sizes = np.array([s.size for s in cleaned], dtype=np.int64)
        self._sizes.setflags(write=False)
        self._weights = self._sizes.astype(float) / max(float(num_records), 1.0)
        self._weights.setflags(write=False)
        self._assignment: Optional[np.ndarray] = None  # built lazily

    # -- Constructors -------------------------------------------------------------
    @classmethod
    def by_proxy_quantile(
        cls, proxy: Proxy, num_strata: int, descending: bool = False
    ) -> "Stratification":
        """Stratify by proxy-score quantile (the paper's ABaeInit).

        Records are sorted by score and split into ``num_strata`` contiguous,
        (almost) equal-size groups.  Ties are broken by record index so the
        stratification is deterministic.  ``descending=True`` puts the
        highest-scoring records in stratum 0; the default ascending order
        matches Algorithm 1's sort.

        Results are memoized per proxy object (weak-keyed), so per-trial
        loops stratifying the same proxy repeatedly pay the O(n log n) sort
        exactly once per (K, descending).
        """
        if isinstance(proxy, Proxy) and _cache_enabled():
            key = (int(num_strata), bool(descending))
            with _CACHE_LOCK:
                per_proxy = _PROXY_CACHE.get(proxy)
                if per_proxy is not None and key in per_proxy:
                    _CACHE_STATS["hits"] += 1
                    return per_proxy[key]
            scores = proxy.scores()
            strat = cls.from_scores(scores, num_strata, descending=descending)
            with _CACHE_LOCK:
                _PROXY_CACHE.setdefault(proxy, {})[key] = strat
            return strat
        scores = proxy.scores()
        return cls.from_scores(scores, num_strata, descending=descending)

    @classmethod
    def from_scores(
        cls, scores: Sequence[float], num_strata: int, descending: bool = False
    ) -> "Stratification":
        """Stratify an explicit score vector by quantile.

        Memoized by content: the cache key is ``(sha1(scores), len(scores),
        num_strata, descending)``, so identical score vectors — even when
        re-wrapped in fresh arrays or proxies per trial — share one
        stratification.  Hashing is O(n) with a tiny constant; the sort,
        split and constructor validation it saves are the expensive parts.

        ``scores`` may also be a dataset-backend column handle (see
        :mod:`repro.data`): the column is materialized for the sort — one
        float column is the irreducible working set of quantile
        stratification — and because the cache key is the *content*
        fingerprint, the same scores served by different backends (dense,
        mmap, chunked) correctly share a single cached stratification.
        """
        from repro.data.backend import as_dense

        arr = as_dense(scores, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("scores must be a non-empty 1-D array")
        if num_strata <= 0:
            raise ValueError(f"num_strata must be positive, got {num_strata}")
        if num_strata > arr.size:
            raise ValueError(
                f"cannot build {num_strata} strata from only {arr.size} records"
            )
        if not _cache_enabled():
            return cls._build_from_scores(arr, num_strata, descending)
        key = _scores_fingerprint(arr) + (int(num_strata), bool(descending))
        with _CACHE_LOCK:
            cached = _SCORES_CACHE.get(key)
            if cached is not None:
                _SCORES_CACHE.move_to_end(key)
                _CACHE_STATS["hits"] += 1
                return cached
            _CACHE_STATS["misses"] += 1
        strat = cls._build_from_scores(arr, num_strata, descending)
        global _SCORES_CACHE_RECORDS
        with _CACHE_LOCK:
            if key not in _SCORES_CACHE:
                _SCORES_CACHE[key] = strat
                _SCORES_CACHE_RECORDS += strat.num_records
            while _SCORES_CACHE and (
                len(_SCORES_CACHE) > _SCORES_CACHE_MAX_ENTRIES
                or _SCORES_CACHE_RECORDS > _SCORES_CACHE_MAX_RECORDS
            ):
                _, evicted = _SCORES_CACHE.popitem(last=False)
                _SCORES_CACHE_RECORDS -= evicted.num_records
        return strat

    @classmethod
    def _build_from_scores(
        cls, arr: np.ndarray, num_strata: int, descending: bool
    ) -> "Stratification":
        """The uncached construction path (also used by benchmarks as the
        pre-caching baseline)."""
        order = np.argsort(arr, kind="stable")
        if descending:
            order = order[::-1]
        strata = [np.sort(chunk) for chunk in np.array_split(order, num_strata)]
        return cls(strata, num_records=arr.size)

    @classmethod
    def random(
        cls, num_records: int, num_strata: int, rng: Optional[RandomState] = None
    ) -> "Stratification":
        """A random partition into equal-size strata (ablation baseline)."""
        if num_strata <= 0:
            raise ValueError(f"num_strata must be positive, got {num_strata}")
        if num_strata > num_records:
            raise ValueError(
                f"cannot build {num_strata} strata from only {num_records} records"
            )
        rng = rng or RandomState(0)
        order = rng.permutation(np.arange(num_records))
        strata = [np.sort(chunk) for chunk in np.array_split(order, num_strata)]
        return cls(strata, num_records=num_records)

    @classmethod
    def single_stratum(cls, num_records: int) -> "Stratification":
        """The trivial stratification (equivalent to uniform sampling)."""
        return cls([np.arange(num_records, dtype=np.int64)], num_records=num_records)

    # -- Accessors ----------------------------------------------------------------
    @property
    def num_strata(self) -> int:
        return len(self._strata)

    @property
    def num_records(self) -> int:
        return self._num_records

    def stratum(self, k: int) -> np.ndarray:
        """The record indices belonging to stratum ``k`` (read-only view)."""
        if not 0 <= k < len(self._strata):
            raise IndexError(
                f"stratum index {k} out of range (have {len(self._strata)} strata)"
            )
        return self._strata[k]

    def strata(self) -> List[np.ndarray]:
        """Every stratum's index array (read-only views, zero-copy)."""
        return list(self._strata)

    def sizes(self) -> np.ndarray:
        """Number of records in each stratum (read-only, cached)."""
        return self._sizes

    def weights(self) -> np.ndarray:
        """Fraction of the dataset in each stratum (read-only, cached)."""
        return self._weights

    def stratum_of(self) -> np.ndarray:
        """Array mapping each record index to its stratum (read-only, cached)."""
        if self._assignment is None:
            assignment = np.empty(self._num_records, dtype=np.int64)
            for k, stratum in enumerate(self._strata):
                assignment[stratum] = k
            assignment.setflags(write=False)
            self._assignment = assignment
        return self._assignment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Stratification(num_strata={self.num_strata}, "
            f"num_records={self._num_records})"
        )
