"""Stratification by proxy-score quantile (ABaeInit, Algorithm 1).

ABae sorts records by proxy score and splits them into K equal-size strata.
Under the monotonicity assumption this groups records with similar
probability of matching the predicate, which is what makes the optimal
allocation effective.  The class also supports arbitrary index-based
stratifications so ablation benchmarks can compare against random strata.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.proxy.base import Proxy
from repro.stats.rng import RandomState

__all__ = ["Stratification"]


class Stratification:
    """A partition of record indices into K disjoint strata."""

    def __init__(self, strata: Sequence[np.ndarray], num_records: int):
        if not strata:
            raise ValueError("a stratification requires at least one stratum")
        cleaned: List[np.ndarray] = []
        seen = 0
        for k, stratum in enumerate(strata):
            arr = np.asarray(stratum, dtype=np.int64)
            if arr.ndim != 1:
                raise ValueError(f"stratum {k} must be a 1-D index array")
            cleaned.append(arr)
            seen += arr.size
        if seen != num_records:
            raise ValueError(
                f"strata cover {seen} records but the dataset has {num_records}"
            )
        all_indices = np.concatenate(cleaned) if cleaned else np.empty(0, dtype=np.int64)
        if all_indices.size and (all_indices.min() < 0 or all_indices.max() >= num_records):
            raise ValueError("stratum indices out of range for the dataset")
        # With indices known to lie in [0, num_records), a bincount detects
        # duplicates in O(n) — far cheaper than hashing via np.unique, and
        # this constructor sits on the per-query hot path.
        if all_indices.size and np.bincount(all_indices, minlength=num_records).max() > 1:
            raise ValueError("strata must be disjoint (duplicate record index found)")
        self._strata = cleaned
        self._num_records = num_records

    # -- Constructors -------------------------------------------------------------
    @classmethod
    def by_proxy_quantile(
        cls, proxy: Proxy, num_strata: int, descending: bool = False
    ) -> "Stratification":
        """Stratify by proxy-score quantile (the paper's ABaeInit).

        Records are sorted by score and split into ``num_strata`` contiguous,
        (almost) equal-size groups.  Ties are broken by record index so the
        stratification is deterministic.  ``descending=True`` puts the
        highest-scoring records in stratum 0; the default ascending order
        matches Algorithm 1's sort.
        """
        scores = proxy.scores()
        return cls.from_scores(scores, num_strata, descending=descending)

    @classmethod
    def from_scores(
        cls, scores: Sequence[float], num_strata: int, descending: bool = False
    ) -> "Stratification":
        """Stratify an explicit score vector by quantile."""
        arr = np.asarray(scores, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("scores must be a non-empty 1-D array")
        if num_strata <= 0:
            raise ValueError(f"num_strata must be positive, got {num_strata}")
        if num_strata > arr.size:
            raise ValueError(
                f"cannot build {num_strata} strata from only {arr.size} records"
            )
        order = np.argsort(arr, kind="stable")
        if descending:
            order = order[::-1]
        strata = [np.sort(chunk) for chunk in np.array_split(order, num_strata)]
        return cls(strata, num_records=arr.size)

    @classmethod
    def random(
        cls, num_records: int, num_strata: int, rng: Optional[RandomState] = None
    ) -> "Stratification":
        """A random partition into equal-size strata (ablation baseline)."""
        if num_strata <= 0:
            raise ValueError(f"num_strata must be positive, got {num_strata}")
        if num_strata > num_records:
            raise ValueError(
                f"cannot build {num_strata} strata from only {num_records} records"
            )
        rng = rng or RandomState(0)
        order = rng.permutation(np.arange(num_records))
        strata = [np.sort(chunk) for chunk in np.array_split(order, num_strata)]
        return cls(strata, num_records=num_records)

    @classmethod
    def single_stratum(cls, num_records: int) -> "Stratification":
        """The trivial stratification (equivalent to uniform sampling)."""
        return cls([np.arange(num_records, dtype=np.int64)], num_records=num_records)

    # -- Accessors ----------------------------------------------------------------
    @property
    def num_strata(self) -> int:
        return len(self._strata)

    @property
    def num_records(self) -> int:
        return self._num_records

    def stratum(self, k: int) -> np.ndarray:
        """The record indices belonging to stratum ``k``."""
        if not 0 <= k < len(self._strata):
            raise IndexError(
                f"stratum index {k} out of range (have {len(self._strata)} strata)"
            )
        return np.array(self._strata[k])

    def strata(self) -> List[np.ndarray]:
        """Copies of every stratum's index array."""
        return [np.array(s) for s in self._strata]

    def sizes(self) -> np.ndarray:
        """Number of records in each stratum."""
        return np.array([s.size for s in self._strata], dtype=np.int64)

    def weights(self) -> np.ndarray:
        """Fraction of the dataset in each stratum (sums to 1)."""
        sizes = self.sizes().astype(float)
        return sizes / sizes.sum()

    def stratum_of(self) -> np.ndarray:
        """Array mapping each record index to its stratum number."""
        assignment = np.empty(self._num_records, dtype=np.int64)
        for k, stratum in enumerate(self._strata):
            assignment[stratum] = k
        return assignment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Stratification(num_strata={self.num_strata}, "
            f"num_records={self._num_records})"
        )
