"""Batched record labeling: the engine under every sampler's hot path.

The paper charges per oracle invocation, but a real expensive-predicate
backend (batched DNN inference, vectorized UDFs, remote label APIs) is
orders of magnitude cheaper per record when asked about many records at
once.  This module concentrates the "draw a set of records, run the oracle
over them, extract the statistic for the matches" step so that:

* oracles exposing ``evaluate_batch`` (any :class:`repro.oracle.base.Oracle`
  subclass, :class:`~repro.oracle.cache.CachingOracle`,
  :class:`~repro.oracle.budget.BudgetedOracle`) are invoked once per batch;
* plain ``record_index -> bool`` callables keep working via a per-record
  fallback loop;
* statistics carrying a ``batch`` attribute (the array-backed adapter
  produced by ``repro.core.abae._normalize_statistic``, or
  :class:`~repro.oracle.base.StatisticOracle`) are gathered with one fancy
  index instead of one Python call per match.

Determinism contract
--------------------
Batching never touches the random stream — record *selection* stays with
:func:`repro.stats.sampling.sample_without_replacement` — and oracle
accounting advances through the same ``Oracle._record`` helper as
sequential calls.  Therefore, for any ``batch_size`` (including the strict
per-record path ``batch_size=1``) and any ``num_workers`` (batches are
sharded across workers by :mod:`repro.core.parallel`, which reassembles
answers in record order and accounts centrally), estimates, confidence
intervals and ``num_calls`` are bit-identical under a fixed seed.  The
equivalence harness in ``tests/harness.py`` pins this invariant across the
full (seed × batch_size × num_workers) grid.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from repro.oracle.base import evaluate_oracle_batch

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "batch_slices",
    "statistic_batch",
    "label_records",
]

# ``None`` means "one batch per draw set" — the fastest choice whenever the
# oracle backend has no batch-size ceiling of its own.
DEFAULT_BATCH_SIZE: Optional[int] = None


def batch_slices(total: int, batch_size: Optional[int]) -> Iterator[slice]:
    """Yield contiguous slices covering ``range(total)`` in batches.

    ``batch_size=None`` yields a single slice; otherwise batches of at most
    ``batch_size`` in order.  ``total == 0`` yields nothing.
    """
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be a positive integer, got {batch_size}")
    if total <= 0:
        return
    step = total if batch_size is None else int(batch_size)
    for start in range(0, total, step):
        yield slice(start, min(start + step, total))


def statistic_batch(
    statistic: Callable[[int], float], record_indices: np.ndarray
) -> np.ndarray:
    """Statistic values for many records, vectorized when possible.

    Uses the statistic's ``batch`` attribute when present — the
    array-backed adapters and :class:`~repro.oracle.base.StatisticOracle`
    answer it with a single fancy index over their ``values`` column — and
    only falls back to a per-record loop (over native Python ints, no
    NumPy scalar boxing) for bare scalar callables.  The ``batch`` method
    stays authoritative even for column-backed statistics so a subclass
    overriding it is never silently bypassed.
    """
    idx = np.asarray(record_indices, dtype=np.int64)
    batch = getattr(statistic, "batch", None)
    if batch is not None:
        return np.asarray(batch(idx), dtype=float)
    return np.array([float(statistic(i)) for i in idx.tolist()], dtype=float)


def label_records(
    record_indices: np.ndarray,
    oracle: Callable[[int], bool],
    statistic: Callable[[int], float],
    batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the oracle over drawn records and gather the matching statistics.

    Returns ``(matches, values)`` aligned with ``record_indices``: a bool
    array of predicate outcomes and a float array holding the statistic for
    matches and NaN elsewhere (the statistic is undefined for records that
    fail the predicate).

    ``batch_size`` controls how many records each oracle invocation covers:
    ``None`` labels the whole draw set in one batch, ``1`` reproduces the
    legacy strictly-sequential ``oracle(i)`` path call for call, and any
    other positive integer chunks the work — a pure execution knob with
    identical results and accounting for every setting.  Worker-pool
    sharding composes from the outside: wrap the oracle once with
    :func:`repro.core.parallel.parallelize_oracle` (as every sampler does
    at entry) and each batch here fans out through its ``evaluate_batch``.
    """
    drawn = np.asarray(record_indices, dtype=np.int64)
    n = drawn.shape[0]
    matches = np.empty(n, dtype=bool)
    values = np.full(n, np.nan, dtype=float)

    if batch_size == 1:
        # Strict sequential path: per-record __call__ with the statistic
        # interleaved, exactly as the pre-batching implementation did.
        # Iterating native ints (one bulk tolist) keeps the per-record loop
        # free of NumPy scalar boxing.
        for i, record_index in enumerate(drawn.tolist()):
            is_match = bool(oracle(record_index))
            matches[i] = is_match
            if is_match:
                values[i] = float(statistic(record_index))
        return matches, values

    for chunk in batch_slices(n, batch_size):
        answers = evaluate_oracle_batch(oracle, drawn[chunk])
        matches[chunk] = np.asarray(answers, dtype=bool)
    matched = drawn[matches]
    if matched.size:
        values[matches] = statistic_batch(statistic, matched)
    return matches, values
