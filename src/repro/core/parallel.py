"""Deterministic parallel oracle execution.

The paper's cost model says the oracle predicate dominates query cost by
orders of magnitude; PR 1 amortized it by batching.  This module adds the
next multiplier: evaluating independent shards of a batch on multiple
workers — threads for oracles whose evaluation releases the GIL (NumPy
kernels, remote inference calls, ``time.sleep``-style latency), processes
for plain-Python oracles — without giving up reproducibility.

Determinism contract
--------------------
For a fixed seed and ``batch_size``, estimates, confidence intervals,
``num_calls`` and ``total_cost`` are **bit-identical for every value of
``num_workers``**.  Three design rules make this hold:

1. **Sharding is positional, never temporal.**  A batch of ``n`` records is
   split into contiguous shards by :func:`shard_slices`; which worker runs
   which shard, and in which order shards finish, never affects anything —
   results are reassembled by shard index.
2. **Evaluation is pure; accounting is centralized.**  Workers only run the
   oracle's side-effect-free ``_evaluate_batch`` path.  All accounting for
   the batch flows through a single ``Oracle._record`` call on the calling
   thread, in the original record order — exactly what the serial path
   does.  (``Oracle.total_cost`` is derived from ``num_calls`` by one
   multiply, so cost is partition-proof too.)
3. **Randomness is keyed by shard position.**  Nothing in oracle labeling
   consumes randomness (record *selection* happens before, on the caller's
   stream), and any per-shard stochastic work must use
   :func:`repro.stats.rng.spawn_shard_streams`, whose child streams depend
   only on the shard index.

Composition with the oracle wrappers
------------------------------------
:class:`ParallelOracle` wraps the *innermost* expensive oracle.  Stateful
wrappers go **outside** it, where their bookkeeping stays single-threaded::

    CachingOracle(ParallelOracle(expensive))          # cache, then shard misses
    BudgetedOracle(ParallelOracle(expensive), budget) # charge, then shard

Both wrappers already funnel their work into one ``evaluate_batch`` call on
their inner oracle, which is precisely the granularity this module shards.
Constructing ``ParallelOracle`` *around* one of them raises, because their
``evaluate_batch`` is stateful (cache mutation, budget charges) and cannot
be sharded safely.

The samplers call :func:`parallelize_oracle`, the tolerant entry point: it
wraps shard-safe oracles and leaves everything else (already-parallel,
caching, budgeted) untouched, so ``num_workers`` is always safe to pass.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.annotations import guard_module_globals
from repro.oracle.base import Oracle, PredicateOracle, evaluate_oracle_batch
from repro.oracle.composite import _CompositeOracle
from repro.stats.rng import RandomState, spawn_shard_streams

__all__ = [
    "THREAD_BACKEND",
    "PROCESS_BACKEND",
    "BACKENDS",
    "resolve_backend",
    "resolve_num_workers",
    "shard_slices",
    "ParallelOracle",
    "parallelize_oracle",
    "parallel_map",
    "shutdown_worker_pools",
]

THREAD_BACKEND = "thread"
PROCESS_BACKEND = "process"
BACKENDS = (THREAD_BACKEND, PROCESS_BACKEND)


def resolve_backend(backend: str) -> str:
    """Validate a ``parallel_backend`` knob at configuration time."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown parallel backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend

# Below this many records, sharding overhead (task submission, thread
# wake-up) exceeds any conceivable win, so the batch is evaluated on the
# calling thread.  The threshold depends only on the batch length, never on
# timing, so it cannot break determinism.
MIN_SHARDED_RECORDS = 32


def resolve_num_workers(num_workers: Optional[int]) -> int:
    """Normalize the ``num_workers`` knob: ``None`` means serial (1).

    Raises ``ValueError`` for anything that is not a positive integer
    (floats, strings and bools included — no silent coercion), matching
    the query planner's validation, so a bad knob fails at configuration
    time, not deep inside a sampling loop.
    """
    if num_workers is None:
        return 1
    if not isinstance(num_workers, (int, np.integer)) or isinstance(
        num_workers, bool
    ):
        raise ValueError(
            f"num_workers must be a positive integer or None, got {num_workers!r}"
        )
    workers = int(num_workers)
    if workers < 1:
        raise ValueError(
            f"num_workers must be a positive integer or None, got {num_workers}"
        )
    return workers


def shard_slices(total: int, num_shards: int) -> Iterator[slice]:
    """Split ``range(total)`` into at most ``num_shards`` contiguous slices.

    Shard sizes differ by at most one and depend only on ``(total,
    num_shards)`` — the partition is the unit of determinism, so it must
    never depend on worker availability or timing.  Empty shards are not
    yielded; ``total == 0`` yields nothing.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    if total <= 0:
        return
    shards = min(num_shards, total)
    base, extra = divmod(total, shards)
    start = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        yield slice(start, start + size)
        start += size


# ---------------------------------------------------------------------------
# Shared worker pools
# ---------------------------------------------------------------------------

_POOLS: Dict[Tuple[str, str, int], Executor] = {}
_POOLS_LOCK = threading.Lock()
guard_module_globals("_POOLS_LOCK", "_POOLS")


def _get_pool(purpose: str, backend: str, num_workers: int) -> Executor:
    """A process-wide pool per (purpose, backend, size), lazily created.

    Pool reuse matters: samplers shard thousands of small batches, and
    creating an executor per batch would dominate the runtime.  The
    ``purpose`` dimension ("oracle" for :class:`ParallelOracle` shards,
    "map" for :func:`parallel_map` tasks) keeps the two levels on disjoint
    pools, so a mapped task that runs a sampler which shards its oracle
    batches cannot deadlock by submitting shard futures into the very pool
    its own task is occupying.  Pools are shut down at interpreter exit
    (and on :func:`shutdown_worker_pools`).
    """
    key = (purpose, backend, num_workers)
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            if backend == THREAD_BACKEND:
                pool = ThreadPoolExecutor(
                    max_workers=num_workers,
                    thread_name_prefix=f"repro-{purpose}-{num_workers}",
                )
            else:
                pool = ProcessPoolExecutor(max_workers=num_workers)
            _POOLS[key] = pool
        return pool


def shutdown_worker_pools() -> None:
    """Shut down every cached worker pool (used by tests and at exit)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True)


atexit.register(shutdown_worker_pools)


def _shard_safe(oracle) -> bool:
    """Whether the oracle's batch evaluation can be sharded across workers.

    True for any :class:`Oracle` that keeps the stock ``evaluate_batch``
    (pure ``_evaluate_batch`` + one ``_record``), including composite
    AND/OR/NOT oracles *whose children are all shard-safe too*, and for
    plain callables.  False for oracles whose ``evaluate_batch`` is itself
    stateful (``CachingOracle``, ``BudgetedOracle``): their bookkeeping —
    budget check-then-charge, cache hit/miss counters — is not
    lock-protected the way ``Oracle._record`` is, so they must stay
    single-threaded and belong *outside* the parallel wrapper.  The child
    recursion matters: a composite's constituents evaluate (and account)
    on worker threads, so a stateful wrapper hidden as a leaf would race
    exactly like one wrapped directly.
    """
    if isinstance(oracle, ParallelOracle):
        return False
    if isinstance(oracle, _CompositeOracle):
        return all(_shard_safe(child) for child in oracle.children)
    if isinstance(oracle, Oracle):
        return type(oracle).evaluate_batch in (
            Oracle.evaluate_batch,
            PredicateOracle.evaluate_batch,
        )
    return not hasattr(oracle, "evaluate_batch")


def _process_safe(oracle) -> bool:
    """Whether the oracle can be sharded across *processes* specifically.

    Composite oracles cannot: their constituents account themselves during
    evaluation, and in a worker process that accounting lands on pickled
    throwaway copies — the parent's merge only covers the top-level
    oracle, so per-constituent call counts would be silently lost.  The
    thread backend keeps children in-process (their thread-safe ``_record``
    preserves exact counts) and is the right choice for composites.
    """
    return not isinstance(oracle, _CompositeOracle)


def _evaluate_shard(oracle, record_indices: np.ndarray):
    """Pure (accounting-free) evaluation of one shard.

    Runs on a worker.  For :class:`Oracle` instances this is the
    ``_evaluate_batch`` path — no counters move; the parent thread records
    the whole batch afterwards.  Vectorized oracles return NumPy arrays,
    which are passed through as-is so the parent can merge shards with one
    ``np.concatenate`` instead of a per-record list extend.  Plain
    callables are looped; they must be pure and thread-safe (process
    backend: picklable) to be sharded.
    """
    if isinstance(oracle, Oracle):
        return oracle._evaluate_batch(record_indices)
    return [oracle(i) for i in record_indices.tolist()]


class ParallelOracle:
    """Shard an oracle's batch evaluation across a worker pool.

    Drop-in oracle-like wrapper: ``__call__`` delegates per-record lookups
    to the inner oracle untouched; ``evaluate_batch`` splits the batch into
    ``num_workers`` contiguous shards, evaluates them concurrently through
    the inner oracle's pure path, reassembles the answers in record order,
    and then advances the inner oracle's accounting **once, on the calling
    thread, in the original order** — so the wrapped oracle's counters,
    cost and call log are bit-identical to the serial path's, for any
    worker count.  One scoping note: when the wrapped oracle is a
    *composite*, its constituents account themselves from worker threads;
    their counters and costs are exact (lock-protected, order-free sums)
    but their ``keep_log`` entry *order* is scheduling-dependent — run
    serially if a constituent's log order matters.

    ``backend="thread"`` suits oracles whose evaluation releases the GIL
    (NumPy kernels, network-bound inference calls); ``backend="process"``
    suits pure-Python oracles, which must then be picklable (per-worker
    accounting happens on throwaway copies and is discarded — the parent's
    single merged ``_record`` is authoritative).  Composite oracles are
    thread-only: their constituents account themselves during evaluation,
    which worker processes cannot merge back.  Note the process backend
    re-pickles the inner oracle once per shard per batch; it pays off only
    when per-record evaluation is expensive relative to shipping the
    oracle's state.
    """

    def __init__(
        self,
        oracle,
        num_workers: int,
        backend: str = THREAD_BACKEND,
        min_sharded_records: int = MIN_SHARDED_RECORDS,
    ):
        resolve_backend(backend)
        if isinstance(oracle, ParallelOracle):
            raise ValueError(
                "oracle is already a ParallelOracle; nested parallel wrappers "
                "would shard shards to no benefit"
            )
        if not _shard_safe(oracle):
            raise ValueError(
                f"{type(oracle).__name__} cannot be sharded safely: it (or one "
                "of its constituents) keeps stateful batch bookkeeping; compose "
                "stateful wrappers OUTSIDE the parallel wrapper instead, e.g. "
                "CachingOracle(ParallelOracle(inner)) or "
                "BudgetedOracle(ParallelOracle(inner), budget)"
            )
        if backend == PROCESS_BACKEND and not _process_safe(oracle):
            raise ValueError(
                f"{type(oracle).__name__} is a composite oracle; its "
                "constituents' call accounting would be lost in worker "
                "processes — use backend='thread' for composite oracles"
            )
        self._inner = oracle
        self._num_workers = resolve_num_workers(num_workers)
        self._backend = backend
        self._min_sharded_records = max(int(min_sharded_records), 1)
        self._sharded_batches = 0
        self._sharded_records = 0
        self._serial_batches = 0

    # -- Delegated oracle surface --------------------------------------------------
    @property
    def inner(self):
        return self._inner

    @property
    def num_workers(self) -> int:
        return self._num_workers

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def name(self) -> str:
        inner_name = getattr(self._inner, "name", "oracle")
        return f"parallel[{self._num_workers}x{self._backend}]({inner_name})"

    @property
    def cost_per_call(self) -> float:
        return getattr(self._inner, "cost_per_call", 1.0)

    @property
    def num_calls(self) -> int:
        """Merged invocation count (the inner oracle's, by construction)."""
        return getattr(self._inner, "num_calls", 0)

    @property
    def total_cost(self) -> float:
        return getattr(self._inner, "total_cost", 0.0)

    @property
    def call_log(self):
        return getattr(self._inner, "call_log", [])

    @property
    def call_log_columns(self):
        return getattr(self._inner, "call_log_columns", None)

    def reset_accounting(self) -> None:
        reset = getattr(self._inner, "reset_accounting", None)
        if reset is not None:
            reset()

    # -- Execution statistics ------------------------------------------------------
    @property
    def sharded_batches(self) -> int:
        """How many batches were actually fanned out across workers."""
        return self._sharded_batches

    @property
    def sharded_records(self) -> int:
        """Total records evaluated through the worker pool."""
        return self._sharded_records

    @property
    def serial_batches(self) -> int:
        """Batches answered on the calling thread (too small to shard)."""
        return self._serial_batches

    # -- Evaluation ----------------------------------------------------------------
    def __call__(self, record_index: int):
        return self._inner(int(record_index))

    def evaluate_batch(self, record_indices: Sequence[int]):
        idx = np.asarray(record_indices, dtype=np.int64)
        n = idx.shape[0]
        if (
            self._num_workers == 1
            or n < self._min_sharded_records
            or n < 2 * self._num_workers
        ):
            self._serial_batches += 1
            return evaluate_oracle_batch(self._inner, idx)

        # Fan out: pure evaluation on workers, ordered merge + single
        # accounting point on this thread.
        pool = _get_pool("oracle", self._backend, self._num_workers)
        futures = [
            pool.submit(_evaluate_shard, self._inner, idx[shard])
            for shard in shard_slices(n, self._num_workers)
        ]
        # Collect in shard order, independent of completion order.  When
        # every shard came back as an ndarray (vectorized oracles), merge
        # zero-copy-per-record with one concatenate; otherwise fall back to
        # a flat list.
        shard_results = [future.result() for future in futures]
        if all(isinstance(r, np.ndarray) for r in shard_results):
            results = np.concatenate(shard_results)
        else:
            results = []
            for shard_result in shard_results:
                results.extend(shard_result)
        if isinstance(self._inner, Oracle):
            self._inner._record(idx, results)
        self._sharded_batches += 1
        self._sharded_records += n
        if isinstance(self._inner, PredicateOracle):
            return np.asarray(results, dtype=bool)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelOracle({self._inner!r}, num_workers={self._num_workers}, "
            f"backend={self._backend!r})"
        )


def parallelize_oracle(
    oracle,
    num_workers: Optional[int],
    backend: str = THREAD_BACKEND,
):
    """Wrap ``oracle`` for sharded execution when it is safe and worthwhile.

    The tolerant entry point the samplers use: returns the oracle unchanged
    when ``num_workers`` resolves to 1, when it is already parallel, when
    its ``evaluate_batch`` is stateful (caching / budgeted wrappers — for
    those, compose the parallel wrapper *inside*; see the module
    docstring), or when the backend cannot preserve its accounting
    (composite oracles on the process backend).  Because parallel
    execution never changes results, silently falling back to serial
    execution is always correct.
    """
    resolve_backend(backend)
    workers = resolve_num_workers(num_workers)
    if workers == 1 or isinstance(oracle, ParallelOracle):
        return oracle
    if not _shard_safe(oracle):
        return oracle
    if backend == PROCESS_BACKEND and not _process_safe(oracle):
        return oracle
    return ParallelOracle(oracle, num_workers=workers, backend=backend)


# Marks threads currently executing a parallel_map task, so a nested
# parallel_map raises instead of deadlocking on its own saturated pool.
# Thread-local works for both backends: process workers run tasks on their
# own (marked) main thread.
_MAP_REENTRANCY = threading.local()


def _run_map_task(fn, *args):
    _MAP_REENTRANCY.active = True
    try:
        return fn(*args)
    finally:
        _MAP_REENTRANCY.active = False


def parallel_map(
    fn: Callable,
    items: Sequence,
    num_workers: Optional[int] = None,
    backend: str = THREAD_BACKEND,
    rng: Optional[RandomState] = None,
) -> List:
    """Order-preserving parallel map with deterministic per-item randomness.

    Runs ``fn(item)`` — or ``fn(item, rng_i)`` when ``rng`` is given — for
    every item and returns results in input order.  The ``i``-th item always
    receives the ``i``-th child stream of ``rng`` (via
    :func:`repro.stats.rng.spawn_shard_streams`), so the output is
    bit-identical for any ``num_workers``, including 1.  This is the
    engine's task-level counterpart to :class:`ParallelOracle`: use it for
    independent trials, per-seed sweeps, or per-group sampling runs.
    Mapped tasks may themselves run samplers with ``num_workers`` — oracle
    shards go to a separate pool, so the levels compose without
    deadlocking — but must not call :func:`parallel_map` again: the nested
    call would wait on the pool its own task occupies, so it raises
    ``RuntimeError`` immediately instead of hanging.

    ``fn`` must not mutate shared state; with the process backend it must be
    picklable.
    """
    workers = resolve_num_workers(num_workers)
    resolve_backend(backend)
    items = list(items)
    streams = (
        spawn_shard_streams(rng, len(items)) if rng is not None else None
    )
    if workers == 1 or len(items) <= 1:
        if streams is None:
            return [fn(item) for item in items]
        return [fn(item, stream) for item, stream in zip(items, streams)]
    if getattr(_MAP_REENTRANCY, "active", False):
        raise RuntimeError(
            "parallel_map called from inside a parallel_map task; the nested "
            "call would wait on the pool its own task occupies (deadlock). "
            "Run the inner level serially (num_workers=None) instead."
        )
    # Submit (fn, item[, stream]) directly — no closures, so the process
    # backend can pickle the task as long as fn itself is picklable.
    pool = _get_pool("map", backend, workers)
    if streams is None:
        futures = [pool.submit(_run_map_task, fn, item) for item in items]
    else:
        futures = [
            pool.submit(_run_map_task, fn, item, stream)
            for item, stream in zip(items, streams)
        ]
    return [future.result() for future in futures]
