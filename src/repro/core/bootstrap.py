"""Percentile bootstrap for confidence intervals (Algorithm 2).

The per-stratum samples across both stages are i.i.d. within each stratum,
so we resample *within each stratum* with replacement, recompute the
combined estimate, and take empirical percentiles across bootstrap trials.
The paper argues the bootstrap's CPU cost is negligible next to oracle
calls; our implementation vectorizes the resampling so 1,000 trials over
typical sample sizes run in milliseconds.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.results import ConfidenceInterval
from repro.core.types import StratumSample
from repro.kernels import kernel_set
from repro.stats.rng import RandomState

__all__ = [
    "bootstrap_estimates",
    "bootstrap_confidence_interval",
    "bootstrap_aggregate_estimates",
    "bootstrap_aggregate_interval",
]


def bootstrap_estimates(
    samples: Sequence[StratumSample],
    num_bootstrap: int = 1000,
    rng: Optional[RandomState] = None,
) -> np.ndarray:
    """Return the bootstrap distribution of the combined ABae estimate.

    Each bootstrap trial resamples every stratum's draws (positives and
    negatives together) with replacement, recomputes ``p*_k`` and ``mu*_k``,
    and forms ``sum_k p*_k mu*_k / sum_k p*_k``.  Trials where no stratum
    yields a positive record produce an estimate of 0.0, mirroring the point
    estimator's convention.
    """
    if num_bootstrap <= 0:
        raise ValueError(f"num_bootstrap must be positive, got {num_bootstrap}")
    if not samples:
        raise ValueError("bootstrap requires at least one stratum of samples")
    rng = rng or RandomState(0)
    kernels = kernel_set()

    num_strata = len(samples)
    p_star = np.zeros((num_bootstrap, num_strata))
    mu_star = np.zeros((num_bootstrap, num_strata))

    for k, sample in enumerate(samples):
        n = sample.num_draws
        if n == 0:
            # Nothing was drawn from this stratum; it contributes p* = 0.
            continue
        matches = sample.matches.astype(float)
        values = np.where(sample.matches, sample.values, 0.0)
        # (num_bootstrap, n) index matrix of resampled positions.
        resample_idx = rng.integers(0, n, size=(num_bootstrap, n))
        positives, sums = kernels.bootstrap_resample_stats(
            matches, values, resample_idx
        )
        p_star[:, k] = positives / n
        with np.errstate(invalid="ignore", divide="ignore"):
            mu_star[:, k] = np.where(positives > 0, sums / np.maximum(positives, 1), 0.0)

    denominators = p_star.sum(axis=1)
    numerators = (p_star * mu_star).sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        estimates = np.where(denominators > 0, numerators / np.maximum(denominators, 1e-300), 0.0)
    return estimates


def bootstrap_confidence_interval(
    samples: Sequence[StratumSample],
    alpha: float = 0.05,
    num_bootstrap: int = 1000,
    rng: Optional[RandomState] = None,
) -> ConfidenceInterval:
    """Percentile bootstrap CI at level ``1 - alpha`` (Algorithm 2)."""
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    estimates = bootstrap_estimates(samples, num_bootstrap=num_bootstrap, rng=rng)
    lower = float(np.percentile(estimates, 100.0 * (alpha / 2.0)))
    upper = float(np.percentile(estimates, 100.0 * (1.0 - alpha / 2.0)))
    return ConfidenceInterval(lower=lower, upper=upper, alpha=alpha)


def _per_stratum_bootstrap(
    samples: Sequence[StratumSample],
    num_bootstrap: int,
    rng: RandomState,
) -> tuple:
    """Shared resampling core: bootstrap matrices of p*_k and mu*_k."""
    kernels = kernel_set()
    num_strata = len(samples)
    p_star = np.zeros((num_bootstrap, num_strata))
    mu_star = np.zeros((num_bootstrap, num_strata))
    for k, sample in enumerate(samples):
        n = sample.num_draws
        if n == 0:
            continue
        matches = sample.matches.astype(float)
        values = np.where(sample.matches, sample.values, 0.0)
        resample_idx = rng.integers(0, n, size=(num_bootstrap, n))
        positives, sums = kernels.bootstrap_resample_stats(
            matches, values, resample_idx
        )
        p_star[:, k] = positives / n
        mu_star[:, k] = np.where(positives > 0, sums / np.maximum(positives, 1), 0.0)
    return p_star, mu_star


def bootstrap_aggregate_estimates(
    samples: Sequence[StratumSample],
    stratum_sizes: Sequence[int],
    kind: str = "avg",
    num_bootstrap: int = 1000,
    rng: Optional[RandomState] = None,
) -> np.ndarray:
    """Bootstrap distribution of the AVG / SUM / COUNT estimator.

    ``stratum_sizes`` is the number of dataset records in each stratum,
    needed to scale per-stratum positive rates into absolute counts:

    * ``count`` — ``sum_k p*_k |S_k|``
    * ``sum`` — ``sum_k p*_k |S_k| mu*_k``
    * ``avg`` — ``sum / count`` (the Algorithm-2 estimator when strata are
      equal-size, and the size-weighted generalization otherwise)
    """
    if kind not in ("avg", "sum", "count"):
        raise ValueError(f"kind must be 'avg', 'sum' or 'count', got {kind!r}")
    if num_bootstrap <= 0:
        raise ValueError(f"num_bootstrap must be positive, got {num_bootstrap}")
    if not samples:
        raise ValueError("bootstrap requires at least one stratum of samples")
    sizes = np.asarray(stratum_sizes, dtype=float)
    if sizes.shape[0] != len(samples):
        raise ValueError("stratum_sizes must have one entry per stratum")
    rng = rng or RandomState(0)
    p_star, mu_star = _per_stratum_bootstrap(samples, num_bootstrap, rng)
    counts = (p_star * sizes[None, :]).sum(axis=1)
    sums = (p_star * sizes[None, :] * mu_star).sum(axis=1)
    if kind == "count":
        return counts
    if kind == "sum":
        return sums
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(counts > 0, sums / np.maximum(counts, 1e-300), 0.0)


def bootstrap_aggregate_interval(
    samples: Sequence[StratumSample],
    stratum_sizes: Sequence[int],
    kind: str = "avg",
    alpha: float = 0.05,
    num_bootstrap: int = 1000,
    rng: Optional[RandomState] = None,
) -> ConfidenceInterval:
    """Percentile CI for the AVG / SUM / COUNT estimator."""
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    estimates = bootstrap_aggregate_estimates(
        samples, stratum_sizes, kind=kind, num_bootstrap=num_bootstrap, rng=rng
    )
    lower = float(np.percentile(estimates, 100.0 * (alpha / 2.0)))
    upper = float(np.percentile(estimates, 100.0 * (1.0 - alpha / 2.0)))
    return ConfidenceInterval(lower=lower, upper=upper, alpha=alpha)
