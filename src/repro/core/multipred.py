"""ABae-MultiPred: queries with conjunctions, disjunctions and negations.

Section 3.3: each expensive predicate comes with its own proxy; the
expression's combined proxy score is obtained by substituting

* negation  -> ``1 - score``
* conjunction -> product of scores
* disjunction -> elementwise max of scores

which is exact when the proxies are perfectly calibrated and sharp, and a
good heuristic otherwise.  The combined predicate itself is evaluated by
running every constituent oracle (each charging its own cost).

The module provides a small expression tree (:class:`PredicateLeaf`,
:class:`And`, :class:`Or`, :class:`Not`) that carries both the proxy and
the oracle for each leaf, compiles the combined score vector and the
composite oracle, and hands both to the single-predicate sampler.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.abae import StatisticLike
from repro.core.results import EstimateResult
from repro.engine.builders import multipred_pipeline
from repro.engine.config import UNSET, ExecutionConfig, resolve_execution_config
from repro.oracle.base import Oracle
from repro.oracle.composite import AndOracle, NotOracle, OrOracle
from repro.proxy.base import Proxy
from repro.stats.rng import RandomState

__all__ = ["PredicateExpr", "PredicateLeaf", "And", "Or", "Not", "run_abae_multipred"]


class PredicateExpr(abc.ABC):
    """A node in the predicate expression tree."""

    # Memoized combined scores.  A grid of trials evaluates the same
    # expression's scores once per trial, and every combinator recomputes
    # its whole subtree (products / maxima / complements) per call — for a
    # deep expression that is O(depth * n) *per node access*.  The subtree
    # score vector is immutable once the leaves' proxies are fixed, so each
    # node computes it once and returns a frozen (read-only) array.
    _scores_cache: Optional[np.ndarray] = None

    def combined_scores(self) -> np.ndarray:
        """The per-record combined proxy score for the subtree (memoized)."""
        if self._scores_cache is None:
            scores = np.asarray(self._compute_combined_scores(), dtype=float)
            if scores.flags.writeable and scores.flags.owndata:
                scores.setflags(write=False)
            self._scores_cache = scores
        return self._scores_cache

    @abc.abstractmethod
    def _compute_combined_scores(self) -> np.ndarray:
        """Compute the subtree's combined score vector (uncached)."""

    @abc.abstractmethod
    def build_oracle(self) -> Oracle:
        """A composite oracle evaluating the subtree's predicate."""

    @abc.abstractmethod
    def leaves(self) -> List["PredicateLeaf"]:
        """All leaf predicates in the subtree, left to right."""

    def __and__(self, other: "PredicateExpr") -> "And":
        return And([self, other])

    def __or__(self, other: "PredicateExpr") -> "Or":
        return Or([self, other])

    def __invert__(self) -> "Not":
        return Not(self)


class PredicateLeaf(PredicateExpr):
    """A single expensive predicate with its proxy and oracle."""

    def __init__(self, proxy: Union[Proxy, Sequence[float]], oracle, name: str = None):
        from repro.engine.builders import as_proxy

        # Proxies pass through; raw scores and dataset-backend column
        # handles are wrapped (PrecomputedProxy / BackedProxy).
        self._proxy = as_proxy(proxy, name=name or "leaf_proxy")
        self._oracle = oracle
        self._name = name or getattr(oracle, "name", "predicate")

    @property
    def name(self) -> str:
        return self._name

    @property
    def proxy(self) -> Proxy:
        return self._proxy

    @property
    def oracle(self):
        return self._oracle

    def _compute_combined_scores(self) -> np.ndarray:
        return self._proxy.scores()

    def build_oracle(self) -> Oracle:
        return self._oracle

    def leaves(self) -> List["PredicateLeaf"]:
        return [self]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PredicateLeaf({self._name!r})"


class _Combinator(PredicateExpr):
    """Shared machinery for AND / OR nodes."""

    def __init__(self, children: Sequence[PredicateExpr]):
        if len(children) < 1:
            raise ValueError(f"{type(self).__name__} requires at least one child")
        lengths = {len(child.combined_scores()) for child in children}
        if len(lengths) > 1:
            raise ValueError(
                f"all children must cover the same number of records, got {sorted(lengths)}"
            )
        self._children = list(children)

    @property
    def children(self) -> List[PredicateExpr]:
        return list(self._children)

    def leaves(self) -> List[PredicateLeaf]:
        collected: List[PredicateLeaf] = []
        for child in self._children:
            collected.extend(child.leaves())
        return collected


class And(_Combinator):
    """Conjunction: combined score is the product of child scores."""

    def _compute_combined_scores(self) -> np.ndarray:
        scores = np.ones_like(self._children[0].combined_scores())
        for child in self._children:
            scores = scores * child.combined_scores()
        return scores

    def build_oracle(self) -> Oracle:
        return AndOracle([child.build_oracle() for child in self._children])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "And(" + ", ".join(repr(c) for c in self._children) + ")"


class Or(_Combinator):
    """Disjunction: combined score is the elementwise max of child scores."""

    def _compute_combined_scores(self) -> np.ndarray:
        scores = self._children[0].combined_scores()
        for child in self._children[1:]:
            scores = np.maximum(scores, child.combined_scores())
        return scores

    def build_oracle(self) -> Oracle:
        return OrOracle([child.build_oracle() for child in self._children])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Or(" + ", ".join(repr(c) for c in self._children) + ")"


class Not(PredicateExpr):
    """Negation: combined score is ``1 - child score``."""

    def __init__(self, child: PredicateExpr):
        self._child = child

    @property
    def child(self) -> PredicateExpr:
        return self._child

    def _compute_combined_scores(self) -> np.ndarray:
        return 1.0 - self._child.combined_scores()

    def build_oracle(self) -> Oracle:
        return NotOracle(self._child.build_oracle())

    def leaves(self) -> List[PredicateLeaf]:
        return self._child.leaves()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Not({self._child!r})"


def run_abae_multipred(
    expression: PredicateExpr,
    statistic: StatisticLike,
    budget: int,
    num_strata: int = 5,
    stage1_fraction: float = 0.5,
    with_ci: bool = False,
    alpha: float = 0.05,
    num_bootstrap: int = 1000,
    rng: Optional[RandomState] = None,
    batch_size=UNSET,
    num_workers=UNSET,
    parallel_backend=UNSET,
    config: Optional[ExecutionConfig] = None,
) -> EstimateResult:
    """Run ABae over a complex predicate expression.

    The combined proxy scores drive the stratification; the composite
    oracle answers the full Boolean expression.  ``oracle_calls`` in the
    returned result counts *composite* evaluations (one per drawn record);
    ``details["constituent_oracle_calls"]`` reports the total calls made to
    the underlying per-predicate oracles, which is the cost a system paying
    per constituent DNN would incur.  Batched and sharded execution
    (via ``config``; the per-knob kwargs are deprecated aliases) preserve
    the sequential path's short-circuit per-constituent call counts
    exactly: the masked evaluation of :mod:`repro.oracle.composite`
    consults each child per record independently of how records are chunked
    or sharded, and constituent accounting is thread-safe.
    """
    config = resolve_execution_config(
        config,
        "run_abae_multipred",
        stacklevel=3,
        batch_size=batch_size,
        num_workers=num_workers,
        parallel_backend=parallel_backend,
    )
    pipeline = multipred_pipeline(
        expression=expression,
        statistic=statistic,
        budget=budget,
        num_strata=num_strata,
        stage1_fraction=stage1_fraction,
        with_ci=with_ci,
        alpha=alpha,
        num_bootstrap=num_bootstrap,
        config=config,
    )
    result = pipeline.run(rng)
    # The pipeline may have wrapped the composite oracle for sharding;
    # constituent accounting lives on the inner composite either way.
    composite_oracle = getattr(pipeline.oracle, "inner", pipeline.oracle)
    if hasattr(composite_oracle, "total_children_calls"):
        result.details["constituent_oracle_calls"] = (
            composite_oracle.total_children_calls
        )
    return result
