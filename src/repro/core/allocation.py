"""Budget allocation: closed forms, solvers and integerization helpers.

These are used four ways in the reproduction:

* Algorithm 1's Stage 2 allocates samples proportional to
  ``sqrt(p_hat_k) * sigma_hat_k`` (Proposition 1 with plug-in estimates),
  then integerizes the weights against finite stratum capacities with
  :func:`bounded_allocation`;
* the proxy-selection procedure (Section 3.4) ranks candidate proxies by the
  Proposition-2 MSE their stratification would achieve;
* the group-by extension's minimax objectives (Eqs. 10–11) are solved here
  (:func:`solve_minimax_single_oracle` / :func:`solve_minimax_multi_oracle`)
  on top of the same per-stratification error formula;
* every sampler that turns fractional weights into integer draw counts goes
  through :func:`integerize_allocation` (largest-remainder rounding).

The uniform-sampling MSE and the derived expected speedup are included so
examples and tests can verify the paper's analytical comparison (the
K-fold improvement example in Section 4.2).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.kernels import kernel_set
from repro.stats.sampling import proportional_integer_allocation

__all__ = [
    "optimal_allocation",
    "optimal_stratified_mse",
    "uniform_sampling_mse",
    "expected_speedup",
    "allocation_from_estimates",
    "bounded_allocation",
    "integerize_allocation",
    "solve_minimax_single_oracle",
    "solve_minimax_multi_oracle",
]

_EPS = 1e-12


def _validate_p_sigma(p: np.ndarray, sigma: np.ndarray) -> None:
    if p.shape != sigma.shape:
        raise ValueError(
            f"p and sigma must have the same shape, got {p.shape} vs {sigma.shape}"
        )
    if p.ndim != 1 or p.size == 0:
        raise ValueError("p and sigma must be non-empty 1-D arrays")
    if np.any(p < 0) or np.any(p > 1):
        raise ValueError("per-stratum positive rates must lie in [0, 1]")
    if np.any(sigma < 0):
        raise ValueError("per-stratum standard deviations must be non-negative")


def optimal_allocation(
    p: Sequence[float], sigma: Sequence[float]
) -> np.ndarray:
    """Proposition 1: ``T*_k = sqrt(p_k) sigma_k / sum_i sqrt(p_i) sigma_i``.

    If every stratum has ``sqrt(p_k) * sigma_k == 0`` (no signal at all) the
    allocation falls back to uniform across strata, which is the only
    sensible choice and keeps downstream code free of special cases.
    """
    p_arr = np.asarray(p, dtype=float)
    sigma_arr = np.asarray(sigma, dtype=float)
    _validate_p_sigma(p_arr, sigma_arr)
    weights = np.sqrt(p_arr) * sigma_arr
    total = weights.sum()
    if total == 0:
        return np.full(p_arr.shape, 1.0 / p_arr.size)
    return weights / total


def optimal_stratified_mse(
    p: Sequence[float], sigma: Sequence[float], budget: int
) -> float:
    """Proposition 2: MSE under the optimal allocation.

    ``MSE = (sum_k sqrt(p_k) sigma_k)^2 / (N * p_all^2)``.

    Returns ``inf`` when ``p_all == 0`` (no stratum contains positives — the
    query's predicate selects nothing and no sampling strategy can help).
    """
    p_arr = np.asarray(p, dtype=float)
    sigma_arr = np.asarray(sigma, dtype=float)
    _validate_p_sigma(p_arr, sigma_arr)
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    p_all = p_arr.sum()
    denominator = budget * p_all**2
    if denominator == 0:
        return float("inf")
    numerator = (np.sqrt(p_arr) * sigma_arr).sum() ** 2
    return float(numerator / denominator)


def uniform_sampling_mse(
    p: Sequence[float], sigma: Sequence[float], budget: int,
    mu: Sequence[float] = None,
) -> float:
    """MSE of uniform sampling with deterministic draws (Section 4.2).

    The paper states the rate ``sigma^2 / (N * p_avg)`` where ``sigma^2`` is
    the overall variance of the statistic among positive records and
    ``p_avg = sum_k p_k / K``.  When per-stratum means are provided the
    overall variance includes the between-strata component (law of total
    variance); otherwise we use the p-weighted average of within-stratum
    variances, which is exact when all strata share the same mean.
    """
    p_arr = np.asarray(p, dtype=float)
    sigma_arr = np.asarray(sigma, dtype=float)
    _validate_p_sigma(p_arr, sigma_arr)
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    p_all = p_arr.sum()
    if p_all == 0:
        return float("inf")
    p_avg = p_all / p_arr.size
    weights = p_arr / p_all
    within = float(np.dot(weights, sigma_arr**2))
    if mu is not None:
        mu_arr = np.asarray(mu, dtype=float)
        if mu_arr.shape != p_arr.shape:
            raise ValueError("mu must have the same shape as p")
        overall_mean = float(np.dot(weights, mu_arr))
        between = float(np.dot(weights, (mu_arr - overall_mean) ** 2))
    else:
        between = 0.0
    overall_variance = within + between
    return float(overall_variance / (budget * p_avg))


def expected_speedup(
    p: Sequence[float], sigma: Sequence[float], mu: Sequence[float] = None
) -> float:
    """Ratio of uniform-sampling MSE to optimal stratified MSE (budget cancels).

    This is the "relative gain of using a given proxy" formula the paper
    uses for proxy selection; a value of 2.0 means the stratification is
    expected to need half as many oracle calls for the same error.
    """
    stratified = optimal_stratified_mse(p, sigma, budget=1)
    uniform = uniform_sampling_mse(p, sigma, budget=1, mu=mu)
    if stratified == 0:
        return float("inf")
    if not np.isfinite(stratified) or not np.isfinite(uniform):
        return 1.0
    return float(uniform / stratified)


def allocation_from_estimates(estimates) -> np.ndarray:
    """Stage-2 allocation from plug-in estimates (Algorithm 1, line 14)."""
    p = np.array([e.p_hat for e in estimates], dtype=float)
    sigma = np.array([e.sigma_hat for e in estimates], dtype=float)
    return optimal_allocation(p, sigma)


def bounded_allocation(
    weights: Sequence[float], total: int, capacities: Sequence[int]
) -> List[int]:
    """Proportional integer allocation that respects per-stratum capacities.

    Strata are finite; Stage 2 cannot draw more records from a stratum than
    remain unsampled.  We allocate proportionally, clip at each capacity,
    and redistribute the clipped budget among strata that still have room,
    repeating until either the budget is exhausted or no capacity remains.
    """
    caps = np.asarray(capacities, dtype=np.int64)
    w = np.asarray(weights, dtype=float)
    if caps.shape != w.shape:
        raise ValueError("weights and capacities must have the same shape")
    allocation = np.zeros_like(caps)
    remaining_budget = int(total)
    active = caps > 0
    while remaining_budget > 0 and active.any():
        active_weights = np.where(active, w, 0.0)
        if active_weights.sum() == 0:
            active_weights = active.astype(float)
        proposal = np.array(
            proportional_integer_allocation(active_weights, remaining_budget),
            dtype=np.int64,
        )
        headroom = caps - allocation
        granted = np.minimum(proposal, headroom)
        if granted.sum() == 0:
            # Weights point only at full strata; spread one sample at a time.
            for k in np.nonzero(headroom > 0)[0]:
                if remaining_budget == 0:
                    break
                allocation[k] += 1
                remaining_budget -= 1
            break
        allocation += granted
        remaining_budget -= int(granted.sum())
        active = (caps - allocation) > 0
    return allocation.tolist()


def integerize_allocation(weights: Sequence[float], total: int) -> List[int]:
    """Largest-remainder integer split of ``total`` according to ``weights``.

    The group-by extension uses this to turn the minimax Λ (a point on the
    probability simplex) into per-group Stage-2 draw counts that sum to the
    Stage-2 budget exactly.
    """
    return proportional_integer_allocation(weights, total)


def solve_minimax_single_oracle(error_terms: np.ndarray, n2: int) -> np.ndarray:
    """Minimize Eq. 10 over Λ on the probability simplex.

    ``error_terms[l, g]`` is the per-(stratification, group) S term of
    Eq. 10; every stratification's estimator informs every group (the
    single-oracle setting reveals each drawn record's group key), so a
    group's combined variance is the inverse-variance combination across
    stratifications and the objective is the worst group's.

    Degenerate groups are excluded from the worst-case before the solver
    runs: a group whose every S term is non-finite (no positives drawn
    anywhere — the empty-group case) cannot be helped by *any*
    allocation, and a group with a zero S term is already estimated with
    zero variance.  Pre-guard, either case froze the objective at a
    constant (``inf``), starving the Nelder–Mead simplex of any descent
    signal — it churned through inf-inf = NaN arithmetic for the full
    iteration budget and returned an arbitrary Λ.  When no informative
    group remains the allocation falls back to uniform.
    """
    from repro.optim.simplex import minimize_on_simplex

    error_terms = np.asarray(error_terms, dtype=float)
    if error_terms.ndim != 2 or error_terms.shape[0] != error_terms.shape[1]:
        raise ValueError(
            f"error_terms must be a square (stratification x group) matrix, "
            f"got shape {error_terms.shape}"
        )
    num_groups = error_terms.shape[0]
    # A (stratification, group) cell is usable when its S term is finite
    # and positive; a group is informative when any of its cells is (zero
    # terms mean zero variance: nothing to optimize).  Both masks are
    # computed once — the solver evaluates the objective hundreds of
    # times, so the per-evaluation work is one vectorized kernel call
    # instead of a nested Python loop.
    usable = np.isfinite(error_terms) & (error_terms > 0)
    informative = usable.any(axis=0)
    if not informative.any():
        return np.full(num_groups, 1.0 / num_groups)
    kernels = kernel_set()

    def objective(lam: np.ndarray) -> float:
        return kernels.minimax_single_objective(
            error_terms, usable, informative, lam, n2, _EPS
        )

    result = minimize_on_simplex(objective, num_groups)
    return result.x


def solve_minimax_multi_oracle(error_terms: np.ndarray, n2: int) -> np.ndarray:
    """Minimize Eq. 11 over Λ on the probability simplex.

    ``error_terms[g]`` is group *g*'s S term; with per-group membership
    oracles a sample drawn for one group informs no other, so each group's
    variance depends only on its own budget share and the objective is the
    worst single group.

    As in the single-oracle solver, groups whose S term is non-finite
    (empty / all-negative groups no allocation can help) are excluded
    from the worst-case so they cannot freeze the objective at a
    constant ``inf``; with no informative group left, Λ is uniform.
    """
    from repro.optim.simplex import minimize_on_simplex

    error_terms = np.asarray(error_terms, dtype=float)
    if error_terms.ndim != 1 or error_terms.size == 0:
        raise ValueError(
            f"error_terms must be a non-empty 1-D vector, got shape "
            f"{error_terms.shape}"
        )
    num_groups = error_terms.shape[0]
    informative = np.isfinite(error_terms) & (error_terms > 0)
    if not informative.any():
        return np.full(num_groups, 1.0 / num_groups)
    kernels = kernel_set()

    def objective(lam: np.ndarray) -> float:
        return kernels.minimax_multi_objective(
            error_terms, informative, lam, n2, _EPS
        )

    result = minimize_on_simplex(objective, num_groups)
    return result.x
