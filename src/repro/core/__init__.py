"""Core ABae algorithms: the paper's primary contribution.

Public surface:

* :class:`~repro.core.abae.ABae` / :func:`~repro.core.abae.run_abae` —
  single-predicate aggregation (Algorithm 1);
* :mod:`~repro.core.adaptive` — bandit-style sequential re-allocation and the
  sample-until-CI-width-target driver (the paper's deferred extensions);
* :func:`~repro.core.uniform.run_uniform` — the uniform-sampling baseline;
* :func:`~repro.core.bootstrap.bootstrap_confidence_interval` — Algorithm 2;
* :mod:`~repro.core.allocation` — Propositions 1–2 closed forms;
* :mod:`~repro.core.multipred` — ABae-MultiPred (complex predicates);
* :mod:`~repro.core.groupby` — ABae-GroupBy (single / multiple oracles);
* :mod:`~repro.core.proxy_selection` — proxy ranking and combination;
* :mod:`~repro.core.batching` / :mod:`~repro.core.parallel` — the batched,
  worker-pool execution engine under every sampler's oracle hot path.
"""

from repro.core.abae import ABae, run_abae
from repro.core.adaptive import run_abae_sequential, run_abae_until_width
from repro.core.allocation import (
    allocation_from_estimates,
    bounded_allocation,
    expected_speedup,
    integerize_allocation,
    optimal_allocation,
    optimal_stratified_mse,
    solve_minimax_multi_oracle,
    solve_minimax_single_oracle,
    uniform_sampling_mse,
)
from repro.core.bootstrap import bootstrap_confidence_interval, bootstrap_estimates
from repro.core.estimators import (
    combine_estimates,
    estimate_all_strata,
    estimate_mse_plugin,
    estimate_stratum,
)
from repro.core.groupby import (
    GroupSpec,
    run_groupby_multi_oracle,
    run_groupby_single_oracle,
)
from repro.core.multipred import (
    And,
    Not,
    Or,
    PredicateExpr,
    PredicateLeaf,
    run_abae_multipred,
)
from repro.core.parallel import (
    ParallelOracle,
    parallel_map,
    parallelize_oracle,
    resolve_num_workers,
    shard_slices,
    shutdown_worker_pools,
)
from repro.core.proxy_selection import (
    PilotSample,
    ProxyScore,
    combine_proxies,
    draw_pilot_sample,
    rank_proxies,
    select_proxy,
)
from repro.core.results import ConfidenceInterval, EstimateResult, GroupByResult
from repro.core.stratification import Stratification
from repro.core.types import SamplingBudget, StratumEstimate, StratumSample
from repro.core.uniform import UniformSampler, run_uniform

__all__ = [
    "ABae",
    "run_abae",
    "run_abae_sequential",
    "run_abae_until_width",
    "UniformSampler",
    "run_uniform",
    "bootstrap_confidence_interval",
    "bootstrap_estimates",
    "optimal_allocation",
    "optimal_stratified_mse",
    "uniform_sampling_mse",
    "expected_speedup",
    "allocation_from_estimates",
    "bounded_allocation",
    "integerize_allocation",
    "solve_minimax_single_oracle",
    "solve_minimax_multi_oracle",
    "combine_estimates",
    "estimate_all_strata",
    "estimate_stratum",
    "estimate_mse_plugin",
    "GroupSpec",
    "run_groupby_single_oracle",
    "run_groupby_multi_oracle",
    "PredicateExpr",
    "PredicateLeaf",
    "And",
    "Or",
    "Not",
    "run_abae_multipred",
    "ParallelOracle",
    "parallel_map",
    "parallelize_oracle",
    "resolve_num_workers",
    "shard_slices",
    "shutdown_worker_pools",
    "PilotSample",
    "ProxyScore",
    "draw_pilot_sample",
    "rank_proxies",
    "select_proxy",
    "combine_proxies",
    "ConfidenceInterval",
    "EstimateResult",
    "GroupByResult",
    "Stratification",
    "SamplingBudget",
    "StratumEstimate",
    "StratumSample",
]
