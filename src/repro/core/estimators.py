"""Plug-in estimators for the per-stratum quantities of Algorithm 1.

Given the records sampled from a stratum, these functions compute the
hatted quantities of Table 1: the predicate positive rate ``p_hat_k``, the
mean of the statistic over positive records ``mu_hat_k``, and its standard
deviation ``sigma_hat_k`` — with the paper's conventions for empty and
singleton samples (zero mean / zero variance).  The final combined estimate
``sum_k p_hat_k mu_hat_k / sum_k p_hat_k`` also lives here so the sampler,
the bootstrap, and the group-by extension share a single definition.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.types import StratumEstimate, StratumSample
from repro.stats.descriptive import safe_mean, safe_std

__all__ = [
    "estimate_stratum",
    "estimate_all_strata",
    "estimate_arrays",
    "combine_estimates",
    "combined_estimate_from_samples",
    "estimate_mse_plugin",
]


def estimate_stratum(sample: StratumSample) -> StratumEstimate:
    """Compute (p_hat, mu_hat, sigma_hat) for one stratum's samples."""
    num_draws = sample.num_draws
    num_positive = sample.num_positive
    if num_draws == 0:
        p_hat = 0.0
    else:
        p_hat = num_positive / num_draws
    positives = sample.positive_values
    mu_hat = safe_mean(positives, default=0.0)
    sigma_hat = safe_std(positives, ddof=1, default=0.0)
    return StratumEstimate(
        stratum=sample.stratum,
        p_hat=float(p_hat),
        mu_hat=float(mu_hat),
        sigma_hat=float(sigma_hat),
        num_draws=num_draws,
        num_positive=num_positive,
    )


def estimate_all_strata(samples: Sequence[StratumSample]) -> List[StratumEstimate]:
    """Per-stratum estimates for every stratum, in stratum order."""
    return [estimate_stratum(sample) for sample in samples]


def estimate_arrays(samples: Sequence[StratumSample]):
    """``(p, mu, sigma, draws)`` columns over strata, as float64 ndarrays.

    Field-for-field bit-identical to building :class:`StratumEstimate`
    objects with :func:`estimate_all_strata` and re-collecting their
    attributes into arrays — the same ``safe_mean`` / ``safe_std``
    reductions run per stratum — but without allocating the objects or
    the per-attribute list comprehensions.  This is the sequential
    policy's per-reallocation hot path.
    """
    num_strata = len(samples)
    p = np.empty(num_strata, dtype=float)
    mu = np.empty(num_strata, dtype=float)
    sigma = np.empty(num_strata, dtype=float)
    draws = np.empty(num_strata, dtype=float)
    for k, sample in enumerate(samples):
        num_draws = sample.num_draws
        p[k] = (sample.num_positive / num_draws) if num_draws else 0.0
        positives = sample.positive_values
        mu[k] = safe_mean(positives, default=0.0)
        sigma[k] = safe_std(positives, ddof=1, default=0.0)
        draws[k] = float(num_draws)
    return p, mu, sigma, draws


def combine_estimates(estimates: Sequence[StratumEstimate]) -> float:
    """The final ABae estimate ``sum_k p_hat_k mu_hat_k / sum_k p_hat_k``.

    Strata where no positive record was drawn contribute ``p_hat_k = 0`` and
    drop out automatically.  When *no* stratum produced a positive record
    the estimate is defined as 0.0, matching the convention in
    :func:`repro.stats.descriptive.weighted_mean`.

    Note this assumes equal-size strata (quantile stratification), where the
    within-stratum positive rate is proportional to the stratum's share of
    all positive records.  For unequal strata the weights are scaled by
    stratum size, handled by passing ``weights``-adjusted estimates from the
    caller (see :func:`combined_estimate_from_samples`).
    """
    p_hats = np.array([e.p_hat for e in estimates], dtype=float)
    mu_hats = np.array([e.mu_hat for e in estimates], dtype=float)
    denominator = p_hats.sum()
    if denominator == 0:
        return 0.0
    return float(np.dot(p_hats, mu_hats) / denominator)


def combined_estimate_from_samples(
    samples: Sequence[StratumSample],
    stratum_weights: Sequence[float] = None,
) -> float:
    """Combined estimate straight from samples, optionally size-weighted.

    ``stratum_weights`` is the fraction of the dataset in each stratum; when
    omitted all strata are assumed the same size (true for quantile
    stratification up to rounding, and exactly what Algorithm 1 assumes).
    """
    estimates = estimate_all_strata(samples)
    p_hats = np.array([e.p_hat for e in estimates], dtype=float)
    mu_hats = np.array([e.mu_hat for e in estimates], dtype=float)
    if stratum_weights is not None:
        w = np.asarray(stratum_weights, dtype=float)
        if w.shape != p_hats.shape:
            raise ValueError(
                f"stratum_weights has shape {w.shape}, expected {p_hats.shape}"
            )
        p_hats = p_hats * w
    denominator = p_hats.sum()
    if denominator == 0:
        return 0.0
    return float(np.dot(p_hats, mu_hats) / denominator)


def estimate_mse_plugin(
    estimates: Sequence[StratumEstimate],
    stage2_draws: Sequence[int],
) -> float:
    """Plug-in estimate of the estimator's MSE (Proposition 3's leading term).

    ``sum_k w_hat_k^2 * sigma_hat_k^2 / max(positive draws in stratum k, 1)``
    where ``w_hat_k = p_hat_k / sum(p_hat)``.  Used by the group-by
    extension to weight per-stratification estimates by inverse variance.
    """
    p_hats = np.array([e.p_hat for e in estimates], dtype=float)
    sigma_hats = np.array([e.sigma_hat for e in estimates], dtype=float)
    draws = np.asarray(stage2_draws, dtype=float)
    if draws.shape != p_hats.shape:
        raise ValueError(
            f"stage2_draws has shape {draws.shape}, expected {p_hats.shape}"
        )
    p_all = p_hats.sum()
    if p_all == 0:
        return float("inf")
    w_hats = p_hats / p_all
    expected_positives = np.maximum(p_hats * draws, 1.0)
    return float(np.sum(w_hats**2 * sigma_hats**2 / expected_positives))
