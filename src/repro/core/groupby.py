"""ABae-GroupBy: aggregation queries with a group-by key (Section 3.2, 4.5).

Two settings are supported, mirroring the paper:

* **Single oracle** (:func:`run_groupby_single_oracle`) — one oracle call
  returns the record's group key directly, so a sample drawn for any group
  informs every group.  Stage 1 samples uniformly; Stage 2 splits the
  budget across the per-group stratifications by minimizing the minimax
  error objective of Eq. 10, and the final per-group estimates combine the
  per-stratification estimators by inverse-variance weighting.

* **Multiple oracles** (:func:`run_groupby_multi_oracle`) — each group has
  its own binary membership oracle; samples drawn for group *g* only inform
  group *g*.  Stage 1 pilots each group independently; Stage 2 splits the
  budget across groups by minimizing Eq. 11.

Both functions accept ``allocation_method`` of ``"minimax"`` (the paper's
method), ``"equal"`` (equal budget per group / stratification — the
"Equal" baseline in Figures 7–8), or ``"uniform"`` (no stratification at
all: plain uniform sampling, the "Uniform" baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Union

import numpy as np

from repro.core.abae import (
    StatisticLike,
    _normalize_statistic,
    run_abae,
)
from repro.core.allocation import (
    bounded_allocation,
    integerize_allocation,
    optimal_allocation,
    solve_minimax_multi_oracle,
    solve_minimax_single_oracle,
)
from repro.core.batching import (
    batch_slices,
    statistic_batch,
)
from repro.core.parallel import parallelize_oracle
from repro.engine.builders import exploit_continuation_pipeline
from repro.engine.config import (
    UNSET,
    ExecutionConfig,
    resolve_execution_config,
    resolve_kernel_set,
)
from repro.kernels import KernelSet, kernel_set
from repro.oracle.base import evaluate_oracle_batch
from repro.core.estimators import (
    combine_estimates,
    estimate_all_strata,
    estimate_mse_plugin,
)
from repro.core.results import EstimateResult, GroupByResult
from repro.core.stratification import Stratification
from repro.core.uniform import run_uniform
from repro.oracle.groupkey import GroupKeyOracle, PerGroupOracles, membership_column
from repro.proxy.base import Proxy, memoized_proxy_object
from repro.stats.descriptive import safe_mean
from repro.stats.rng import RandomState
from repro.stats.sampling import sample_without_replacement
from repro.core.types import StratumSample

__all__ = [
    "GroupSpec",
    "run_groupby_single_oracle",
    "run_groupby_multi_oracle",
]

_EPS = 1e-12

VALID_ALLOCATION_METHODS = ("minimax", "equal", "uniform")


@dataclass
class GroupSpec:
    """One group of a GROUP BY query: its key and its proxy."""

    key: Hashable
    proxy: Union[Proxy, Sequence[float]]

    def proxy_object(self) -> Proxy:
        """The group's proxy as a :class:`Proxy` (memoized).

        Raw score sequences are wrapped once and reused, so repeated
        stratifications of the same group hit the plan-level cache by
        proxy identity instead of re-wrapping (and re-fingerprinting) the
        scores every run.
        """
        return memoized_proxy_object(self, self.proxy, name=f"proxy[{self.key}]")


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _validate_allocation_method(method: str) -> None:
    if method not in VALID_ALLOCATION_METHODS:
        raise ValueError(
            f"unknown allocation_method {method!r}; expected one of "
            f"{VALID_ALLOCATION_METHODS}"
        )


class _DrawLog:
    """Columnar log of labelled draws: indices / revealed keys / statistics.

    Replaces the per-record ``_LabelledDraw`` dataclass list: draws are
    appended one *batch* at a time (a few bulk array appends) and exposed
    as three aligned columns.  Group membership columns — the expensive
    per-draw Python ``==`` against arbitrary hashable keys — are memoized
    per group; an append invalidates the memo, so each column is rebuilt
    (over all draws) at most once per group per sampling stage, and the
    bucketing of draws into (group, stratification) samples stays pure
    NumPy.
    """

    __slots__ = ("_index_chunks", "_key_chunks", "_value_chunks", "_columns", "_membership")

    def __init__(self):
        self._index_chunks: List[np.ndarray] = []
        self._key_chunks: List[np.ndarray] = []
        self._value_chunks: List[np.ndarray] = []
        self._columns = None
        self._membership: Dict[Hashable, np.ndarray] = {}

    def __len__(self) -> int:
        return sum(c.shape[0] for c in self._index_chunks)

    def append(self, indices: np.ndarray, keys: Sequence[Hashable], values: np.ndarray) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        if idx.shape[0] == 0:
            return
        key_col = np.empty(idx.shape[0], dtype=object)
        key_col[:] = keys  # per-element fill keeps tuples and Nones intact
        self._index_chunks.append(idx)
        self._key_chunks.append(key_col)
        self._value_chunks.append(np.asarray(values, dtype=float))
        self._columns = None
        self._membership.clear()

    def columns(self):
        """The (indices, keys, values) columns, concatenated lazily."""
        if self._columns is None:
            if self._index_chunks:
                self._columns = (
                    np.concatenate(self._index_chunks),
                    np.concatenate(self._key_chunks),
                    np.concatenate(self._value_chunks),
                )
            else:
                self._columns = (
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=object),
                    np.empty(0, dtype=float),
                )
        return self._columns

    def membership(self, group: Hashable) -> np.ndarray:
        """Boolean column: does each draw's revealed key equal ``group``?"""
        cached = self._membership.get(group)
        if cached is None:
            _, keys, _ = self.columns()
            cached = membership_column(keys, group)
            self._membership[group] = cached
        return cached


def _label_group_draws(
    record_indices: np.ndarray,
    oracle: GroupKeyOracle,
    statistic_fn: Callable[[int], float],
    group_keys: Sequence[Hashable],
    batch_size: Optional[int],
):
    """Reveal group keys for drawn records through the batched engine.

    Returns the ``(indices, keys, values)`` columns for the drawn records;
    the statistic is only extracted for records whose revealed key belongs
    to one of the query's groups, mirroring the sequential path exactly.
    ``batch_size=1`` reproduces the legacy per-record oracle calls.
    """
    idx = np.asarray(record_indices, dtype=np.int64)
    if batch_size == 1:
        keys: List[Hashable] = []
        values = np.full(idx.shape[0], np.nan, dtype=float)
        key_set = set(group_keys)
        for i, record_index in enumerate(idx.tolist()):
            key = oracle(record_index)
            keys.append(key)
            if key in key_set:
                values[i] = float(statistic_fn(record_index))
        return idx, keys, values
    key_set = set(group_keys)
    all_keys: List[Hashable] = []
    values = np.full(idx.shape[0], np.nan, dtype=float)
    for chunk in batch_slices(idx.shape[0], batch_size):
        chunk_idx = idx[chunk]
        chunk_keys = evaluate_oracle_batch(oracle, chunk_idx)
        in_group = np.fromiter(
            (k in key_set for k in chunk_keys), dtype=bool, count=len(chunk_keys)
        )
        if in_group.any():
            # ``values[chunk]`` is a slice view; writing through it fills
            # the right rows of the full column.
            values[chunk][in_group] = statistic_batch(
                statistic_fn, chunk_idx[in_group]
            )
        all_keys.extend(chunk_keys)
    return idx, all_keys, values


def _draws_to_stratum_samples(
    log: _DrawLog,
    group: Hashable,
    assignment: np.ndarray,
    num_strata: int,
    kernels: Optional[KernelSet] = None,
) -> List[StratumSample]:
    """Bucket labelled draws into strata of one stratification, for one group.

    One stratum-assignment gather, one memoized group membership column,
    and the ``bucket_by_stratum`` kernel (see :mod:`repro.kernels`) —
    draw order is preserved within each stratum, exactly as the
    per-record append loop produced.
    """
    if kernels is None:
        kernels = kernel_set()
    indices, _, values = log.columns()
    matched = log.membership(group)
    buckets = kernels.bucket_by_stratum(
        assignment, indices, matched, values, num_strata
    )
    return [
        StratumSample(stratum=k, indices=idx, matches=match, values=vals)
        for k, (idx, match, vals) in enumerate(buckets)
    ]


def _per_group_estimates(
    log: _DrawLog,
    groups: Sequence[Hashable],
    assignment: np.ndarray,
    num_strata: int,
    kernels: Optional[KernelSet] = None,
) -> Dict[Hashable, List]:
    """Per-group, per-stratum plug-in estimates from labelled draws."""
    estimates: Dict[Hashable, List] = {}
    for group in groups:
        samples = _draws_to_stratum_samples(
            log, group, assignment, num_strata, kernels=kernels
        )
        estimates[group] = estimate_all_strata(samples)
    return estimates


def _stratification_error_term(
    estimates: Sequence, allocation: np.ndarray
) -> float:
    """The S term of Eqs. 10–11: sum_k w_hat_k^2 sigma_hat_k^2 / (p_hat_k T_k).

    Multiplying by 1 / (Λ_l N2) gives the per-stratification, per-group
    variance estimate.  Guarded so strata with no information contribute
    nothing rather than dividing by zero.
    """
    p = np.array([e.p_hat for e in estimates], dtype=float)
    sigma = np.array([e.sigma_hat for e in estimates], dtype=float)
    p_all = p.sum()
    if p_all == 0:
        return float("inf")
    w = p / p_all
    denom = p * np.maximum(allocation, _EPS)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(p > 0, w**2 * sigma**2 / np.maximum(denom, _EPS), 0.0)
    return float(terms.sum())


# ---------------------------------------------------------------------------
# Single-oracle setting
# ---------------------------------------------------------------------------


def run_groupby_single_oracle(
    groups: Sequence[GroupSpec],
    oracle: GroupKeyOracle,
    statistic: StatisticLike,
    budget: int,
    num_strata: int = 5,
    stage1_fraction: float = 0.5,
    allocation_method: str = "minimax",
    rng: Optional[RandomState] = None,
    batch_size=UNSET,
    num_workers=UNSET,
    parallel_backend=UNSET,
    config: Optional[ExecutionConfig] = None,
) -> GroupByResult:
    """GROUP BY estimation when one oracle call reveals the group key.

    ``budget`` is the total number of oracle invocations.  Returns per-group
    estimates plus the Stage-2 allocation Λ chosen for each stratification.
    ``config`` carries the execution knobs (oracle batching, worker-pool
    sharding — see :mod:`repro.engine`); the per-knob kwargs are deprecated
    aliases.  No knob ever changes results.
    """
    config = resolve_execution_config(
        config,
        "run_groupby_single_oracle",
        stacklevel=3,
        batch_size=batch_size,
        num_workers=num_workers,
        parallel_backend=parallel_backend,
    )
    batch_size = config.batch_size
    kernels = resolve_kernel_set(config)
    _validate_allocation_method(allocation_method)
    if not groups:
        raise ValueError("run_groupby_single_oracle requires at least one group")
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    rng = config.make_rng(rng)
    oracle = parallelize_oracle(
        oracle, config.num_workers, config.parallel_backend
    )
    statistic_fn = _normalize_statistic(statistic)
    group_keys = [g.key for g in groups]
    num_groups = len(groups)

    proxies = [g.proxy_object() for g in groups]
    num_records = len(proxies[0])
    if any(len(p) != num_records for p in proxies):
        raise ValueError("all group proxies must score the same number of records")

    if allocation_method == "uniform":
        return _groupby_uniform_single_oracle(
            group_keys, oracle, statistic_fn, budget, num_records, rng, batch_size
        )

    stratifications = [
        Stratification.by_proxy_quantile(proxy, num_strata) for proxy in proxies
    ]
    assignments = [s.stratum_of() for s in stratifications]

    # ---- Stage 1: uniform pilot over the whole dataset --------------------------
    n1 = int(np.floor(budget * stage1_fraction))
    n2 = budget - n1
    pilot_indices = sample_without_replacement(
        np.arange(num_records, dtype=np.int64), n1, rng
    )
    log = _DrawLog()
    log.append(*_label_group_draws(
        pilot_indices, oracle, statistic_fn, group_keys, batch_size
    ))
    drawn_mask = np.zeros(num_records, dtype=bool)
    drawn_mask[pilot_indices] = True

    # ---- Per-stratification estimates and within-stratification allocations -----
    per_strat_estimates = [
        _per_group_estimates(
            log, group_keys, assignments[l], num_strata, kernels=kernels
        )
        for l in range(num_groups)
    ]
    within_allocations = []
    for l, group in enumerate(group_keys):
        own_estimates = per_strat_estimates[l][group]
        p = np.array([e.p_hat for e in own_estimates])
        sigma = np.array([e.sigma_hat for e in own_estimates])
        within_allocations.append(optimal_allocation(p, sigma))

    error_terms = np.zeros((num_groups, num_groups))  # [stratification l, group g]
    for l in range(num_groups):
        for g, group in enumerate(group_keys):
            error_terms[l, g] = _stratification_error_term(
                per_strat_estimates[l][group], within_allocations[l]
            )

    # ---- Choose Λ across stratifications -----------------------------------------
    if allocation_method == "equal" or n2 == 0:
        lam = np.full(num_groups, 1.0 / num_groups)
    else:
        lam = solve_minimax_single_oracle(error_terms, n2)

    # ---- Stage 2: sample each stratification with its share of the budget --------
    lam_counts = integerize_allocation(lam, n2)
    for l in range(num_groups):
        stratification = stratifications[l]
        # Dataset-length membership mask instead of np.isin per stratum:
        # one O(1) gather per candidate rather than a sort per stratum.
        fresh_per_stratum = [
            kernels.filter_undrawn(stratification.stratum(k), drawn_mask)
            for k in range(num_strata)
        ]
        capacities = [int(fresh.size) for fresh in fresh_per_stratum]
        counts = bounded_allocation(within_allocations[l], lam_counts[l], capacities)
        for k in range(num_strata):
            chosen = sample_without_replacement(fresh_per_stratum[k], counts[k], rng)
            log.append(*_label_group_draws(
                chosen, oracle, statistic_fn, group_keys, batch_size
            ))
            drawn_mask[chosen] = True

    # ---- Combine: inverse-variance weighting across stratifications --------------
    total_draws = len(log)
    group_results: Dict[Hashable, EstimateResult] = {}
    for group in group_keys:
        estimates_per_l = []
        variances_per_l = []
        samples_per_l = []
        for l in range(num_groups):
            samples = _draws_to_stratum_samples(
                log, group, assignments[l], num_strata, kernels=kernels
            )
            estimates = estimate_all_strata(samples)
            stage_draws = [s.num_draws for s in samples]
            mse = estimate_mse_plugin(estimates, stage_draws)
            estimates_per_l.append(combine_estimates(estimates))
            variances_per_l.append(mse)
            samples_per_l.append(samples)
        estimate = _inverse_variance_combine(estimates_per_l, variances_per_l)
        group_results[group] = EstimateResult(
            estimate=estimate,
            oracle_calls=total_draws,
            samples=[s for samples in samples_per_l for s in samples],
            method=f"abae-groupby-single-{allocation_method}",
            details={
                "per_stratification_estimates": estimates_per_l,
                "per_stratification_variances": variances_per_l,
            },
        )

    return GroupByResult(
        group_results=group_results,
        allocation={group_keys[l]: float(lam[l]) for l in range(num_groups)},
        oracle_calls=total_draws,
        method=f"abae-groupby-single-{allocation_method}",
        details={"stage1_draws": n1, "stage2_draws": n2},
    )


def _groupby_uniform_single_oracle(
    group_keys: Sequence[Hashable],
    oracle: GroupKeyOracle,
    statistic_fn: Callable[[int], float],
    budget: int,
    num_records: int,
    rng: RandomState,
    batch_size: Optional[int] = None,
) -> GroupByResult:
    """The Uniform baseline: one uniform sample, split by revealed group key."""
    indices = sample_without_replacement(
        np.arange(num_records, dtype=np.int64), budget, rng
    )
    log = _DrawLog()
    log.append(*_label_group_draws(
        indices, oracle, statistic_fn, group_keys, batch_size
    ))
    _, _, values = log.columns()
    group_results = {
        group: EstimateResult(
            estimate=safe_mean(values[log.membership(group)]),
            oracle_calls=len(indices),
            method="uniform-groupby-single",
        )
        for group in group_keys
    }
    return GroupByResult(
        group_results=group_results,
        allocation={g: 1.0 / len(group_keys) for g in group_keys},
        oracle_calls=len(indices),
        method="uniform-groupby-single",
    )


# ---------------------------------------------------------------------------
# Multiple-oracle setting
# ---------------------------------------------------------------------------


def run_groupby_multi_oracle(
    groups: Sequence[GroupSpec],
    oracles: Union[PerGroupOracles, Dict[Hashable, Callable[[int], bool]]],
    statistic: StatisticLike,
    budget: int,
    num_strata: int = 5,
    stage1_fraction: float = 0.5,
    allocation_method: str = "minimax",
    rng: Optional[RandomState] = None,
    batch_size=UNSET,
    num_workers=UNSET,
    parallel_backend=UNSET,
    config: Optional[ExecutionConfig] = None,
) -> GroupByResult:
    """GROUP BY estimation when each group has its own membership oracle.

    ``budget`` is the *total* number of oracle invocations across all
    groups' oracles (the paper normalizes by the number of groups when
    plotting; the benchmark harness does the same).  ``config`` carries the
    execution knobs (the per-knob kwargs are deprecated aliases); no knob
    changes results.
    """
    config = resolve_execution_config(
        config,
        "run_groupby_multi_oracle",
        stacklevel=3,
        batch_size=batch_size,
        num_workers=num_workers,
        parallel_backend=parallel_backend,
    )
    _validate_allocation_method(allocation_method)
    if not groups:
        raise ValueError("run_groupby_multi_oracle requires at least one group")
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    rng = config.make_rng(rng)
    statistic_fn = _normalize_statistic(statistic)
    group_keys = [g.key for g in groups]
    num_groups = len(groups)

    def oracle_for(group: Hashable) -> Callable[[int], bool]:
        if isinstance(oracles, PerGroupOracles):
            return oracles.oracle_for(group)
        try:
            return oracles[group]
        except (KeyError, TypeError):
            raise ValueError(f"no oracle provided for group {group!r}") from None

    proxies = [g.proxy_object() for g in groups]
    num_records = len(proxies[0])
    if any(len(p) != num_records for p in proxies):
        raise ValueError("all group proxies must score the same number of records")

    per_group_budget = budget // num_groups

    if allocation_method == "uniform":
        group_results = {}
        total_calls = 0
        for spec, rng_child in zip(groups, rng.spawn(num_groups)):
            result = run_uniform(
                num_records=num_records,
                oracle=oracle_for(spec.key),
                statistic=statistic_fn,
                budget=per_group_budget,
                rng=rng_child,
                config=config,
            )
            result.method = "uniform-groupby-multi"
            group_results[spec.key] = result
            total_calls += result.oracle_calls
        return GroupByResult(
            group_results=group_results,
            allocation={g: 1.0 / num_groups for g in group_keys},
            oracle_calls=total_calls,
            method="uniform-groupby-multi",
        )

    # ---- Stage 1: pilot each group independently ---------------------------------
    stage1_per_group = int(np.floor(per_group_budget * stage1_fraction))
    stage2_total = budget - stage1_per_group * num_groups

    pilot_results = []
    for spec, rng_child in zip(groups, rng.spawn(num_groups)):
        pilot = run_abae(
            proxy=spec.proxy_object(),
            oracle=oracle_for(spec.key),
            statistic=statistic_fn,
            budget=stage1_per_group,
            num_strata=num_strata,
            stage1_fraction=1.0,  # the whole per-group pilot budget is Stage 1
            rng=rng_child,
            config=config,
        )
        pilot_results.append(pilot)

    error_terms = np.zeros(num_groups)
    within_allocations = []
    for g, pilot in enumerate(pilot_results):
        p = np.array([e.p_hat for e in pilot.strata_estimates])
        sigma = np.array([e.sigma_hat for e in pilot.strata_estimates])
        allocation = optimal_allocation(p, sigma)
        within_allocations.append(allocation)
        error_terms[g] = _stratification_error_term(
            pilot.strata_estimates, allocation
        )

    # ---- Choose Λ across groups ---------------------------------------------------
    if allocation_method == "equal" or stage2_total == 0:
        lam = np.full(num_groups, 1.0 / num_groups)
    else:
        lam = solve_minimax_multi_oracle(error_terms, stage2_total)

    lam_counts = integerize_allocation(lam, stage2_total)

    # ---- Stage 2: each group continues sampling with its share --------------------
    # Each group's continuation is the engine's shared exploitation
    # pipeline: prime a pool with the pilot samples, spend the group's Λ
    # share over strata proportional to its within-group allocation.
    group_results: Dict[Hashable, EstimateResult] = {}
    total_calls = 0
    for g, (spec, rng_child) in enumerate(zip(groups, rng.spawn(num_groups))):
        stratification = Stratification.by_proxy_quantile(
            spec.proxy_object(), num_strata
        )
        pipeline = exploit_continuation_pipeline(
            stratification=stratification,
            oracle=oracle_for(spec.key),
            statistic=statistic_fn,
            weights=within_allocations[g],
            stage2_total=lam_counts[g],
            initial_samples=pilot_results[g].samples,
            method=f"abae-groupby-multi-{allocation_method}",
            config=config,
        )
        result = pipeline.run(rng_child)
        total_calls += result.oracle_calls
        group_results[spec.key] = result

    return GroupByResult(
        group_results=group_results,
        allocation={group_keys[g]: float(lam[g]) for g in range(num_groups)},
        oracle_calls=total_calls,
        method=f"abae-groupby-multi-{allocation_method}",
        details={
            "stage1_per_group": stage1_per_group,
            "stage2_total": stage2_total,
        },
    )


# ---------------------------------------------------------------------------
# Small numeric helpers
# ---------------------------------------------------------------------------

# Compatibility aliases: the solvers and the integerizer were extracted to
# :mod:`repro.core.allocation` (where they have direct unit tests); keep the
# historical private names importable from here.
_solve_minimax_single_oracle = solve_minimax_single_oracle
_solve_minimax_multi_oracle = solve_minimax_multi_oracle
_integerize = integerize_allocation


def _inverse_variance_combine(
    estimates: Sequence[float], variances: Sequence[float]
) -> float:
    """Inverse-variance weighted average, robust to zero / infinite variances."""
    est = np.asarray(estimates, dtype=float)
    var = np.asarray(variances, dtype=float)
    finite = np.isfinite(var)
    if not finite.any():
        return float(est.mean()) if est.size else 0.0
    est, var = est[finite], var[finite]
    weights = 1.0 / np.maximum(var, _EPS)
    return float(np.dot(weights, est) / weights.sum())
