"""Optional numba-jitted kernel bodies.

Importing this module requires numba; the registry imports it lazily the
first time a ``"numba"`` kernel set is resolved and downgrades to the
NumPy reference when the import fails, so the package never hard-depends
on numba being installed.

Only the provably bit-exact kernels get a native body: integer/boolean
bookkeeping (gathers, binary-search mask updates, bucketing) and strictly
element-wise float arithmetic written to apply the same operations in the
same per-element order as the reference (no ``**`` — numba may route
``pow`` through libm; explicit multiplication matches NumPy's squaring
fast path bit-for-bit).  Kernels whose reference semantics include float
reductions or argsort tie-breaking are deliberately absent — they stay on
the reference implementation for every backend (see
:mod:`repro.kernels.reference`).
"""

from __future__ import annotations

from typing import List, Tuple

import numba
import numpy as np
from numba import njit

from repro.kernels.registry import register_kernel

__all__ = [
    "gather_candidates",
    "mark_drawn",
    "filter_undrawn",
    "bucket_by_stratum",
    "priority_core",
    "floor_spread",
    "NUMBA_VERSION",
]

NUMBA_VERSION = getattr(numba, "__version__", "unknown")


@njit(cache=True)
def _gather_candidates(stratum, available):
    n = stratum.shape[0]
    out = np.empty(n, np.int64)
    j = 0
    for i in range(n):
        if available[i]:
            out[j] = stratum[i]
            j += 1
    return out[:j]


@register_kernel("gather_candidates", backend="numba")
def gather_candidates(stratum: np.ndarray, available: np.ndarray) -> np.ndarray:
    return _gather_candidates(stratum, available)


@njit(cache=True)
def _mark_drawn(stratum, available, drawn):
    n = stratum.shape[0]
    for j in range(drawn.shape[0]):
        d = drawn[j]
        lo = 0
        hi = n
        while lo < hi:  # searchsorted(..., side="left")
            mid = (lo + hi) >> 1
            if stratum[mid] < d:
                lo = mid + 1
            else:
                hi = mid
        available[lo] = False
    return drawn.shape[0]


@register_kernel("mark_drawn", backend="numba")
def mark_drawn(
    stratum: np.ndarray, available: np.ndarray, drawn: np.ndarray
) -> int:
    return int(_mark_drawn(stratum, available, drawn))


@njit(cache=True)
def _filter_undrawn(stratum, drawn_mask):
    n = stratum.shape[0]
    out = np.empty(n, np.int64)
    j = 0
    for i in range(n):
        if not drawn_mask[stratum[i]]:
            out[j] = stratum[i]
            j += 1
    return out[:j]


@register_kernel("filter_undrawn", backend="numba")
def filter_undrawn(stratum: np.ndarray, drawn_mask: np.ndarray) -> np.ndarray:
    return _filter_undrawn(stratum, drawn_mask)


@njit(cache=True)
def _bucket_core(assignment, indices, matched, values, num_strata):
    n = indices.shape[0]
    counts = np.zeros(num_strata, np.int64)
    stratum_of = np.empty(n, np.int64)
    for i in range(n):
        k = assignment[indices[i]]
        stratum_of[i] = k
        counts[k] += 1
    offsets = np.zeros(num_strata + 1, np.int64)
    for k in range(num_strata):
        offsets[k + 1] = offsets[k] + counts[k]
    out_idx = np.empty(n, np.int64)
    out_match = np.empty(n, np.uint8)
    out_vals = np.empty(n, np.float64)
    cursor = offsets[:num_strata].copy()
    for i in range(n):
        k = stratum_of[i]
        pos = cursor[k]
        out_idx[pos] = indices[i]
        if matched[i]:
            out_match[pos] = 1
            out_vals[pos] = values[i]
        else:
            out_match[pos] = 0
            out_vals[pos] = np.nan
        cursor[k] += 1
    return offsets, out_idx, out_match, out_vals


@register_kernel("bucket_by_stratum", backend="numba")
def bucket_by_stratum(
    assignment: np.ndarray,
    indices: np.ndarray,
    matched: np.ndarray,
    values: np.ndarray,
    num_strata: int,
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    offsets, out_idx, out_match, out_vals = _bucket_core(
        assignment, indices, matched, values, num_strata
    )
    matches = out_match.view(np.bool_)
    out: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for k in range(num_strata):
        lo = int(offsets[k])
        hi = int(offsets[k + 1])
        out.append((out_idx[lo:hi], matches[lo:hi], out_vals[lo:hi]))
    return out


@njit(cache=True)
def _priority_core(p, sigma, mu, draws, p_all, mu_all):
    n = p.shape[0]
    out = np.empty(n, np.float64)
    for i in range(n):
        w = p[i] / p_all
        if p[i] > 0:
            within = (w * w) * (sigma[i] * sigma[i]) / max(p[i], 1e-12)
        else:
            within = 0.0
        d = (mu[i] - mu_all) / p_all
        weight_uncertainty = d * d * p[i] * (1.0 - p[i])
        contribution = (within + weight_uncertainty) / max(draws[i], 1.0)
        out[i] = contribution / max(draws[i] + 1.0, 1.0)
    return out


@register_kernel("priority_core", backend="numba")
def priority_core(
    p: np.ndarray,
    sigma: np.ndarray,
    mu: np.ndarray,
    draws: np.ndarray,
    p_all: float,
    mu_all: float,
) -> np.ndarray:
    return _priority_core(p, sigma, mu, draws, float(p_all), float(mu_all))


@njit(cache=True)
def _floor_spread(weights, batch):
    n = weights.shape[0]
    counts = np.empty(n, np.int64)
    total = 0
    best = 0
    for i in range(n):
        c = np.int64(np.floor(weights[i] * batch))
        counts[i] = c
        total += c
        if weights[i] > weights[best]:  # first-max, as np.argmax
            best = i
    counts[best] += batch - total
    return counts


@register_kernel("floor_spread", backend="numba")
def floor_spread(weights: np.ndarray, batch: int) -> np.ndarray:
    return _floor_spread(weights, int(batch))
