"""repro.kernels — registered sampler inner-loop kernels with dispatch.

The engine's per-draw hot loops (stratum pool gathers and mask updates,
the sequential policy's reallocation priority, group-by bucketing,
allocation integerization, bootstrap resampling, minimax objectives)
live here as named kernels with a pure-NumPy reference implementation
and, when numba is importable, jitted native bodies for the bit-exact
subset.  Resolve a :class:`KernelSet` once and call kernels
attribute-style:

    from repro.kernels import kernel_set
    kernels = kernel_set("auto")        # or "numpy" / "numba"
    fresh = kernels.gather_candidates(stratum, available)

Backend choice never changes results — see docs/PERFORMANCE.md for the
dispatch rules and the bit-identity contract.
"""

from repro.kernels.registry import (
    KERNEL_BACKENDS,
    KERNEL_ENV_VAR,
    KernelSet,
    kernel_set,
    numba_available,
    register_kernel,
    registered_kernels,
    resolve_backend_name,
    validate_kernel_hint,
)

# Importing the reference module registers every kernel's NumPy body.
from repro.kernels import reference  # noqa: F401  (registration side effect)

__all__ = [
    "KERNEL_BACKENDS",
    "KERNEL_ENV_VAR",
    "KernelSet",
    "kernel_set",
    "numba_available",
    "register_kernel",
    "registered_kernels",
    "resolve_backend_name",
    "validate_kernel_hint",
]
