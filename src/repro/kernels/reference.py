"""Pure-NumPy reference implementations of the sampler inner-loop kernels.

These bodies are the *contract*: extracted verbatim (then, where safe,
vectorized) from the engine's hot loops, they define the exact floats and
integers every other backend must reproduce bit-for-bit.  Keep them free
of convenience branches — argument validation belongs to the callers,
which already own the error contracts; a kernel is the inner loop only.

Determinism notes, for anyone adding a backend:

* integer and boolean work (gathers, searchsorted, bucketing, floor /
  argmax spreads) is exactly reproducible by construction;
* element-wise float arithmetic is IEEE-exact, so loops that apply the
  same operations in the same per-element order match bitwise;
* float *reductions* are not portable: NumPy's ``sum``/``dot`` use
  pairwise/blocked accumulation whose order a naive sequential loop
  cannot reproduce.  Kernels below that reduce floats
  (``bootstrap_resample_stats``, the minimax objectives,
  ``largest_remainder``'s argsort tie order) therefore stay on this
  reference implementation for every backend; the dispatch layer only
  swaps in native bodies for the provably-exact kernels.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.kernels.registry import register_kernel

__all__ = [
    "gather_candidates",
    "mark_drawn",
    "filter_undrawn",
    "bucket_by_stratum",
    "priority_core",
    "floor_spread",
    "largest_remainder",
    "bootstrap_resample_stats",
    "minimax_single_objective",
    "minimax_multi_objective",
]


@register_kernel("gather_candidates")
def gather_candidates(stratum: np.ndarray, available: np.ndarray) -> np.ndarray:
    """Record indices of a stratum not yet drawn, in ascending order.

    ``stratum`` is the stratum's sorted, read-only index view;
    ``available`` the aligned boolean availability mask
    (see :class:`repro.engine.pipeline.StratumPool`).
    """
    return stratum[available]


@register_kernel("mark_drawn")
def mark_drawn(
    stratum: np.ndarray, available: np.ndarray, drawn: np.ndarray
) -> int:
    """Flip the availability mask off for ``drawn``; returns the count.

    ``stratum`` is sorted, so each drawn record's mask position is a
    binary search (``searchsorted``).  Mutates ``available`` in place.
    """
    positions = np.searchsorted(stratum, drawn)
    available[positions] = False
    return int(drawn.shape[0])


@register_kernel("filter_undrawn")
def filter_undrawn(stratum: np.ndarray, drawn_mask: np.ndarray) -> np.ndarray:
    """Stratum members not yet drawn, via a dataset-length drawn mask.

    The group-by Stage 2 "fresh candidate" filter: one O(1) gather per
    candidate instead of a sort-based ``np.isin``.
    """
    return stratum[~drawn_mask[stratum]]


@register_kernel("bucket_by_stratum")
def bucket_by_stratum(
    assignment: np.ndarray,
    indices: np.ndarray,
    matched: np.ndarray,
    values: np.ndarray,
    num_strata: int,
) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Bucket labelled draws into strata, preserving draw order.

    ``assignment`` maps record index -> stratum; ``indices`` / ``matched``
    / ``values`` are the aligned draw columns.  Returns one
    ``(indices, matches, values)`` triple per stratum, where values of
    unmatched draws are masked to NaN — exactly the per-group bucketing
    of :mod:`repro.core.groupby`.
    """
    stratum_of = assignment[indices]
    masked_values = np.where(matched, values, np.nan)
    out: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for k in range(num_strata):
        in_k = stratum_of == k
        out.append((indices[in_k], matched[in_k], masked_values[in_k]))
    return out


@register_kernel("priority_core")
def priority_core(
    p: np.ndarray,
    sigma: np.ndarray,
    mu: np.ndarray,
    draws: np.ndarray,
    p_all: float,
    mu_all: float,
) -> np.ndarray:
    """Element-wise core of the marginal-variance-reduction priority.

    The caller (:func:`repro.engine.policies.marginal_variance_reduction`)
    supplies the two reductions — ``p_all = p.sum()`` and the weighted
    overall mean ``mu_all`` — so the kernel itself is purely element-wise
    and exactly reproducible on every backend.
    """
    w = p / p_all
    with np.errstate(divide="ignore", invalid="ignore"):
        within = np.where(p > 0, w**2 * sigma**2 / np.maximum(p, 1e-12), 0.0)
        weight_uncertainty = ((mu - mu_all) / p_all) ** 2 * p * (1.0 - p)
        contribution = (within + weight_uncertainty) / np.maximum(draws, 1.0)
        priority = contribution / np.maximum(draws + 1.0, 1.0)
    return priority


@register_kernel("floor_spread")
def floor_spread(weights: np.ndarray, batch: int) -> np.ndarray:
    """Spread ``batch`` draws proportionally to normalized ``weights``.

    Floor allocation with the integer shortfall topped up at the argmax
    weight — the sequential / until-width policies' per-round spread.
    ``weights`` must already sum to 1 (the caller normalizes, keeping the
    one float reduction out of the kernel).
    """
    counts = np.floor(weights * batch).astype(np.int64)
    counts[int(np.argmax(weights))] += batch - int(counts.sum())
    return counts


@register_kernel("largest_remainder")
def largest_remainder(weights: np.ndarray, total: int) -> np.ndarray:
    """Largest-remainder integer split of ``total`` by positive weights.

    ``weights`` must be validated (non-empty, non-negative, not all zero)
    by the caller — :func:`repro.stats.sampling
    .proportional_integer_allocation` owns that contract.  Stays on the
    reference implementation for every backend: the argsort tie order for
    equal remainders is part of the bitwise contract.
    """
    w = weights / weights.sum()
    raw = w * total
    base = np.floor(raw).astype(np.int64)
    leftover = total - int(base.sum())
    if leftover > 0:
        remainders = raw - base
        order = np.argsort(-remainders)
        for idx in order[:leftover]:
            base[idx] += 1
    return base


@register_kernel("bootstrap_resample_stats")
def bootstrap_resample_stats(
    matches: np.ndarray, values: np.ndarray, resample_idx: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-trial positive counts and positive-value sums for one stratum.

    ``matches`` is the stratum's 0/1 match column (float), ``values`` its
    statistic column with unmatched entries already zeroed, and
    ``resample_idx`` the ``(num_bootstrap, n)`` resampled position
    matrix.  Row reductions use NumPy's pairwise summation — part of the
    bitwise contract, hence reference-only (see module docstring).
    """
    resampled_matches = matches[resample_idx]
    resampled_values = values[resample_idx]
    positives = resampled_matches.sum(axis=1)
    sums = (resampled_values * resampled_matches).sum(axis=1)
    return positives, sums


@register_kernel("minimax_single_objective")
def minimax_single_objective(
    error_terms: np.ndarray,
    usable: np.ndarray,
    informative: np.ndarray,
    lam: np.ndarray,
    n2: int,
    eps: float,
) -> float:
    """Eq. 10's worst-group objective, vectorized over the S-term matrix.

    ``error_terms[l, g]`` is stratification *l*'s S term for group *g*;
    ``usable`` masks the finite, positive terms and ``informative`` the
    groups that participate in the worst case (both precomputed once per
    solve).  Each group's variance is the inverse-variance combination
    across stratifications of ``term / max(lam_l * n2, eps)``.
    """
    denom = np.maximum(lam * n2, eps)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        inverse = np.where(usable, 1.0 / (error_terms / denom[:, None]), 0.0)
        inverse_sum = inverse.sum(axis=0)
        combined = np.where(inverse_sum > 0, 1.0 / inverse_sum, np.inf)
    contenders = combined[informative]
    return float(contenders.max()) if contenders.size else 0.0


@register_kernel("minimax_multi_objective")
def minimax_multi_objective(
    error_terms: np.ndarray,
    informative: np.ndarray,
    lam: np.ndarray,
    n2: int,
    eps: float,
) -> float:
    """Eq. 11's worst-group objective: per-group isolated variances."""
    terms = error_terms[informative]
    if terms.size == 0:
        return 0.0
    variance = terms / np.maximum(lam[informative] * n2, eps)
    return float(variance.max())
