"""Kernel registry and runtime dispatch.

The sampler inner loops are registered here as named *kernels*, each with
one or more backend implementations:

* ``"numpy"`` — the pure-NumPy reference.  Always present, always
  complete: it defines the bitwise contract every other backend must
  reproduce exactly.
* ``"numba"`` — optional JIT-compiled implementations, auto-detected at
  import.  Only kernels whose work is integer / boolean / element-wise
  float arithmetic get a jitted body (those operations are IEEE-exact, so
  bit-identity to the reference is provable); kernels whose reference
  semantics involve float *reductions* (``np.sum``'s pairwise
  accumulation, ``np.dot``) keep the NumPy implementation on every
  backend, because a sequential jitted reduction cannot reproduce
  pairwise summation bit-for-bit.

Backend selection ("dispatch") happens once per consumer — a
:class:`KernelSet` is resolved from a hint and then used attribute-style
with zero per-call indirection:

    >>> kernels = kernel_set("auto")
    >>> fresh = kernels.gather_candidates(stratum, available)

The hint is one of :data:`KERNEL_BACKENDS`; ``"auto"`` consults the
``REPRO_KERNEL`` environment variable and then picks the fastest
available backend (numba when importable, numpy otherwise).  Selection
never changes results — that is the layer's contract, pinned by the
parity tests and asserted cell-by-cell by ``scripts/bench_kernels.py``
before any timing.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

__all__ = [
    "FLOAT_REDUCTION_KERNELS",
    "KERNEL_BACKENDS",
    "KERNEL_ENV_VAR",
    "KernelSet",
    "kernel_set",
    "register_kernel",
    "registered_kernels",
    "numba_available",
    "resolve_backend_name",
    "validate_kernel_hint",
]

#: Every value the ``kernel=`` execution hint (and ``REPRO_KERNEL``) accepts.
KERNEL_BACKENDS = ("auto", "numpy", "numba")

#: Kernels whose reference semantics involve float reductions (pairwise
#: ``np.sum``, ``np.dot``, ``np.partition``-then-sum).  A sequential
#: jitted reduction cannot reproduce NumPy's pairwise accumulation
#: bit-for-bit, so these may never gain a non-``numpy`` registration —
#: enforced at registration time below and statically by the
#: ``kernel-contract`` lint rule (which reads this literal from the AST).
FLOAT_REDUCTION_KERNELS = frozenset(
    {
        "largest_remainder",
        "bootstrap_resample_stats",
        "minimax_single_objective",
        "minimax_multi_objective",
    }
)

#: Environment variable consulted when the hint is ``"auto"`` (or omitted).
KERNEL_ENV_VAR = "REPRO_KERNEL"

# name -> backend -> implementation
_REGISTRY: Dict[str, Dict[str, Callable]] = {}

# Resolved KernelSet cache, keyed by concrete backend name.
_SETS: Dict[str, "KernelSet"] = {}

_NUMBA_AVAILABLE: Optional[bool] = None


def numba_available() -> bool:
    """Whether the optional numba backend can be imported (cached)."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_AVAILABLE = True
        except Exception:
            _NUMBA_AVAILABLE = False
    return _NUMBA_AVAILABLE


def validate_kernel_hint(hint: str, source: str = "kernel") -> None:
    """Reject unknown kernel names with the allowed values listed.

    Raises a plain :class:`ValueError`; the execution config re-raises it
    through the shared :class:`~repro.engine.config.ExecutionConfigError`
    path (and the planner as a ``PlanningError``), matching the
    ``backend=`` / ``plan_cache=`` hint error contract.
    """
    if not isinstance(hint, str) or hint not in KERNEL_BACKENDS:
        raise ValueError(
            f"{source} must be one of {KERNEL_BACKENDS!r}, got {hint!r}"
        )


def resolve_backend_name(hint: Optional[str] = None) -> str:
    """Resolve a hint to a concrete backend name (``"numpy"``/``"numba"``).

    ``None`` and ``"auto"`` consult ``REPRO_KERNEL`` first; an unset (or
    ``"auto"``) environment picks numba when importable and numpy
    otherwise.  An *explicit* ``"numba"`` — from the hint or the
    environment — raises when numba is not importable, so a forced
    backend never silently degrades.
    """
    if hint is None:
        hint = "auto"
    validate_kernel_hint(hint)
    if hint == "auto":
        env = os.environ.get(KERNEL_ENV_VAR)
        if env:
            validate_kernel_hint(env, source=f"{KERNEL_ENV_VAR} environment variable")
            hint = env
    if hint == "auto":
        return "numba" if numba_available() else "numpy"
    if hint == "numba" and not numba_available():
        raise ValueError(
            "kernel backend 'numba' was requested but numba is not "
            "importable in this environment; install numba or use "
            "kernel='auto' / 'numpy'"
        )
    return hint


def register_kernel(name: str, backend: str = "numpy") -> Callable:
    """Decorator: register ``fn`` as kernel ``name`` for ``backend``."""
    if backend not in ("numpy", "numba"):
        raise ValueError(
            f"kernels register under a concrete backend ('numpy' or "
            f"'numba'), got {backend!r}"
        )
    if backend != "numpy" and name in FLOAT_REDUCTION_KERNELS:
        raise ValueError(
            f"kernel {name!r} is a float-reduction kernel and keeps the "
            "NumPy reference on every backend (a sequential native "
            "reduction cannot reproduce pairwise summation bit-for-bit)"
        )

    def decorate(fn: Callable) -> Callable:
        _REGISTRY.setdefault(name, {})[backend] = fn
        _SETS.clear()  # late registration invalidates resolved sets
        return fn

    return decorate


def registered_kernels() -> Dict[str, Dict[str, Callable]]:
    """A copy of the registry: kernel name -> backend -> implementation."""
    return {name: dict(impls) for name, impls in _REGISTRY.items()}


class KernelSet:
    """The resolved implementations for one backend, attribute-accessible.

    ``backend`` is the concrete backend name; ``native_kernels`` lists the
    kernels with a true backend-specific body (the rest fall back to the
    NumPy reference — by design, see the module docstring).
    """

    def __init__(self, backend: str, table: Dict[str, Callable],
                 native: frozenset):
        self.backend = backend
        self.native_kernels = native
        self._table = dict(table)
        for name, fn in table.items():
            setattr(self, name, fn)

    def __contains__(self, name: str) -> bool:
        return name in self._table

    def __getitem__(self, name: str) -> Callable:
        return self._table[name]

    def names(self):
        return sorted(self._table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelSet(backend={self.backend!r}, "
            f"kernels={len(self._table)}, "
            f"native={sorted(self.native_kernels)})"
        )


def _build_set(backend: str) -> KernelSet:
    table: Dict[str, Callable] = {}
    native = set()
    for name, impls in _REGISTRY.items():
        if "numpy" not in impls:
            raise RuntimeError(
                f"kernel {name!r} has no NumPy reference implementation; "
                "every kernel must register its reference first"
            )
        fn = impls["numpy"]
        if backend != "numpy" and backend in impls:
            fn = impls[backend]
            native.add(name)
        table[name] = fn
    return KernelSet(backend, table, frozenset(native))


def kernel_set(hint: Optional[str] = None) -> KernelSet:
    """The :class:`KernelSet` for ``hint`` (resolved, cached per backend).

    Resolution re-reads ``REPRO_KERNEL`` on every call (so tests and CI
    legs can flip the environment), but the built sets are cached by
    concrete backend name.
    """
    backend = resolve_backend_name(hint)
    cached = _SETS.get(backend)
    if cached is None:
        if backend == "numba":
            # Import compiles nothing eagerly; jitted bodies specialize on
            # first call.  Import failure downgrades to the reference set
            # rather than erroring: numba advertised itself importable but
            # could not initialize (e.g. an llvmlite/ABI mismatch).
            try:
                from repro.kernels import native  # noqa: F401
            except Exception:
                backend = "numpy"
        cached = _SETS.get(backend)
        if cached is None:
            cached = _SETS[backend] = _build_set(backend)
    return cached
