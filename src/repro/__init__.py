"""repro — a reproduction of ABae (VLDB 2021).

"Accelerating Approximate Aggregation Queries with Expensive Predicates"
(Kang, Guibas, Bailis, Hashimoto, Sun, Zaharia; PVLDB 14(11), 2021).

The package is organized as:

* :mod:`repro.core` — the ABae sampling algorithms and extensions;
* :mod:`repro.query` — the SQL-like query language of Figure 1 and its
  planner/executor;
* :mod:`repro.dataset`, :mod:`repro.oracle`, :mod:`repro.proxy` — the data,
  expensive-predicate and proxy-model substrates;
* :mod:`repro.stats`, :mod:`repro.optim` — statistics and optimization
  building blocks;
* :mod:`repro.synth` — synthetic emulators of the paper's six datasets;
* :mod:`repro.experiments` — the harness that regenerates every figure.

Quickstart::

    from repro import ABae
    from repro.synth import make_dataset

    scenario = make_dataset("trec05p", seed=0)
    sampler = ABae(
        proxy=scenario.proxy,
        oracle=scenario.oracle,
        statistic=scenario.statistic_values,
    )
    result = sampler.estimate(budget=10_000, with_ci=True, seed=1)
    print(result.estimate, result.ci)

Oracle evaluation runs through a batched, parallel execution engine
(:mod:`repro.core.batching` / :mod:`repro.core.parallel`): oracles
exposing ``evaluate_batch`` label whole per-stratum draws in one
vectorized invocation, optionally sharded across a worker pool.  Every
sampler and the query executor take ``batch_size`` (``None`` = whole-draw
batches, ``1`` = strictly sequential) and ``num_workers`` (``None`` =
serial) knobs; results and oracle call counts are bit-identical for every
setting.  See README.md, docs/ARCHITECTURE.md, docs/API.md and
docs/TESTING.md.
"""

from repro.core import (
    ABae,
    And,
    ConfidenceInterval,
    EstimateResult,
    GroupByResult,
    GroupSpec,
    Not,
    Or,
    PredicateLeaf,
    Stratification,
    UniformSampler,
    combine_proxies,
    rank_proxies,
    run_abae,
    run_abae_multipred,
    run_groupby_multi_oracle,
    run_groupby_single_oracle,
    run_uniform,
    select_proxy,
)
from repro.query import execute_query, parse_query

__version__ = "1.0.0"

__all__ = [
    "ABae",
    "UniformSampler",
    "run_abae",
    "run_uniform",
    "run_abae_multipred",
    "run_groupby_single_oracle",
    "run_groupby_multi_oracle",
    "GroupSpec",
    "PredicateLeaf",
    "And",
    "Or",
    "Not",
    "rank_proxies",
    "select_proxy",
    "combine_proxies",
    "ConfidenceInterval",
    "EstimateResult",
    "GroupByResult",
    "Stratification",
    "execute_query",
    "parse_query",
    "__version__",
]
