"""repro — a reproduction of ABae (VLDB 2021).

"Accelerating Approximate Aggregation Queries with Expensive Predicates"
(Kang, Guibas, Bailis, Hashimoto, Sun, Zaharia; PVLDB 14(11), 2021).

The package is organized as:

* :mod:`repro.core` — the ABae sampling algorithms and extensions;
* :mod:`repro.engine` — the unified execution engine: one
  :class:`~repro.engine.config.ExecutionConfig` for every physical knob,
  one :class:`~repro.engine.pipeline.SamplingPipeline` with pluggable
  allocation/estimator policies under every sampler, and streaming /
  resumable :class:`~repro.engine.session.SamplingSession`\\ s;
* :mod:`repro.query` — the SQL-like query language of Figure 1 and its
  planner/executor;
* :mod:`repro.dataset`, :mod:`repro.oracle`, :mod:`repro.proxy` — the data,
  expensive-predicate and proxy-model substrates;
* :mod:`repro.data` — pluggable dataset storage behind the samplers:
  dense in-memory (default), memory-mapped and chunked out-of-core
  backends with bit-identical results (see docs/DATA_BACKENDS.md);
* :mod:`repro.kernels` — the sampler inner loops as registered kernels:
  a pure-NumPy reference defining the bitwise contract, plus an optional
  auto-detected numba backend (the ``kernel=`` execution hint /
  ``REPRO_KERNEL``) that never changes results;
* :mod:`repro.stats`, :mod:`repro.optim` — statistics and optimization
  building blocks;
* :mod:`repro.synth` — synthetic emulators of the paper's six datasets;
* :mod:`repro.experiments` — the harness that regenerates every figure.

Quickstart::

    from repro import ABae
    from repro.synth import make_dataset

    scenario = make_dataset("trec05p", seed=0)
    sampler = ABae(
        proxy=scenario.proxy,
        oracle=scenario.oracle,
        statistic=scenario.statistic_values,
    )
    result = sampler.estimate(budget=10_000, with_ci=True, seed=1)
    print(result.estimate, result.ci)

Oracle evaluation runs through a batched, parallel execution engine
(:mod:`repro.engine`, over :mod:`repro.core.batching` /
:mod:`repro.core.parallel`): oracles exposing ``evaluate_batch`` label
whole per-stratum draws in one vectorized invocation, optionally sharded
across a worker pool.  Every sampler and the query executor take a
``config`` (:class:`~repro.engine.config.ExecutionConfig`) carrying the
physical knobs — ``batch_size`` (``None`` = whole-draw batches, ``1`` =
strictly sequential), ``num_workers`` (``None`` = serial), backend,
caching, rng and progress policies; results and oracle call counts are
bit-identical for every setting, and sessions
(:class:`~repro.engine.session.SamplingSession`) stream or resume the
exact same execution.  See README.md, docs/ARCHITECTURE.md, docs/API.md
and docs/TESTING.md.
"""

from repro.core import (
    ABae,
    And,
    ConfidenceInterval,
    EstimateResult,
    GroupByResult,
    GroupSpec,
    Not,
    Or,
    PredicateLeaf,
    Stratification,
    UniformSampler,
    combine_proxies,
    rank_proxies,
    run_abae,
    run_abae_multipred,
    run_groupby_multi_oracle,
    run_groupby_single_oracle,
    run_uniform,
    select_proxy,
)
from repro.data import ChunkedBackend, DatasetBackend, InMemoryBackend, MmapBackend
from repro.engine import ExecutionConfig, SamplingPipeline, SamplingSession
from repro.query import execute_query, parse_query

__version__ = "1.7.0"

__all__ = [
    "ABae",
    "UniformSampler",
    "run_abae",
    "run_uniform",
    "run_abae_multipred",
    "run_groupby_single_oracle",
    "run_groupby_multi_oracle",
    "GroupSpec",
    "PredicateLeaf",
    "And",
    "Or",
    "Not",
    "rank_proxies",
    "select_proxy",
    "combine_proxies",
    "ConfidenceInterval",
    "EstimateResult",
    "GroupByResult",
    "Stratification",
    "ExecutionConfig",
    "SamplingPipeline",
    "SamplingSession",
    "DatasetBackend",
    "InMemoryBackend",
    "MmapBackend",
    "ChunkedBackend",
    "execute_query",
    "parse_query",
    "__version__",
]
