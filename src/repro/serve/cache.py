"""Process-wide shared oracle answer cache: cross-query deduplication.

A serving deployment answers many concurrent queries over the same
datasets, and different users routinely apply the *same* expensive
predicate (the same DNN, the same labeling endpoint) to overlapping
record sets.  :class:`~repro.oracle.cache.CachingOracle` dedupes repeated
evaluations *within one query*; this module generalizes it into a
**process-wide store keyed by (oracle identity, record index)** so the
second query that needs ``count_cars(frame 1234)`` gets the first query's
answer for free.

Semantics
---------
* The cache never changes *answers* — only *who pays*.  A record's cached
  answer is exactly what the underlying oracle returned when some query
  first evaluated it, so estimates remain bit-identical with or without
  sharing (oracles are deterministic per record); only the inner oracle's
  invocation count shrinks.
* ``identity`` names the logical oracle, not the wrapper instance: two
  queries whose oracles share an identity share answers.  Identities must
  only be shared between oracles that are genuinely interchangeable —
  answering the same question over the same dataset.
* Accounting is exact and thread-safe: every lookup is classified as one
  hit or one miss, and counters are only committed once the answers are
  in hand, so concurrent queries cannot double-evaluate a record or lose
  counter updates.
* The **hit path never waits on a fill**: fully-cached lookups complete
  under one short store-lock hold, while misses evaluate outside the
  store lock under a *per-identity* fill lock.  A slow remote fill for
  one identity therefore serializes only lookups of that same identity —
  unrelated identities (other predicates, other datasets) read and fill
  concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.annotations import guarded_by
from repro.oracle.base import Oracle, evaluate_oracle_batch

__all__ = ["CacheStats", "SharedOracleCache", "SharedCachingOracle"]


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of the store's accounting."""

    hits: int
    misses: int
    entries: int
    identities: int
    evictions: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0


@guarded_by(
    "_lock",
    "_store",
    "_fill_locks",
    "_hits",
    "_misses",
    "_evictions",
    "_identities",
)
class SharedOracleCache:
    """Thread-safe oracle answer store keyed by (identity, record index).

    ``max_entries`` (optional) bounds residency with LRU eviction — purely
    a memory/performance control: an evicted record is simply re-evaluated
    (and re-charged) on its next miss, which never changes answers.
    """

    def __init__(self, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be a positive integer or None, got {max_entries}"
            )
        self._max_entries = max_entries
        self._store: "OrderedDict[tuple, object]" = OrderedDict()
        self._lock = threading.RLock()
        # One fill lock per identity: misses evaluate under it, outside
        # the store lock, so slow fills never block other identities.
        self._fill_locks: Dict[str, threading.Lock] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._identities: Dict[str, int] = {}

    @property
    def max_entries(self) -> Optional[int]:
        return self._max_entries

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._store),
                identities=len(self._identities),
                evictions=self._evictions,
            )

    def clear(self) -> None:
        """Empty the store and zero the accounting."""
        with self._lock:
            self._store.clear()
            self._fill_locks.clear()
            self._identities.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    # -- Core protocol (used by SharedCachingOracle) --------------------------------
    def fill_batch(self, identity: str, record_indices, evaluate) -> list:
        """Answers for ``record_indices``, evaluating only uncached records.

        Fast path: if every record is already cached, the answers are
        gathered under one short store-lock hold and the call never
        touches a fill lock.  Otherwise the uncached records (deduplicated,
        first-occurrence order) are evaluated under this *identity's* fill
        lock with the store lock released — so a slow fill blocks only
        same-identity callers, never the hit path of other identities.
        Concurrent fills of the same identity serialize, and records a
        racing filler already stored are re-classified as hits rather than
        re-evaluated; ``evaluate`` runs once per remaining miss set (with
        a bounded eviction ceiling, at most once per round of the
        re-classification loop).  Accounting commits only once answers are
        in hand, so an ``evaluate`` that raises — including a cooperative
        remote oracle parking mid-fill — charges nothing, and the retried
        call counts the lookup exactly once.
        """
        keys = [int(k) for k in np.asarray(record_indices, dtype=np.int64).tolist()]
        with self._lock:
            answers = self._gather_if_cached_locked(identity, keys)
            if answers is not None:
                self._hits += len(keys)
                return answers
        with self._identity_fill_lock(identity):
            charged = 0
            while True:
                with self._lock:
                    store = self._store
                    pending = []
                    pending_set = set()
                    for key in keys:
                        if (identity, key) not in store and key not in pending_set:
                            pending.append(key)
                            pending_set.add(key)
                    if not pending:
                        self._hits += max(0, len(keys) - charged)
                        return self._gather_locked(identity, keys)
                fresh = evaluate(pending)
                if len(fresh) != len(pending):
                    raise ValueError(
                        f"oracle returned {len(fresh)} answers for "
                        f"{len(pending)} records"
                    )
                with self._lock:
                    for key, value in zip(pending, fresh):
                        self._store[(identity, key)] = value
                    self._misses += len(pending)
                    self._identities[identity] = (
                        self._identities.get(identity, 0) + len(pending)
                    )
                charged += len(pending)

    def _identity_fill_lock(self, identity: str) -> threading.Lock:
        with self._lock:
            lock = self._fill_locks.get(identity)
            if lock is None:
                lock = self._fill_locks[identity] = threading.Lock()
            return lock

    def _gather_if_cached_locked(self, identity: str, keys) -> Optional[list]:
        store = self._store
        for key in keys:
            if (identity, key) not in store:
                return None
        return self._gather_locked(identity, keys)

    def _gather_locked(self, identity: str, keys) -> list:
        answers = []
        store = self._store
        for key in keys:
            full_key = (identity, key)
            value = store[full_key]
            store.move_to_end(full_key)
            answers.append(value)
        self._evict_locked()
        return answers

    def _evict_locked(self) -> None:
        if self._max_entries is None:
            return
        while len(self._store) > self._max_entries:
            (identity, _), _ = self._store.popitem(last=False)
            self._evictions += 1
            remaining = self._identities.get(identity, 0) - 1
            if remaining > 0:
                self._identities[identity] = remaining
            else:
                self._identities.pop(identity, None)
                # The identity left the store entirely: drop its fill lock
                # too, or a churning identity population (per-tenant
                # oracles, rotating datasets) grows _fill_locks without
                # bound.  A racing filler holding the popped lock stays
                # correct — fills re-check the store under _lock and
                # commit idempotently — it just loses the dedup benefit
                # for that one round.
                self._fill_locks.pop(identity, None)

    # -- Introspection --------------------------------------------------------------
    def contains(self, identity: str, record_index: int) -> bool:
        with self._lock:
            return (identity, int(record_index)) in self._store

    def entries_for(self, identity: str) -> int:
        """How many records are currently cached under ``identity``."""
        with self._lock:
            return self._identities.get(identity, 0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"SharedOracleCache(entries={s.entries}, identities={s.identities}, "
            f"hits={s.hits}, misses={s.misses})"
        )


class SharedCachingOracle(Oracle):
    """An oracle view onto a :class:`SharedOracleCache`.

    The per-query generalization of
    :class:`~repro.oracle.cache.CachingOracle`: each query wraps its oracle
    in one of these, and every wrapper sharing a ``(store, identity)`` pair
    dedupes against the same answers.  Counter semantics match
    ``CachingOracle`` exactly — this wrapper's ``num_calls`` counts the
    records *this query* actually paid to label (its misses); hits are
    free, whether they were filled by this query or by another tenant's.
    """

    def __init__(
        self,
        oracle,
        store: SharedOracleCache,
        identity: Optional[str] = None,
        name: Optional[str] = None,
    ):
        inner_name = getattr(oracle, "name", type(oracle).__name__)
        super().__init__(
            name=name or f"shared({inner_name})",
            cost_per_call=getattr(oracle, "cost_per_call", 1.0),
        )
        self._inner = oracle
        self._store = store
        self._identity = identity if identity is not None else inner_name
        self._hits = 0
        self._misses = 0

    @property
    def inner(self):
        return self._inner

    @property
    def store(self) -> SharedOracleCache:
        return self._store

    @property
    def identity(self) -> str:
        return self._identity

    @property
    def hits(self) -> int:
        """Lookups this wrapper answered from the shared store."""
        return self._hits

    @property
    def misses(self) -> int:
        """Records this wrapper paid to label (charged to the inner oracle)."""
        return self._misses

    def evaluate_batch(self, record_indices: Sequence[int]) -> list:
        def evaluate(pending):
            fresh = evaluate_oracle_batch(
                self._inner, np.asarray(pending, dtype=np.int64)
            )
            self._misses += len(pending)
            self._record(pending, fresh)
            return fresh

        before = self._misses
        answers = self._store.fill_batch(self._identity, record_indices, evaluate)
        self._hits += len(answers) - (self._misses - before)
        return answers

    def __call__(self, record_index: int):
        return self.evaluate_batch([record_index])[0]

    def _evaluate(self, record_index: int):  # pragma: no cover - not used
        return self._inner(record_index)
