"""Cooperative scheduling of many sampling sessions over shared data.

The engine refactor made every sampler a step-driven
:class:`~repro.engine.session.SamplingSession`: one ``step()`` is one
bounded unit of work (an allocation decision or one stratum's draw), and
``partial_estimate()`` reads an anytime answer between steps without
touching the random stream.  This module exploits exactly that: a
:class:`CooperativeScheduler` interleaves ``step()`` calls across many
live queries, so every client's estimate improves continuously instead of
queries running to completion one after another.

Determinism contract (pinned by ``tests/test_serve_parity.py``): sessions
share no mutable state — each owns its RNG, its oracle wrappers and its
pipeline state — so **any interleaving of steps produces, for every
query, results and oracle accounting bit-identical to running that query
alone.**  The scheduler's own randomness (the ``"random"`` interleaving)
draws from a dedicated :class:`~repro.stats.rng.RandomState` that is
never shared with any session.

Remote oracles extend the contract to *wait overlap*: a query whose step
hits a still-in-flight :class:`~repro.oracle.remote.AsyncOracle` batch
(cooperative mode) parks in ``WAITING`` instead of blocking the tick —
the scheduler steps other queries, polls parked tickets between steps,
and only blocks (after flushing every involved endpoint) when *every*
live query is parked.  The session rewinds its RNG before parking, so
the retried step re-selects identical records and per-query results stay
bit-identical to a blocking run (pinned by ``tests/test_serve_remote.py``).

Per-step cost accounting: each :class:`QueryTask` records how many oracle
draws every step charged (via the session's ``last_step_cost``), its
time-to-first-estimate, and — when a target CI width is set — its
time-to-target-CI, the two SLO metrics ``scripts/bench_serve.py``
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from collections import OrderedDict, deque

from repro import clock as repro_clock
from repro.core.estimators import estimate_all_strata, estimate_mse_plugin
from repro.engine.session import SamplingSession
from repro.oracle.remote import PendingOracleBatch, RemoteGiveUpError, RemoteTicket
from repro.stats.rng import RandomState

__all__ = [
    "QueryStatus",
    "QueryTask",
    "DegradedResult",
    "CooperativeScheduler",
    "approximate_ci_width",
    "INTERLEAVINGS",
]


class QueryStatus:
    """Lifecycle states of a served query (plain strings, not an enum).

    ``WAITING`` is the parked state: the query's next step is blocked on
    a still-in-flight remote oracle batch.  A waiting query is live — it
    stays in the rotation and resumes the moment its ticket resolves —
    but the scheduler skips it while the batch is pending.

    ``DEGRADED`` is the graceful-degradation terminal state: the query
    could not run to completion (remote oracle gave up, or its deadline
    expired) but still *answered* — its result is a
    :class:`DegradedResult` carrying the last anytime estimate instead of
    a raised error.  See docs/RESILIENCE.md.
    """

    PENDING = "pending"
    RUNNING = "running"
    WAITING = "waiting"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    SUSPENDED = "suspended"
    DEGRADED = "degraded"


@dataclass(frozen=True)
class DegradedResult:
    """A best-effort answer from a query that could not finish cleanly.

    The anytime-AQP contract means there is almost always *an* answer:
    ``estimate`` is the session's ``partial_estimate()`` at the moment
    the query degraded (an engine-level
    :class:`~repro.core.types.EstimateResult`, not passed through any
    query-layer ``finalize``), or ``None`` if the query degraded before
    drawing a single positive record.  ``reason`` is a short machine
    code (``"remote_giveup"`` or ``"deadline"``); ``detail`` is the
    human-readable story.
    """

    estimate: object
    reason: str
    detail: str
    spent: int
    degraded: bool = True

    # Machine codes for `reason`.
    REMOTE_GIVEUP = "remote_giveup"
    DEADLINE = "deadline"


# The normal z-score for a 95% interval; the approximate width below is a
# monitoring proxy, so the constant is not configurable per query.
_Z_95 = 1.959963984540054


def approximate_ci_width(session: SamplingSession) -> float:
    """A cheap anytime CI-width proxy for SLO tracking (no RNG consumed).

    Twice the normal-approximation half-width built from the plug-in MSE
    of the current per-stratum estimates (Proposition 3's leading term,
    :func:`~repro.core.estimators.estimate_mse_plugin`, with each
    stratum's *actual* draw count).  This is a monitoring signal — the
    statistically rigorous interval remains the bootstrap CI computed at
    finalization — but unlike the bootstrap it never consumes the session
    RNG, so polling it between steps cannot perturb the draw sequence.
    Returns ``inf`` until at least one positive record has been drawn.
    """
    state = session.state
    estimates = estimate_all_strata(state.samples)
    draws = [s.num_draws for s in state.samples]
    mse = estimate_mse_plugin(estimates, draws)
    return 2.0 * _Z_95 * mse**0.5


class QueryTask:
    """One served query: a session plus its serving-side bookkeeping.

    ``finalize`` converts the finished session into the task's result
    (default: ``session.result()``); it runs on the scheduler thread when
    the session's last step completes.  ``on_settle`` (if given) is called
    exactly once when the task leaves the live set — done, failed,
    cancelled, suspended or degraded — with this task and its total oracle
    spend; the service uses it to settle the admission reservation.  The
    spend passed to ``on_settle`` is frozen as :attr:`settled_spent`, so
    late work (e.g. an orphaned remote batch committing answers into a
    shared cache after a cancel) can never shift what was billed.

    ``deadline`` (seconds on this task's ``clock``, measured from
    submission) is a soft completion SLO: a task caught past it degrades
    to its anytime estimate instead of running further.  ``on_step`` (if
    given) runs after every *completed* step while the task is still
    live — the service's journal snapshot hook.
    """

    def __init__(
        self,
        session: SamplingSession,
        *,
        task_id: str,
        tenant: str = "default",
        finalize: Optional[Callable[[SamplingSession], object]] = None,
        on_settle: Optional[Callable[["QueryTask", int], None]] = None,
        on_step: Optional[Callable[["QueryTask"], None]] = None,
        target_ci_width: Optional[float] = None,
        deadline: Optional[float] = None,
        clock: Callable[[], float] = repro_clock.monotonic,
    ):
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive seconds, got {deadline}")
        self.session = session
        self.task_id = task_id
        self.tenant = tenant
        self.status = QueryStatus.PENDING
        self.result: object = None
        self.error: Optional[BaseException] = None
        self.target_ci_width = target_ci_width
        self.deadline = deadline
        self._finalize = finalize
        self._on_settle = on_settle
        self._on_step = on_step
        self._clock = clock
        self._settled = False
        self.settled_spent: Optional[int] = None
        # The remote ticket a WAITING task is parked on (else None).
        self.waiting_on: Optional[RemoteTicket] = None
        # Per-step cost accounting.
        self.initial_spent = session.spent
        self.steps = 0
        self.step_costs: List[int] = []
        # SLO timestamps (clock units; None until the event happens).
        self.submitted_at = clock()
        self.first_estimate_at: Optional[float] = None
        self.target_ci_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # -- Introspection --------------------------------------------------------------
    @property
    def live(self) -> bool:
        return self.status in (
            QueryStatus.PENDING,
            QueryStatus.RUNNING,
            QueryStatus.WAITING,
        )

    @property
    def spent(self) -> int:
        """Oracle draws this task charged while being served."""
        return self.session.spent - self.initial_spent

    @property
    def time_to_first_estimate(self) -> Optional[float]:
        if self.first_estimate_at is None:
            return None
        return self.first_estimate_at - self.submitted_at

    @property
    def time_to_target_ci(self) -> Optional[float]:
        if self.target_ci_at is None:
            return None
        return self.target_ci_at - self.submitted_at

    def partial_estimate(self):
        """The query's anytime answer (delegates to the session)."""
        return self.session.partial_estimate()

    # -- Execution (called by the scheduler) ----------------------------------------
    def remote_ready(self) -> bool:
        """Whether a WAITING task's parked batch has resolved.

        Polling also gives the endpoint its ``max_delay`` launch check, so
        queued sub-batches cannot starve while the scheduler cycles.
        """
        ticket = self.waiting_on
        return ticket is None or ticket.poll()

    def deadline_remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when no deadline is set)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - (self._clock() - self.submitted_at))

    def maybe_degrade_deadline(self) -> bool:
        """Degrade a live task whose deadline has expired; True if it did.

        The scheduler calls this on parked (``WAITING``) tasks it would
        otherwise skip, so a query blocked on a slow remote still honours
        its deadline: it settles with its last anytime estimate instead
        of waiting indefinitely for the batch.
        """
        if not self.live or self.deadline is None:
            return False
        if (self._clock() - self.submitted_at) < self.deadline:
            return False
        self._degrade(
            DegradedResult.DEADLINE,
            f"deadline of {self.deadline}s expired with {self.spent} draws spent",
        )
        return True

    def _degrade(self, reason: str, detail: str) -> None:
        """Terminal transition to DEGRADED: anytime estimate, no raise."""
        try:
            estimate = self.session.partial_estimate()
        except BaseException:
            estimate = None
        self.waiting_on = None
        self.result = DegradedResult(
            estimate=estimate, reason=reason, detail=detail, spent=self.spent
        )
        self.status = QueryStatus.DEGRADED
        self.finished_at = self._clock()
        self._settle()

    def advance(self) -> bool:
        """Run one session step; ``False`` once the query left the live set.

        Step cost is measured as the session's spend delta across the
        call, so the invariant ``sum(step_costs) == spent`` holds for
        every lifecycle — including the *final* step: a completing
        ``step()`` that charged draws still appends its cost, counts in
        ``steps`` and can set ``first_estimate_at`` / ``target_ci_at``.
        A step that parks on a pending remote batch charges nothing,
        records nothing, and leaves the task live in ``WAITING``.

        Graceful degradation: a step raising
        :class:`~repro.oracle.remote.RemoteGiveUpError` (retries
        exhausted, or the endpoint's circuit breaker open) degrades the
        task to its anytime estimate instead of failing it; the same
        happens when the task is caught past its ``deadline``.  Every
        other exception still fails the task and is re-raised to the
        client by :meth:`~repro.serve.service.QueryHandle.result`.
        """
        if not self.live:
            return False
        if self.maybe_degrade_deadline():
            return False
        self.status = QueryStatus.RUNNING
        spent_before = self.session.spent
        try:
            more = self.session.step()
        except PendingOracleBatch as pending:
            self.status = QueryStatus.WAITING
            self.waiting_on = pending.ticket
            return True
        except RemoteGiveUpError as exc:
            self._degrade(DegradedResult.REMOTE_GIVEUP, str(exc))
            return False
        except BaseException as exc:
            self.error = exc
            self.status = QueryStatus.FAILED
            self._settle()
            return False
        self.waiting_on = None
        cost = self.session.spent - spent_before
        if more or cost:
            self.steps += 1
            self.step_costs.append(cost)
        now = self._clock()
        if self.first_estimate_at is None and self.spent > 0:
            self.first_estimate_at = now
        if (
            self.target_ci_width is not None
            and self.target_ci_at is None
            and self.first_estimate_at is not None
            and approximate_ci_width(self.session) <= self.target_ci_width
        ):
            self.target_ci_at = now
        if more:
            if self._on_step is not None:
                self._on_step(self)
            # The hook may have cancelled or suspended the task.
            return self.live
        try:
            self.result = (
                self._finalize(self.session)
                if self._finalize is not None
                else self.session.result()
            )
        except BaseException as exc:
            self.error = exc
            self.status = QueryStatus.FAILED
            self._settle()
            return False
        self.status = QueryStatus.DONE
        self.finished_at = self._clock()
        self._settle()
        return False

    def mark_cancelled(self) -> None:
        self.waiting_on = None
        self.status = QueryStatus.CANCELLED
        self._settle()

    def mark_suspended(self) -> None:
        self.waiting_on = None
        self.status = QueryStatus.SUSPENDED
        self._settle()

    def _settle(self) -> None:
        if self._settled:
            return
        self._settled = True
        # Freeze the billed spend at settle time: an orphaned remote batch
        # that commits into a shared cache *after* a cancel must not shift
        # what the tenant was charged.
        self.settled_spent = self.spent
        if self._on_settle is not None:
            self._on_settle(self, self.settled_spent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryTask(id={self.task_id!r}, tenant={self.tenant!r}, "
            f"status={self.status}, spent={self.spent})"
        )


ROUND_ROBIN = "round_robin"
RANDOM = "random"
INTERLEAVINGS = (ROUND_ROBIN, RANDOM)


class CooperativeScheduler:
    """Interleave ``step()`` calls across live query tasks.

    ``interleaving`` selects the policy:

    * ``"round_robin"`` — cycle live tasks in submission order, one step
      each (fair share of steps; the default);
    * ``"random"`` — pick a uniformly random live task per step, from a
      dedicated ``RandomState(seed)`` that no session ever touches.

    The scheduler is cooperative and single-threaded: one ``step_once()``
    runs exactly one session step on the calling thread.  Concurrency here
    means *interleaved progress*, not parallelism — oracle batches inside
    a step may still fan out across the engine's worker pools, and a
    cooperative remote oracle's in-flight batches overlap with other
    queries' steps (see the module docstring).

    ``retain_settled`` bounds memory in a long-running service: settled
    tasks (done / failed / cancelled / suspended) beyond the newest
    ``retain_settled`` are evicted from the lookup table, so per-query
    state no longer accumulates forever.  ``None`` (the default) keeps
    every settled task — the PR-6 behaviour, right for batch drivers that
    collect results at the end.
    """

    def __init__(
        self,
        interleaving: str = ROUND_ROBIN,
        seed: int = 0,
        clock: Callable[[], float] = repro_clock.monotonic,
        retain_settled: Optional[int] = None,
    ):
        if interleaving not in INTERLEAVINGS:
            raise ValueError(
                f"unknown interleaving {interleaving!r}; "
                f"expected one of {INTERLEAVINGS}"
            )
        if retain_settled is not None and retain_settled < 0:
            raise ValueError(
                f"retain_settled must be >= 0 or None, got {retain_settled}"
            )
        self.interleaving = interleaving
        self.clock = clock
        self.retain_settled = retain_settled
        self._rng = RandomState(seed)
        self._queue: Deque[QueryTask] = deque()
        self._tasks: Dict[str, QueryTask] = {}
        # Settled task ids, oldest first — the eviction order.
        self._settled_order: "OrderedDict[str, None]" = OrderedDict()
        self.total_steps = 0

    # -- Task management ------------------------------------------------------------
    def submit(self, task: QueryTask) -> QueryTask:
        if task.task_id in self._tasks:
            raise ValueError(f"duplicate task id {task.task_id!r}")
        self._tasks[task.task_id] = task
        self._queue.append(task)
        return task

    def remove(self, task: QueryTask) -> None:
        """Drop a task from the live rotation (its status is the caller's)."""
        try:
            self._queue.remove(task)
        except ValueError:
            pass

    def retire(self, task: QueryTask) -> None:
        """Remove a task from the rotation and, if settled, start its
        retention countdown (evicting older settled tasks past the knob)."""
        self.remove(task)
        if not task.live:
            self._note_settled(task)

    def _note_settled(self, task: QueryTask) -> None:
        tid = task.task_id
        if tid not in self._tasks or tid in self._settled_order:
            return
        self._settled_order[tid] = None
        if self.retain_settled is not None:
            while len(self._settled_order) > self.retain_settled:
                old, _ = self._settled_order.popitem(last=False)
                self._tasks.pop(old, None)

    @property
    def live_tasks(self) -> List[QueryTask]:
        return [t for t in self._queue if t.live]

    @property
    def num_live(self) -> int:
        """Live (pending / running / waiting) tasks in the rotation.

        Counts what :attr:`live_tasks` returns — cancelled or suspended
        tasks still sitting in the rotation are excluded.
        """
        return sum(1 for t in self._queue if t.live)

    @property
    def num_settled(self) -> int:
        """Settled tasks currently retained for result pickup."""
        return len(self._settled_order)

    def task(self, task_id: str) -> QueryTask:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise KeyError(
                f"unknown task id {task_id!r} (never submitted, or settled "
                "and evicted past the retain_settled window)"
            ) from None

    # -- Stepping -------------------------------------------------------------------
    def _pick(self) -> QueryTask:
        if self.interleaving == RANDOM and len(self._queue) > 1:
            index = int(self._rng.integers(0, len(self._queue)))
            self._queue.rotate(-index)
        return self._queue.popleft()

    def step_once(self) -> Optional[QueryTask]:
        """Advance one task by one step; ``None`` when nothing is live.

        A task that stays live after its step re-enters the rotation at
        the back (for round-robin this is exact fair cycling; for random
        the rotation point is irrelevant).  WAITING tasks whose remote
        batch is still in flight are skipped — they keep their place at
        the back of the rotation — and when *every* live task is parked
        the scheduler flushes the involved endpoints and blocks until the
        oldest-picked ticket resolves, then resumes stepping.  Settled
        tasks are dropped from the rotation as they are encountered and
        enter the ``retain_settled`` eviction window.
        """
        while True:
            waiting: List[QueryTask] = []
            stepped: Optional[QueryTask] = None
            while self._queue:
                task = self._pick()
                if not task.live:
                    self._note_settled(task)
                    continue
                if task.status == QueryStatus.WAITING and not task.remote_ready():
                    if task.maybe_degrade_deadline():
                        # Parked past its deadline: settles with its
                        # anytime estimate; the orphaned batch may still
                        # resolve later but can no longer affect billing.
                        self._note_settled(task)
                        stepped = task
                        break
                    waiting.append(task)
                    continue
                self.total_steps += 1
                if task.advance():
                    self._queue.append(task)
                else:
                    self._note_settled(task)
                stepped = task
                break
            # Re-queue only tasks still live: a skipped WAITING task may
            # have been cancelled (e.g. from an on_step journal hook or
            # another thread) while it sat in the local list.
            for task in waiting:
                if task.live:
                    self._queue.append(task)
                else:
                    self._note_settled(task)
            if stepped is not None:
                return stepped
            if not waiting:
                return None
            self._await_remote(waiting)

    def _await_remote(self, waiting: List[QueryTask]) -> None:
        """Every live task is parked: flush and block until one resolves.

        Flushing each distinct endpoint first guarantees progress — every
        parked ticket's batch is then launched or in flight, so the wait
        always terminates (with results or a give-up error).  When any
        parked task carries a deadline, the block is bounded by the
        soonest remaining deadline so an expired task degrades on the
        next pass instead of waiting out a slow batch.
        """
        tickets = [t.waiting_on for t in waiting if t.waiting_on is not None]
        if not tickets:
            return
        flushed: List[object] = []
        for ticket in tickets:
            endpoint = ticket.endpoint
            if not any(e is endpoint for e in flushed):
                flushed.append(endpoint)
                endpoint.flush()
        timeout: Optional[float] = None
        for task in waiting:
            remaining = task.deadline_remaining()
            if remaining is not None:
                timeout = remaining if timeout is None else min(timeout, remaining)
        tickets[0].wait(timeout)

    def run_until_complete(self, max_steps: Optional[int] = None) -> int:
        """Drive all live tasks to completion; returns steps executed.

        ``max_steps`` bounds the work (useful for incremental serving
        loops); the scheduler can be re-entered to continue.
        """
        executed = 0
        while max_steps is None or executed < max_steps:
            if self.step_once() is None:
                break
            executed += 1
        return executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CooperativeScheduler({self.interleaving!r}, "
            f"live={self.num_live}, total_steps={self.total_steps})"
        )
