"""Cooperative scheduling of many sampling sessions over shared data.

The engine refactor made every sampler a step-driven
:class:`~repro.engine.session.SamplingSession`: one ``step()`` is one
bounded unit of work (an allocation decision or one stratum's draw), and
``partial_estimate()`` reads an anytime answer between steps without
touching the random stream.  This module exploits exactly that: a
:class:`CooperativeScheduler` interleaves ``step()`` calls across many
live queries, so every client's estimate improves continuously instead of
queries running to completion one after another.

Determinism contract (pinned by ``tests/test_serve_parity.py``): sessions
share no mutable state — each owns its RNG, its oracle wrappers and its
pipeline state — so **any interleaving of steps produces, for every
query, results and oracle accounting bit-identical to running that query
alone.**  The scheduler's own randomness (the ``"random"`` interleaving)
draws from a dedicated :class:`~repro.stats.rng.RandomState` that is
never shared with any session.

Per-step cost accounting: each :class:`QueryTask` records how many oracle
draws every step charged (via the session's ``last_step_cost``), its
time-to-first-estimate, and — when a target CI width is set — its
time-to-target-CI, the two SLO metrics ``scripts/bench_serve.py``
reports.
"""

from __future__ import annotations

import time
from typing import Callable, Deque, Dict, List, Optional

from collections import deque

from repro.core.estimators import estimate_all_strata, estimate_mse_plugin
from repro.engine.session import SamplingSession
from repro.stats.rng import RandomState

__all__ = [
    "QueryStatus",
    "QueryTask",
    "CooperativeScheduler",
    "approximate_ci_width",
    "INTERLEAVINGS",
]


class QueryStatus:
    """Lifecycle states of a served query (plain strings, not an enum)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    SUSPENDED = "suspended"


# The normal z-score for a 95% interval; the approximate width below is a
# monitoring proxy, so the constant is not configurable per query.
_Z_95 = 1.959963984540054


def approximate_ci_width(session: SamplingSession) -> float:
    """A cheap anytime CI-width proxy for SLO tracking (no RNG consumed).

    Twice the normal-approximation half-width built from the plug-in MSE
    of the current per-stratum estimates (Proposition 3's leading term,
    :func:`~repro.core.estimators.estimate_mse_plugin`, with each
    stratum's *actual* draw count).  This is a monitoring signal — the
    statistically rigorous interval remains the bootstrap CI computed at
    finalization — but unlike the bootstrap it never consumes the session
    RNG, so polling it between steps cannot perturb the draw sequence.
    Returns ``inf`` until at least one positive record has been drawn.
    """
    state = session.state
    estimates = estimate_all_strata(state.samples)
    draws = [s.num_draws for s in state.samples]
    mse = estimate_mse_plugin(estimates, draws)
    return 2.0 * _Z_95 * mse**0.5


class QueryTask:
    """One served query: a session plus its serving-side bookkeeping.

    ``finalize`` converts the finished session into the task's result
    (default: ``session.result()``); it runs on the scheduler thread when
    the session's last step completes.  ``on_settle`` (if given) is called
    exactly once when the task leaves the live set — done, failed,
    cancelled or suspended — with this task and its total oracle spend;
    the service uses it to settle the admission reservation.
    """

    def __init__(
        self,
        session: SamplingSession,
        *,
        task_id: str,
        tenant: str = "default",
        finalize: Optional[Callable[[SamplingSession], object]] = None,
        on_settle: Optional[Callable[["QueryTask", int], None]] = None,
        target_ci_width: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.session = session
        self.task_id = task_id
        self.tenant = tenant
        self.status = QueryStatus.PENDING
        self.result: object = None
        self.error: Optional[BaseException] = None
        self.target_ci_width = target_ci_width
        self._finalize = finalize
        self._on_settle = on_settle
        self._clock = clock
        self._settled = False
        # Per-step cost accounting.
        self.initial_spent = session.spent
        self.steps = 0
        self.step_costs: List[int] = []
        # SLO timestamps (clock units; None until the event happens).
        self.submitted_at = clock()
        self.first_estimate_at: Optional[float] = None
        self.target_ci_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # -- Introspection --------------------------------------------------------------
    @property
    def live(self) -> bool:
        return self.status in (QueryStatus.PENDING, QueryStatus.RUNNING)

    @property
    def spent(self) -> int:
        """Oracle draws this task charged while being served."""
        return self.session.spent - self.initial_spent

    @property
    def time_to_first_estimate(self) -> Optional[float]:
        if self.first_estimate_at is None:
            return None
        return self.first_estimate_at - self.submitted_at

    @property
    def time_to_target_ci(self) -> Optional[float]:
        if self.target_ci_at is None:
            return None
        return self.target_ci_at - self.submitted_at

    def partial_estimate(self):
        """The query's anytime answer (delegates to the session)."""
        return self.session.partial_estimate()

    # -- Execution (called by the scheduler) ----------------------------------------
    def advance(self) -> bool:
        """Run one session step; ``False`` once the query left the live set."""
        if not self.live:
            return False
        self.status = QueryStatus.RUNNING
        try:
            more = self.session.step()
        except BaseException as exc:
            self.error = exc
            self.status = QueryStatus.FAILED
            self._settle()
            return False
        if more:
            self.steps += 1
            self.step_costs.append(self.session.last_step_cost)
            now = self._clock()
            if self.first_estimate_at is None and self.spent > 0:
                self.first_estimate_at = now
            if (
                self.target_ci_width is not None
                and self.target_ci_at is None
                and self.first_estimate_at is not None
                and approximate_ci_width(self.session) <= self.target_ci_width
            ):
                self.target_ci_at = now
            return True
        try:
            self.result = (
                self._finalize(self.session)
                if self._finalize is not None
                else self.session.result()
            )
        except BaseException as exc:
            self.error = exc
            self.status = QueryStatus.FAILED
            self._settle()
            return False
        self.status = QueryStatus.DONE
        self.finished_at = self._clock()
        self._settle()
        return False

    def mark_cancelled(self) -> None:
        self.status = QueryStatus.CANCELLED
        self._settle()

    def mark_suspended(self) -> None:
        self.status = QueryStatus.SUSPENDED
        self._settle()

    def _settle(self) -> None:
        if self._settled:
            return
        self._settled = True
        if self._on_settle is not None:
            self._on_settle(self, self.spent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryTask(id={self.task_id!r}, tenant={self.tenant!r}, "
            f"status={self.status}, spent={self.spent})"
        )


ROUND_ROBIN = "round_robin"
RANDOM = "random"
INTERLEAVINGS = (ROUND_ROBIN, RANDOM)


class CooperativeScheduler:
    """Interleave ``step()`` calls across live query tasks.

    ``interleaving`` selects the policy:

    * ``"round_robin"`` — cycle live tasks in submission order, one step
      each (fair share of steps; the default);
    * ``"random"`` — pick a uniformly random live task per step, from a
      dedicated ``RandomState(seed)`` that no session ever touches.

    The scheduler is cooperative and single-threaded: one ``step_once()``
    runs exactly one session step on the calling thread.  Concurrency here
    means *interleaved progress*, not parallelism — oracle batches inside
    a step may still fan out across the engine's worker pools.
    """

    def __init__(
        self,
        interleaving: str = ROUND_ROBIN,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if interleaving not in INTERLEAVINGS:
            raise ValueError(
                f"unknown interleaving {interleaving!r}; "
                f"expected one of {INTERLEAVINGS}"
            )
        self.interleaving = interleaving
        self.clock = clock
        self._rng = RandomState(seed)
        self._queue: Deque[QueryTask] = deque()
        self._tasks: Dict[str, QueryTask] = {}
        self.total_steps = 0

    # -- Task management ------------------------------------------------------------
    def submit(self, task: QueryTask) -> QueryTask:
        if task.task_id in self._tasks:
            raise ValueError(f"duplicate task id {task.task_id!r}")
        self._tasks[task.task_id] = task
        self._queue.append(task)
        return task

    def remove(self, task: QueryTask) -> None:
        """Drop a task from the live rotation (its status is the caller's)."""
        try:
            self._queue.remove(task)
        except ValueError:
            pass

    @property
    def live_tasks(self) -> List[QueryTask]:
        return [t for t in self._queue if t.live]

    @property
    def num_live(self) -> int:
        return len(self._queue)

    def task(self, task_id: str) -> QueryTask:
        return self._tasks[task_id]

    # -- Stepping -------------------------------------------------------------------
    def _pick(self) -> QueryTask:
        if self.interleaving == RANDOM and len(self._queue) > 1:
            index = int(self._rng.integers(0, len(self._queue)))
            self._queue.rotate(-index)
        return self._queue.popleft()

    def step_once(self) -> Optional[QueryTask]:
        """Advance one task by one step; ``None`` when nothing is live.

        A task that stays live after its step re-enters the rotation at
        the back (for round-robin this is exact fair cycling; for random
        the rotation point is irrelevant).
        """
        while self._queue:
            task = self._pick()
            if not task.live:
                continue
            self.total_steps += 1
            if task.advance():
                self._queue.append(task)
            return task
        return None

    def run_until_complete(self, max_steps: Optional[int] = None) -> int:
        """Drive all live tasks to completion; returns steps executed.

        ``max_steps`` bounds the work (useful for incremental serving
        loops); the scheduler can be re-entered to continue.
        """
        executed = 0
        while max_steps is None or executed < max_steps:
            if self.step_once() is None:
                break
            executed += 1
        return executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CooperativeScheduler({self.interleaving!r}, "
            f"live={self.num_live}, total_steps={self.total_steps})"
        )
