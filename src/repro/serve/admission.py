"""Admission control and per-tenant oracle-budget quotas.

A query enters the service by *reserving* its full oracle budget against
its tenant's quota (pessimistic admission: a query can never strand the
service half-way through its budget), and *settles* on completion,
refunding whatever it reserved but did not spend.  The controller tracks,
per tenant:

* ``charged`` — oracle draws actually spent by settled (finished,
  cancelled or suspended) queries;
* ``reserved`` — budgets of currently live queries;
* ``live`` — how many of the tenant's queries are in flight.

Invariants (pinned by ``tests/test_serve_admission.py``):

* ``charged + reserved`` never exceeds the tenant's quota;
* a rejected admission leaves every counter untouched;
* settling returns exactly ``budget - spent`` to the quota, so budget is
  conserved: what the tenant can still reserve equals
  ``quota - charged - reserved`` at all times;
* suspending a query (checkpoint) settles it at its *actual* spend, and
  resuming re-reserves only the remainder — a checkpoint/resume cycle
  charges the tenant exactly what an uninterrupted run charges.

Quota arithmetic is delegated to the thread-safe
:class:`~repro.oracle.budget.OracleBudget` (reservations ``charge`` it,
settlements ``refund`` the unspent part), so the ORACLE-LIMIT machinery
and the serving quotas share one implementation.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.annotations import guarded_by
from repro.oracle.budget import OracleBudget, OracleBudgetExceededError

__all__ = [
    "AdmissionError",
    "ServiceSaturatedError",
    "TenantConcurrencyError",
    "TenantQuotaError",
    "TenantPolicy",
    "Admission",
    "AdmissionController",
]


class AdmissionError(RuntimeError):
    """A query the service refuses to admit."""


class ServiceSaturatedError(AdmissionError):
    """The service-wide live-query ceiling is reached."""


class TenantConcurrencyError(AdmissionError):
    """The tenant already has its maximum number of queries in flight."""


class TenantQuotaError(AdmissionError):
    """The query's budget does not fit in the tenant's remaining quota."""


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant limits: ``None`` means unlimited.

    ``oracle_quota`` caps the tenant's total oracle draws (charged +
    reserved, across all of its queries, ever — call
    :meth:`AdmissionController.reset_tenant` to start a new accounting
    period); ``max_concurrent`` caps its in-flight queries.
    """

    oracle_quota: Optional[int] = None
    max_concurrent: Optional[int] = None

    def __post_init__(self):
        if self.oracle_quota is not None and self.oracle_quota < 0:
            raise ValueError(
                f"oracle_quota must be non-negative or None, got {self.oracle_quota}"
            )
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be positive or None, got {self.max_concurrent}"
            )


class _TenantState:
    __slots__ = ("policy", "quota", "charged", "reserved", "live")

    def __init__(self, policy: TenantPolicy):
        self.policy = policy
        self.quota = (
            None
            if policy.oracle_quota is None
            else OracleBudget(policy.oracle_quota)
        )
        self.charged = 0
        self.reserved = 0
        self.live = 0


@dataclass
class Admission:
    """One admitted query's reservation (settled exactly once)."""

    tenant: str
    budget: int
    admission_id: int
    settled: bool = False
    spent: Optional[int] = None


@guarded_by("_lock", "_tenants", "_live")
class AdmissionController:
    """Admit, grow, and settle query reservations against tenant quotas.

    ``max_live_queries`` is the service-wide concurrency ceiling (``None``
    = unbounded); ``default_policy`` applies to tenants that were never
    explicitly registered via :meth:`set_policy`.
    """

    def __init__(
        self,
        max_live_queries: Optional[int] = None,
        default_policy: Optional[TenantPolicy] = None,
    ):
        if max_live_queries is not None and max_live_queries < 1:
            raise ValueError(
                f"max_live_queries must be positive or None, got {max_live_queries}"
            )
        self._max_live = max_live_queries
        self._default_policy = default_policy or TenantPolicy()
        self._tenants: Dict[str, _TenantState] = {}
        self._live = 0
        self._lock = threading.Lock()
        self._ids = itertools.count()

    # -- Tenant registry ------------------------------------------------------------
    def set_policy(
        self,
        tenant: str,
        oracle_quota: Optional[int] = None,
        max_concurrent: Optional[int] = None,
    ) -> TenantPolicy:
        """Register (or replace) a tenant's limits.

        Replacing a policy on a tenant with live queries keeps its charged
        and reserved counters; the new quota must cover them.
        """
        policy = TenantPolicy(oracle_quota=oracle_quota, max_concurrent=max_concurrent)
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                self._tenants[tenant] = _TenantState(policy)
            else:
                committed = state.charged + state.reserved
                if policy.oracle_quota is not None and committed > policy.oracle_quota:
                    raise ValueError(
                        f"tenant {tenant!r} already has {committed} draws "
                        f"charged+reserved; cannot shrink its quota to "
                        f"{policy.oracle_quota}"
                    )
                state.policy = policy
                state.quota = (
                    None
                    if policy.oracle_quota is None
                    else OracleBudget(policy.oracle_quota)
                )
                if state.quota is not None:
                    state.quota.charge(committed)
        return policy

    def reset_tenant(self, tenant: str) -> None:
        """Zero a tenant's charged history (e.g. a new billing period).

        Refuses while the tenant has live queries — a reservation must not
        silently escape its accounting period.
        """
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                return
            if state.live:
                raise AdmissionError(
                    f"tenant {tenant!r} has {state.live} live queries; "
                    "settle them before resetting its accounting"
                )
            state.charged = 0
            state.reserved = 0
            if state.quota is not None:
                state.quota.reset()

    def _state_locked(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(self._default_policy)
            self._tenants[tenant] = state
        return state

    # -- Admission lifecycle --------------------------------------------------------
    def admit(self, tenant: str, budget: int) -> Admission:
        """Reserve ``budget`` oracle draws for one query, or raise.

        Raising leaves every counter exactly as it was — a rejected query
        has no residual state.
        """
        if budget < 0:
            raise ValueError(f"budget must be non-negative, got {budget}")
        budget = int(budget)
        with self._lock:
            if self._max_live is not None and self._live >= self._max_live:
                raise ServiceSaturatedError(
                    f"service is at its ceiling of {self._max_live} live "
                    f"queries; retry when one settles"
                )
            state = self._state_locked(tenant)
            limit = state.policy.max_concurrent
            if limit is not None and state.live >= limit:
                raise TenantConcurrencyError(
                    f"tenant {tenant!r} already has {state.live} live queries "
                    f"(max_concurrent={limit})"
                )
            if state.quota is not None:
                try:
                    state.quota.charge(budget)
                except OracleBudgetExceededError as exc:
                    raise TenantQuotaError(
                        f"tenant {tenant!r} cannot reserve {budget} draws: {exc}"
                    ) from None
            state.reserved += budget
            state.live += 1
            self._live += 1
            return Admission(
                tenant=tenant, budget=budget, admission_id=next(self._ids)
            )

    def grow(self, admission: Admission, extra: int) -> None:
        """Reserve ``extra`` more draws for a live query (budget top-up)."""
        if extra <= 0:
            raise ValueError(f"extra must be positive, got {extra}")
        extra = int(extra)
        with self._lock:
            if admission.settled:
                raise AdmissionError(
                    "cannot grow a settled admission; admit a new query"
                )
            state = self._state_locked(admission.tenant)
            if state.quota is not None:
                try:
                    state.quota.charge(extra)
                except OracleBudgetExceededError as exc:
                    raise TenantQuotaError(
                        f"tenant {admission.tenant!r} cannot reserve {extra} "
                        f"more draws: {exc}"
                    ) from None
            state.reserved += extra
            admission.budget += extra

    def settle(self, admission: Admission, spent: int) -> None:
        """Release a reservation, charging actual spend and refunding the rest.

        Idempotence is deliberately *not* provided: settling twice is a
        service bug and raises.  ``spent`` may not exceed the reservation
        (sessions cannot overspend their budget; a larger value indicates
        corrupted bookkeeping).
        """
        spent = int(spent)
        if spent < 0:
            raise ValueError(f"spent must be non-negative, got {spent}")
        with self._lock:
            if admission.settled:
                raise AdmissionError("admission already settled")
            if spent > admission.budget:
                raise AdmissionError(
                    f"query spent {spent} draws against a reservation of "
                    f"{admission.budget}; budget enforcement failed upstream"
                )
            state = self._state_locked(admission.tenant)
            if state.quota is not None:
                state.quota.refund(admission.budget - spent)
            state.reserved -= admission.budget
            state.charged += spent
            state.live -= 1
            self._live -= 1
            admission.settled = True
            admission.spent = spent

    def cancel(self, admission: Admission, spent: int = 0) -> None:
        """Settle a query that will not finish (charging any partial spend)."""
        self.settle(admission, spent)

    # -- Introspection --------------------------------------------------------------
    @property
    def live_queries(self) -> int:
        with self._lock:
            return self._live

    def tenant_usage(self, tenant: str) -> Dict[str, Optional[int]]:
        """A snapshot of one tenant's accounting (zeros if never seen)."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                policy = self._default_policy
                return {
                    "charged": 0,
                    "reserved": 0,
                    "live": 0,
                    "quota": policy.oracle_quota,
                    "remaining": policy.oracle_quota,
                }
            quota = state.policy.oracle_quota
            return {
                "charged": state.charged,
                "reserved": state.reserved,
                "live": state.live,
                "quota": quota,
                "remaining": (
                    None if quota is None else quota - state.charged - state.reserved
                ),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdmissionController(live={self.live_queries}, "
            f"tenants={len(self._tenants)})"
        )
