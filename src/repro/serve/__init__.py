"""repro.serve — the concurrent AQP query service layer.

Many live queries, one process: a cooperative scheduler interleaves
:meth:`~repro.engine.session.SamplingSession.step` calls across every
admitted query so all clients stream anytime answers, an admission
controller enforces per-tenant oracle-budget quotas, and a process-wide
shared answer cache dedupes identical expensive-predicate calls across
queries and tenants.  See ``docs/SERVING.md``.

The layering::

    AQPService               submit (pipeline or query text) -> QueryHandle;
       |                     streaming partial(), checkpoint/resume,
       |                     recover() after a crash
    AdmissionController      reserve -> settle per-tenant quota accounting
    CooperativeScheduler     round-robin / randomized step interleaving,
       |                     per-step cost + SLO (TTFE / TT-target-CI),
       |                     WAITING parking on in-flight remote batches,
       |                     deadline / give-up -> DegradedResult
    SharedOracleCache        (identity, record) -> answer, cross-query
    ServiceJournal           CRC-framed write-ahead log of submits,
       |                     snapshots and settlements (serve.journal;
       |                     serve.recovery replays it)
    RemoteEndpoint           coalesced remote oracle batches, retries,
                             timeouts, circuit breaker (repro.oracle.remote)

Determinism: sessions share no mutable state, so any interleaving of any
set of queries is bit-identical — results and oracle accounting — to
running each query alone (``tests/test_serve_parity.py``); with
cooperative remote oracles this extends across parking, retries and
failures (``tests/test_serve_remote.py``, ``docs/REMOTE_ORACLES.md``),
and with a journal across process crashes (``tests/test_serve_chaos.py``,
``docs/RESILIENCE.md``).
"""

from repro.serve.admission import (
    Admission,
    AdmissionController,
    AdmissionError,
    ServiceSaturatedError,
    TenantConcurrencyError,
    TenantPolicy,
    TenantQuotaError,
)
from repro.serve.cache import CacheStats, SharedCachingOracle, SharedOracleCache
from repro.serve.chaos import (
    ChaosOutcome,
    ChaosPolicy,
    ChaosQuery,
    FailureBurstTransport,
    StallingSharedCache,
    crash_recover_run,
)
from repro.serve.journal import (
    JournalError,
    JournalReplay,
    ServiceJournal,
    TornTail,
)
from repro.serve.recovery import RecoveredQuery, RecoveryReport, recover_service
from repro.serve.scheduler import (
    INTERLEAVINGS,
    CooperativeScheduler,
    DegradedResult,
    QueryStatus,
    QueryTask,
    approximate_ci_width,
)
from repro.serve.service import AQPService, QueryHandle

__all__ = [
    "Admission",
    "AdmissionController",
    "AdmissionError",
    "ServiceSaturatedError",
    "TenantConcurrencyError",
    "TenantPolicy",
    "TenantQuotaError",
    "CacheStats",
    "SharedCachingOracle",
    "SharedOracleCache",
    "ChaosOutcome",
    "ChaosPolicy",
    "ChaosQuery",
    "FailureBurstTransport",
    "StallingSharedCache",
    "crash_recover_run",
    "JournalError",
    "JournalReplay",
    "ServiceJournal",
    "TornTail",
    "RecoveredQuery",
    "RecoveryReport",
    "recover_service",
    "INTERLEAVINGS",
    "CooperativeScheduler",
    "DegradedResult",
    "QueryStatus",
    "QueryTask",
    "approximate_ci_width",
    "AQPService",
    "QueryHandle",
]
