"""Crash recovery: rebuild an :class:`~repro.serve.service.AQPService`
from its journal.

:func:`recover_service` (exposed as ``AQPService.recover``) replays the
newest journal segment and reconstructs the service the crash destroyed:

* **settled queries** are re-charged to their tenants at their exact
  settled spend — ``spent_total - origin_spent``, the same number the
  uninterrupted run billed — and their journaled results (when they
  pickled) are surfaced through :meth:`RecoveryReport.results`;
* **live queries** are resumed from their last snapshot: the
  ``registry`` maps each query's ``recovery_key`` to a zero-arg factory
  returning a freshly built compatible pipeline (or a ``(pipeline,
  finalize)`` pair), the snapshot bytes resume through the engine's
  validated checkpoint path, the tenant is pre-charged the snapshot
  spend, and the task re-enters the scheduler under its *original* task
  id with exactly its remaining budget reserved;
* **unrecoverable live queries** (no ``recovery_key``, no registry
  entry, or corrupt snapshot bytes) are settled at their snapshot spend
  and reported — a crash never silently loses a tenant's charge;
* the journal is **compacted** by an atomic segment rotation: one
  ``settled`` summary per finished query plus one fresh ``submit``
  (carrying the *original* ``origin_spent``) per resumed query, which is
  what makes recovery idempotent — recovering the same directory twice
  charges every tenant exactly once.

Determinism: a resumed session re-executes the steps lost after its last
snapshot against the identical RNG state the snapshot froze, so the
recovered run's final estimates and per-query oracle accounting are
bit-identical to the uninterrupted run (pinned across the chaos
kill-point matrix in ``tests/test_serve_chaos.py``).  The only
non-recoverable cost is the oracle work of those lost steps, which a
real deployment re-pays — bounded by ``journal_every``.
"""

from __future__ import annotations

import itertools
import pickle
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.engine.session import CheckpointError
from repro.serve.admission import AdmissionController
from repro.serve.journal import ServiceJournal, TornTail
from repro.serve.scheduler import QueryStatus

__all__ = ["RecoveredQuery", "RecoveryReport", "recover_service"]

# Journal record types that mean the task is no longer live.  "settled"
# is the rotation summary a previous recovery wrote; "unrecoverable" a
# live task a previous recovery could not resume.
_TERMINAL_TYPES = (
    QueryStatus.DONE,
    QueryStatus.FAILED,
    QueryStatus.CANCELLED,
    QueryStatus.SUSPENDED,
    QueryStatus.DEGRADED,
    "settled",
    "unrecoverable",
)

_ID_SUFFIX_RE = re.compile(r"-(\d+)$")


@dataclass(frozen=True)
class RecoveredQuery:
    """One journaled query's post-recovery disposition."""

    task_id: str
    tenant: str
    status: str
    charged: int
    recovery_key: Optional[str] = None
    result: object = None
    error: Optional[str] = None
    checkpoint: Optional[bytes] = None
    reason: Optional[str] = None


@dataclass
class RecoveryReport:
    """What :func:`recover_service` found and did."""

    journal_dir: Path
    records_replayed: int
    torn_tail: Optional[TornTail]
    settled: List[RecoveredQuery] = field(default_factory=list)
    restored: List[object] = field(default_factory=list)  # QueryHandles
    unrecoverable: List[RecoveredQuery] = field(default_factory=list)

    def results(self) -> Dict[str, object]:
        """Recovered results of settled queries, by task id (only those
        whose result survived pickling into the journal)."""
        return {
            q.task_id: q.result for q in self.settled if q.result is not None
        }

    @property
    def charged(self) -> Dict[str, int]:
        """Total re-charged spend per tenant (settled + unrecoverable;
        live restorations' pre-charges are in the admission controller)."""
        totals: Dict[str, int] = {}
        for query in itertools.chain(self.settled, self.unrecoverable):
            totals[query.tenant] = totals.get(query.tenant, 0) + query.charged
        return totals


class _Fold:
    """Per-task journal fold: the latest submit / snapshot / terminal."""

    __slots__ = ("submit", "snap_spent", "checkpoint", "terminal")

    def __init__(self, submit: dict):
        self.submit = submit
        self.snap_spent = int(submit.get("snap_spent", submit.get("origin_spent", 0)))
        self.checkpoint: Optional[bytes] = submit.get("checkpoint")
        self.terminal: Optional[dict] = None


def _fold_records(records: List[dict]) -> "Dict[str, object]":
    """Group the replayed records per task id, newest state winning.

    Stray snapshot/terminal records without a preceding submit (possible
    only if an operator hand-pruned segments) are tolerated and dropped —
    there is nothing safe to rebuild from them.
    """
    folds: "Dict[str, object]" = {}
    for record in records:
        rtype = record.get("type")
        task_id = record.get("task_id")
        if rtype == "submit":
            folds[task_id] = _Fold(record)
        elif rtype == "snapshot":
            fold = folds.get(task_id)
            if fold is not None and fold.terminal is None:
                fold.snap_spent = int(record["spent"])
                fold.checkpoint = record["checkpoint"]
        elif rtype in _TERMINAL_TYPES:
            if rtype in ("settled", "unrecoverable"):
                # Rotation summaries are self-contained; synthesize a fold.
                fold = _Fold(
                    {
                        "task_id": task_id,
                        "tenant": record.get("tenant", "default"),
                        "recovery_key": record.get("recovery_key"),
                        "origin_spent": 0,
                        "snap_spent": record.get("charged", 0),
                        "checkpoint": record.get("checkpoint"),
                    }
                )
                fold.terminal = record
                folds[task_id] = fold
            else:
                fold = folds.get(task_id)
                if fold is not None:
                    fold.terminal = record
        # Unknown record types are skipped (forward compatibility).
    return folds


def _build_from_registry(registry, key: str):
    """Resolve a recovery key to ``(pipeline, finalize)`` or ``None``."""
    if registry is None or key is None:
        return None
    if hasattr(registry, "get"):
        factory = registry.get(key)
        if factory is None:
            return None
        built = factory()
    else:
        try:
            built = registry(key)
        except KeyError:
            return None
    if built is None:
        return None
    if isinstance(built, (tuple, list)) and len(built) == 2:
        return built[0], built[1]
    return built, None


def _charge_settled(admission: AdmissionController, tenant: str, charged: int) -> None:
    """Reconstruct one settled query's charge: reserve then settle at it."""
    if charged <= 0:
        # Touch the tenant so its usage row exists even at zero charge.
        admission.tenant_usage(tenant)
        return
    handle = admission.admit(tenant, charged)
    admission.settle(handle, charged)


def _advance_ids(service, folds) -> None:
    """Move the service's id counter past every journaled numeric suffix,
    so post-recovery submissions cannot collide with restored ids."""
    highest = -1
    for task_id in folds:
        match = _ID_SUFFIX_RE.search(str(task_id))
        if match:
            highest = max(highest, int(match.group(1)))
    service._ids = itertools.count(highest + 1)


def _settled_summary(fold: _Fold, status: str, charged: int, **extra) -> dict:
    record = {
        "type": "settled",
        "task_id": fold.submit["task_id"],
        "tenant": fold.submit.get("tenant", "default"),
        "recovery_key": fold.submit.get("recovery_key"),
        "status": status,
        "charged": int(charged),
    }
    record.update(extra)
    return record


def recover_service(
    path: Union[str, Path],
    registry=None,
    *,
    admission: Optional[AdmissionController] = None,
    fsync: bool = True,
    journal_every: int = 25,
    **service_kwargs,
) -> Tuple[object, RecoveryReport]:
    """Rebuild a crashed service from the journal at ``path``.

    Returns ``(service, report)``: a fresh
    :class:`~repro.serve.service.AQPService` journaling to the same
    directory, with every journaled tenant re-admitted at its exact
    settled spend and every recoverable live query re-enrolled under its
    original task id, plus the :class:`RecoveryReport` describing what
    was replayed.  ``registry`` maps ``recovery_key`` to a zero-arg
    pipeline factory (or is a callable taking the key; it may return a
    ``(pipeline, finalize)`` pair).  Remaining keyword arguments are
    forwarded to the service constructor (``interleaving``,
    ``scheduler_seed``, ``clock``, ``shared_cache``, ...).
    """
    from repro.serve.service import AQPService

    path = Path(path)
    replay = ServiceJournal.replay(path)
    folds = _fold_records(replay.records)

    # Opening for append truncates any torn tail; the fold above already
    # ignored it (prefix replay stops at the first bad frame).
    journal = ServiceJournal(path, fsync=fsync)
    service = AQPService(
        admission=admission or AdmissionController(),
        journal=journal,
        journal_every=journal_every,
        **service_kwargs,
    )

    report = RecoveryReport(
        journal_dir=path,
        records_replayed=len(replay.records),
        torn_tail=replay.torn_tail,
    )
    rotation: List[dict] = []

    for task_id, fold in folds.items():
        submit = fold.submit
        tenant = submit.get("tenant", "default")
        key = submit.get("recovery_key")
        origin = int(submit.get("origin_spent", 0))
        terminal = fold.terminal

        if terminal is not None:
            rtype = terminal["type"]
            if rtype in ("settled", "unrecoverable"):
                status = terminal.get("status", rtype)
                charged = int(terminal.get("charged", 0))
                result_bytes = terminal.get("result")
                error = terminal.get("error")
                checkpoint = terminal.get("checkpoint")
            else:
                status = rtype
                charged = max(0, int(terminal.get("spent_total", origin)) - origin)
                result_bytes = terminal.get("result")
                error = terminal.get("error")
                checkpoint = terminal.get("checkpoint")
            _charge_settled(service.admission, tenant, charged)
            result = None
            if result_bytes is not None:
                try:
                    result = pickle.loads(result_bytes)
                except Exception:
                    result = None
            recovered = RecoveredQuery(
                task_id=task_id,
                tenant=tenant,
                status=status,
                charged=charged,
                recovery_key=key,
                result=result,
                error=error,
                checkpoint=checkpoint,
            )
            if status == "unrecoverable":
                report.unrecoverable.append(recovered)
                rotation.append(
                    _settled_summary(
                        fold, "unrecoverable", charged,
                        checkpoint=checkpoint,
                        reason=terminal.get("reason"),
                    )
                )
            else:
                report.settled.append(recovered)
                summary_extra = {}
                if result_bytes is not None:
                    summary_extra["result"] = result_bytes
                if error is not None:
                    summary_extra["error"] = error
                if checkpoint is not None:
                    summary_extra["checkpoint"] = checkpoint
                rotation.append(
                    _settled_summary(fold, status, charged, **summary_extra)
                )
            continue

        # Live at the crash: pre-charge the snapshot spend, then resume.
        snap_spent = int(fold.snap_spent)
        pre_charge = max(0, snap_spent - origin)

        def _abandon(
            reason: str,
            *,
            # Early-bound so the helper can never see a later iteration's
            # query even if it escapes this one (flake8-bugbear B023).
            task_id=task_id,
            tenant=tenant,
            key=key,
            fold=fold,
            pre_charge=pre_charge,
        ) -> None:
            _charge_settled(service.admission, tenant, pre_charge)
            recovered = RecoveredQuery(
                task_id=task_id,
                tenant=tenant,
                status="unrecoverable",
                charged=pre_charge,
                recovery_key=key,
                checkpoint=fold.checkpoint,
                reason=reason,
            )
            report.unrecoverable.append(recovered)
            rotation.append(
                _settled_summary(
                    fold, "unrecoverable", pre_charge,
                    checkpoint=fold.checkpoint, reason=reason,
                )
            )

        built = _build_from_registry(registry, key)
        if built is None:
            _abandon(
                "no recovery_key recorded" if key is None
                else f"registry has no factory for {key!r}"
            )
            continue
        pipeline, finalize = built
        try:
            session = pipeline.resume(fold.checkpoint)
        except CheckpointError as exc:
            _abandon(f"snapshot failed to resume: {exc}")
            continue

        _charge_settled(service.admission, tenant, pre_charge)
        reserve = max(0, session.budget - session.spent)
        handle = service._enroll(
            session,
            tenant=tenant,
            reserve=reserve,
            finalize=finalize,
            target_ci_width=submit.get("target_ci_width"),
            recovery_key=key,
            deadline=submit.get("deadline"),
            task_id=task_id,
            journal_submit=False,
            origin_spent=origin,
        )
        report.restored.append(handle)
        rotation.append(
            {
                "type": "submit",
                "task_id": task_id,
                "tenant": tenant,
                "recovery_key": key,
                "budget": int(session.budget),
                "reserve": int(reserve),
                # The *original* origin survives every rotation, so a
                # second recovery charges snapshot - origin, never
                # snapshot - snapshot: no double-charging, no undercharge.
                "origin_spent": origin,
                "snap_spent": snap_spent,
                "target_ci_width": submit.get("target_ci_width"),
                "deadline": submit.get("deadline"),
                "checkpoint": fold.checkpoint,
            }
        )

    journal.rotate(rotation)
    _advance_ids(service, folds)
    return service, report
