"""Deterministic chaos injection for the crash-safe serving stack.

Everything here is *seeded*: a :class:`ChaosPolicy` derives kill points,
tear sizes and failure-burst windows from one
:class:`~repro.stats.rng.RandomState`, so every chaos scenario — however
vicious — reproduces bit-for-bit from its seed.  The pieces compose into
the crash-recover-compare loop (``tests/test_serve_chaos.py``,
``scripts/bench_recovery.py``):

1. build a journaled :class:`~repro.serve.service.AQPService` and submit
   a workload (:class:`ChaosQuery` specs against a ``recovery_key ->
   pipeline factory`` registry);
2. drive it with :func:`run_until_kill` to a seeded kill point and
   *abandon* the service object — the in-process simulation of a process
   death (no finalizers run, no settlements happen, the journal simply
   stops);
3. optionally maul the journal (:func:`tear_journal_tail` /
   :func:`append_garbage` — torn-write and corrupt-tail crash artifacts);
4. :meth:`AQPService.recover` into a fresh service, drive it to
   completion, and compare every query's result fingerprint and every
   tenant's charge against the uninterrupted baseline — the
   zero-divergence assertion.

Failure bursts (:class:`FailureBurstTransport`) and slow-cache stalls
(:class:`StallingSharedCache`) attack the *oracle* path rather than the
journal: the first drives retries/give-ups (and the breaker +
``DegradedResult`` degradation contract), the second injects latency
into shared-cache fills without ever changing an answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.clock import monotonic as _monotonic, sleep as _default_sleep
from repro.oracle.base import PredicateOracle
from repro.oracle.remote import RemoteCallError
from repro.serve.admission import AdmissionController
from repro.serve.cache import SharedOracleCache
from repro.serve.journal import ServiceJournal
from repro.serve.recovery import RecoveryReport, _build_from_registry
from repro.serve.service import AQPService
from repro.stats.rng import RandomState

__all__ = [
    "ChaosPolicy",
    "ChaosQuery",
    "ChaosOutcome",
    "FailureBurstTransport",
    "StallingSharedCache",
    "run_until_kill",
    "newest_segment",
    "tear_journal_tail",
    "append_garbage",
    "crash_recover_run",
]


class ChaosPolicy:
    """A seeded source of chaos-injection plans.

    One policy instance = one reproducible chaos scenario; every draw
    comes from its private :class:`~repro.stats.rng.RandomState`, never
    from any session's.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._rng = RandomState(seed)

    def kill_steps(self, count: int, max_step: int, min_step: int = 0) -> List[int]:
        """``count`` distinct scheduler-step kill points in
        ``[min_step, max_step)``, sorted ascending."""
        if max_step <= min_step:
            raise ValueError(
                f"empty kill range [{min_step}, {max_step})"
            )
        span = max_step - min_step
        points: set = set()
        # Sample without replacement when the range allows; degenerate
        # tiny ranges just return the whole range.
        if span <= count:
            return list(range(min_step, max_step))
        while len(points) < count:
            points.add(min_step + int(self._rng.integers(0, span)))
        return sorted(points)

    def tear_bytes(self, max_bytes: int) -> int:
        """How many tail bytes a simulated torn write destroys (>= 1)."""
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        return 1 + int(self._rng.integers(0, max_bytes))

    def failure_burst(self, max_start: int, max_length: int) -> "tuple":
        """A ``(first_failing_attempt, num_failures)`` transport window."""
        start = int(self._rng.integers(0, max(1, max_start)))
        length = 1 + int(self._rng.integers(0, max(1, max_length)))
        return start, length


class FailureBurstTransport(PredicateOracle):
    """An oracle transport that fails a deterministic window of attempts.

    Attempts (batch invocations) numbered ``fail_from`` through
    ``fail_from + fail_count - 1`` raise
    :class:`~repro.oracle.remote.RemoteCallError`; all others answer from
    the label column.  ``fail_count=None`` means *fail forever from
    ``fail_from`` on* — the permanent-outage shape that drives an
    endpoint through its retries into give-up (and, with a breaker
    configured, trips it open).  Failures precede any accounting, so the
    answers that do come back are identical to a healthy run's.
    """

    def __init__(
        self,
        labels: Sequence,
        *,
        fail_from: int = 0,
        fail_count: Optional[int] = None,
        name: str = "burst_oracle",
        cost_per_call: float = 1.0,
    ):
        super().__init__(name=name, cost_per_call=cost_per_call)
        self._labels = np.asarray(labels)
        self.fail_from = int(fail_from)
        self.fail_count = None if fail_count is None else int(fail_count)
        self.attempts = 0

    def _in_burst(self) -> bool:
        attempt = self.attempts
        self.attempts += 1
        if attempt < self.fail_from:
            return False
        if self.fail_count is None:
            return True
        return attempt < self.fail_from + self.fail_count

    def _evaluate(self, record_index: int):
        if self._in_burst():
            raise RemoteCallError(
                f"{self.name}: injected failure (attempt {self.attempts - 1})"
            )
        return bool(self._labels[record_index])

    def _evaluate_batch(self, record_indices):
        if self._in_burst():
            raise RemoteCallError(
                f"{self.name}: injected failure (attempt {self.attempts - 1})"
            )
        idx = np.asarray(record_indices, dtype=np.int64)
        return self._labels[idx].astype(bool)


class StallingSharedCache(SharedOracleCache):
    """A :class:`SharedOracleCache` that stalls every N-th fill.

    The stall happens *before* the underlying fill — latency injection
    only; hit/miss behaviour, commit semantics and answers are untouched,
    which is exactly the slow-cache chaos contract (time changes, results
    do not).
    """

    def __init__(
        self,
        *args,
        stall_every: int = 3,
        stall_seconds: float = 0.001,
        sleep: Callable[[float], None] = _default_sleep,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if stall_every < 1:
            raise ValueError(f"stall_every must be >= 1, got {stall_every}")
        self.stall_every = int(stall_every)
        self.stall_seconds = float(stall_seconds)
        self._sleep = sleep
        self.stalls = 0
        self._fills = 0

    def fill_batch(self, identity, record_indices, evaluate):
        self._fills += 1
        if self._fills % self.stall_every == 0:
            self.stalls += 1
            self._sleep(self.stall_seconds)
        return super().fill_batch(identity, record_indices, evaluate)


# ---------------------------------------------------------------------------
# Journal tampering (torn-write crash artifacts)
# ---------------------------------------------------------------------------


def newest_segment(journal_dir: Union[str, Path]) -> Optional[Path]:
    """The authoritative (newest) segment file, or ``None`` if empty."""
    replay = ServiceJournal.replay(journal_dir)
    return replay.segment_path


def tear_journal_tail(journal_dir: Union[str, Path], nbytes: int) -> int:
    """Truncate up to ``nbytes`` off the newest segment (never the magic).

    Returns the bytes actually removed — the torn-write artifact a crash
    mid-``write`` leaves behind.
    """
    path = newest_segment(journal_dir)
    if path is None:
        return 0
    size = path.stat().st_size
    keep = max(8, size - int(nbytes))  # never tear the 8-byte magic
    removed = size - keep
    if removed > 0:
        with open(path, "r+b") as handle:
            handle.truncate(keep)
    return removed


def append_garbage(journal_dir: Union[str, Path], data: bytes = b"\xde\xad\xbe\xef") -> int:
    """Append non-frame bytes to the newest segment (a corrupt tail)."""
    path = newest_segment(journal_dir)
    if path is None:
        return 0
    with open(path, "ab") as handle:
        handle.write(data)
    return len(data)


# ---------------------------------------------------------------------------
# The crash-recover-compare loop
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosQuery:
    """One workload query: a registry key plus its serving parameters."""

    key: str
    tenant: str = "default"
    seed: int = 0
    target_ci_width: Optional[float] = None
    deadline: Optional[float] = None


@dataclass
class ChaosOutcome:
    """What one chaos arm produced, in baseline-comparable form."""

    kill_step: Optional[int]
    completed_before_kill: bool
    results: Dict[str, object] = field(default_factory=dict)
    statuses: Dict[str, str] = field(default_factory=dict)
    charged: Dict[str, int] = field(default_factory=dict)
    recovery_seconds: Optional[float] = None
    replayed_records: int = 0
    report: Optional[RecoveryReport] = None


def run_until_kill(service, kill_after_steps: Optional[int]) -> bool:
    """Drive a service; ``True`` if it completed before the kill point.

    ``kill_after_steps=None`` never kills (the baseline arm).  Killing is
    simply *stopping*: the caller then abandons the service object, which
    is the in-process analogue of ``kill -9`` — no settlement, no journal
    close, no admission refunds.
    """
    executed = 0
    while True:
        if kill_after_steps is not None and executed >= kill_after_steps:
            return False
        if service.step() is None:
            return True
        executed += 1


def _collect_charged(admission: AdmissionController, tenants) -> Dict[str, int]:
    return {t: admission.tenant_usage(t)["charged"] for t in sorted(set(tenants))}


def crash_recover_run(
    journal_dir: Union[str, Path],
    registry,
    queries: Sequence[ChaosQuery],
    *,
    kill_step: Optional[int],
    journal_every: int = 5,
    admission_factory: Callable[[], AdmissionController] = AdmissionController,
    tamper: Optional[Callable[[Union[str, Path]], None]] = None,
    fsync: bool = False,
    **service_kwargs,
) -> ChaosOutcome:
    """One chaos arm: submit, kill at ``kill_step``, recover, finish.

    The service journals to ``journal_dir`` (which must start empty for a
    fresh arm); ``registry`` builds each query's pipeline both at
    submission and at recovery, exactly as a production deployment would
    rebuild its (unpicklable) oracles.  ``tamper``, if given, mauls the
    journal between the kill and the recovery (torn tails, garbage).
    ``kill_step=None`` runs the uninterrupted baseline through the *same*
    journaled service path, so baseline and chaos arms differ only in the
    kill.  Returns results/statuses per task id and charges per tenant —
    the fingerprint-comparable outcome.
    """
    journal_dir = Path(journal_dir)
    service = None
    outcome = ChaosOutcome(kill_step=kill_step, completed_before_kill=False)
    tenants = [q.tenant for q in queries]

    service = AQPService(
        admission=admission_factory(),
        journal=ServiceJournal(journal_dir, fsync=fsync),
        journal_every=journal_every,
        **service_kwargs,
    )
    handles = []
    for query in queries:
        pipeline, finalize = _build_from_registry(registry, query.key)
        handles.append(
            service.submit_pipeline(
                pipeline,
                tenant=query.tenant,
                rng=query.seed,
                finalize=finalize,
                target_ci_width=query.target_ci_width,
                recovery_key=query.key,
                deadline=query.deadline,
            )
        )
    completed = run_until_kill(service, kill_step)
    if completed:
        outcome.completed_before_kill = True
        outcome.results = {h.task_id: h.result() for h in handles}
        outcome.statuses = {h.task_id: h.status for h in handles}
        outcome.charged = _collect_charged(service.admission, tenants)
        service.journal.close()
        return outcome

    # --- the crash: abandon `service` without any cleanup ---
    if tamper is not None:
        tamper(journal_dir)

    started = _monotonic()
    recovered, report = AQPService.recover(
        journal_dir,
        registry,
        admission=admission_factory(),
        fsync=fsync,
        journal_every=journal_every,
        **service_kwargs,
    )
    outcome.recovery_seconds = _monotonic() - started
    outcome.replayed_records = report.records_replayed
    outcome.report = report
    recovered.run_until_complete()

    results: Dict[str, object] = dict(report.results())
    statuses: Dict[str, str] = {q.task_id: q.status for q in report.settled}
    for handle in report.restored:
        results[handle.task_id] = handle.result()
        statuses[handle.task_id] = handle.status
    for query in report.unrecoverable:
        statuses[query.task_id] = query.status
    outcome.results = results
    outcome.statuses = statuses
    outcome.charged = _collect_charged(recovered.admission, tenants)
    recovered.journal.close()
    return outcome
