"""The concurrent AQP query service: admission + scheduling + shared cache.

:class:`AQPService` is the serving facade over the pieces in this
package.  A query enters as either a ready-built
:class:`~repro.engine.pipeline.SamplingPipeline` (:meth:`submit_pipeline`)
or as query text bound to a :class:`~repro.query.executor.QueryContext`
(:meth:`submit_query`, via the query layer's
:func:`~repro.query.executor.prepare_query` entry point), and is served
as a :class:`~repro.serve.scheduler.QueryTask`:

1. **admission** — the query's full oracle budget is reserved against its
   tenant's quota (:mod:`repro.serve.admission`); a rejection raises
   before any state is created;
2. **scheduling** — the cooperative scheduler interleaves the query's
   ``step()`` calls with every other live query's, so all clients stream
   anytime answers (:meth:`QueryHandle.partial`);
3. **shared caching** — when the service carries a
   :class:`~repro.serve.cache.SharedOracleCache`, ``submit_query`` wraps
   each predicate oracle in a :class:`~repro.serve.cache.SharedCachingOracle`
   keyed by the predicate's canonical text, so identical expensive-predicate
   calls are deduplicated across queries and tenants;
4. **settlement** — on completion (or failure, cancellation, suspension)
   the reservation is settled at the query's actual spend and the unspent
   remainder returns to the tenant's quota.

Suspension round-trips through the engine's checkpoint machinery:
:meth:`checkpoint` settles the admission at the current spend and returns
the session's bytes; :meth:`resume_pipeline` re-admits only the remaining
budget, so a checkpoint/resume cycle charges the tenant exactly what an
uninterrupted run would have.

Crash safety (docs/RESILIENCE.md): give the service a
:class:`~repro.serve.journal.ServiceJournal` and every submission,
periodic step snapshot (``journal_every``) and settlement is durably
recorded; after a crash, :meth:`AQPService.recover` replays the journal,
re-admits every tenant at its exact settled spend, and resumes every live
query from its last snapshot — deterministic re-execution makes the
recovered run's estimates bit-identical to the uninterrupted one.
"""

from __future__ import annotations

import itertools
import pickle
from typing import Callable, List, Optional, Union

from repro import clock as repro_clock
from repro.engine.pipeline import SamplingPipeline
from repro.serve.admission import Admission, AdmissionController
from repro.serve.cache import SharedCachingOracle, SharedOracleCache
from repro.serve.journal import ServiceJournal
from repro.serve.scheduler import (
    ROUND_ROBIN,
    CooperativeScheduler,
    QueryStatus,
    QueryTask,
)
from repro.stats.rng import RandomState

__all__ = ["QueryHandle", "AQPService"]


def _try_pickle(value) -> Optional[bytes]:
    """Pickle a result for the journal, or ``None`` if it refuses.

    Journal durability must never fail a query: a result that happens to
    hold something unpicklable is simply not recoverable by value (the
    settled spend still is).
    """
    try:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None


class QueryHandle:
    """A client's view of one submitted query."""

    def __init__(self, task: QueryTask, admission: Admission):
        self._task = task
        self._admission = admission

    @property
    def task_id(self) -> str:
        return self._task.task_id

    @property
    def tenant(self) -> str:
        return self._task.tenant

    @property
    def status(self) -> str:
        return self._task.status

    @property
    def spent(self) -> int:
        """Oracle draws charged so far."""
        return self._task.spent

    @property
    def steps(self) -> int:
        return self._task.steps

    @property
    def step_costs(self) -> List[int]:
        """Oracle draws charged by each executed step, in step order."""
        return list(self._task.step_costs)

    @property
    def time_to_first_estimate(self) -> Optional[float]:
        return self._task.time_to_first_estimate

    @property
    def time_to_target_ci(self) -> Optional[float]:
        return self._task.time_to_target_ci

    def partial(self):
        """The query's current anytime answer (never perturbs the run)."""
        return self._task.partial_estimate()

    def result(self):
        """The finished result; raises the query's own error if it failed.

        A ``DEGRADED`` query does *not* raise: its result is a
        :class:`~repro.serve.scheduler.DegradedResult` carrying the last
        anytime estimate plus the degradation reason — the graceful-
        degradation contract (docs/RESILIENCE.md).
        """
        if self._task.status == QueryStatus.FAILED:
            raise self._task.error
        if self._task.status not in (QueryStatus.DONE, QueryStatus.DEGRADED):
            raise RuntimeError(
                f"query {self.task_id!r} is {self._task.status}; drive the "
                "service with run_until_complete() or read partial()"
            )
        return self._task.result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryHandle({self._task!r})"


class AQPService:
    """Serve many concurrent approximate queries with anytime answers.

    Parameters
    ----------
    admission:
        The :class:`AdmissionController` enforcing tenant quotas and the
        live-query ceiling (default: a fresh unlimited controller).
    shared_cache:
        Optional :class:`SharedOracleCache`; when present, queries
        submitted through :meth:`submit_query` dedupe oracle calls across
        queries/tenants per predicate identity.
    interleaving / scheduler_seed:
        The scheduler policy (see
        :class:`~repro.serve.scheduler.CooperativeScheduler`).
    clock:
        Injectable time source for SLO timestamps (tests use virtual
        clocks; production uses ``time.monotonic``).
    retain_settled:
        Bound on settled tasks kept for result pickup (see
        :class:`~repro.serve.scheduler.CooperativeScheduler`); ``None``
        keeps all — set it in long-running services so memory does not
        grow per query served.
    journal / journal_every:
        Optional :class:`~repro.serve.journal.ServiceJournal` making the
        service crash-safe: every submit (with a step-0 checkpoint),
        every ``journal_every``-th completed step (a fresh snapshot) and
        every settlement is durably recorded, and
        :meth:`AQPService.recover` rebuilds the service from the journal
        after a crash.  ``None`` (default) serves without durability.
    """

    def __init__(
        self,
        admission: Optional[AdmissionController] = None,
        shared_cache: Optional[SharedOracleCache] = None,
        interleaving: str = ROUND_ROBIN,
        scheduler_seed: int = 0,
        clock: Callable[[], float] = repro_clock.monotonic,
        retain_settled: Optional[int] = None,
        journal: Optional[ServiceJournal] = None,
        journal_every: int = 25,
    ):
        if journal_every < 1:
            raise ValueError(f"journal_every must be >= 1, got {journal_every}")
        self.admission = admission or AdmissionController()
        self.shared_cache = shared_cache
        self.journal = journal
        self.journal_every = int(journal_every)
        self.scheduler = CooperativeScheduler(
            interleaving=interleaving,
            seed=scheduler_seed,
            clock=clock,
            retain_settled=retain_settled,
        )
        self._clock = clock
        self._ids = itertools.count()

    # -- Submission -----------------------------------------------------------------
    def _next_id(self, tenant: str) -> str:
        return f"{tenant}-{next(self._ids)}"

    def _enroll(
        self,
        session,
        *,
        tenant: str,
        reserve: int,
        finalize: Optional[Callable] = None,
        target_ci_width: Optional[float] = None,
        session_factory: Optional[Callable[[], object]] = None,
        recovery_key: Optional[str] = None,
        deadline: Optional[float] = None,
        task_id: Optional[str] = None,
        journal_submit: bool = True,
        origin_spent: Optional[int] = None,
    ) -> QueryHandle:
        """Admit, build and schedule one task (the single enrollment path).

        ``session_factory`` defers session construction until *after*
        admission succeeded, so a rejected query creates no session state.
        ``task_id`` / ``journal_submit`` / ``origin_spent`` exist for
        recovery, which re-enrolls journaled tasks under their original
        ids without re-journaling the submit (the rotated segment already
        carries it).
        """
        admission = self.admission.admit(tenant, reserve)
        try:
            if session is None:
                session = session_factory()
        except BaseException:
            self.admission.cancel(admission)
            raise

        def on_settle(task: QueryTask, spent: int) -> None:
            self.admission.settle(admission, spent)
            self._journal_settle(task)

        task = QueryTask(
            session,
            task_id=task_id or self._next_id(tenant),
            tenant=tenant,
            finalize=finalize,
            on_settle=on_settle,
            on_step=self._journal_step if self.journal is not None else None,
            target_ci_width=target_ci_width,
            deadline=deadline,
            clock=self._clock,
        )
        task.recovery_key = recovery_key
        # The absolute session spend at *original* submission — the zero
        # point of the tenant's charge for this query.  Propagated through
        # recovery rotations so re-recovered runs never double-charge.
        task.origin_spent = (
            int(session.spent) if origin_spent is None else int(origin_spent)
        )
        if self.journal is not None and journal_submit:
            self.journal.append(
                {
                    "type": "submit",
                    "task_id": task.task_id,
                    "tenant": tenant,
                    "recovery_key": recovery_key,
                    "budget": int(session.budget),
                    "reserve": int(reserve),
                    "origin_spent": task.origin_spent,
                    "snap_spent": int(session.spent),
                    "target_ci_width": target_ci_width,
                    "deadline": deadline,
                    # A step-0 checkpoint: every journaled query is
                    # resumable even if the process dies before the first
                    # periodic snapshot lands.
                    "checkpoint": session.checkpoint(),
                }
            )
        self.scheduler.submit(task)
        return QueryHandle(task, admission)

    # -- Journaling -----------------------------------------------------------------
    def _journal_step(self, task: QueryTask) -> None:
        """Per-step hook: a fresh snapshot every ``journal_every`` steps."""
        if self.journal is None or task.steps == 0:
            return
        if task.steps % self.journal_every != 0:
            return
        self.journal.append(
            {
                "type": "snapshot",
                "task_id": task.task_id,
                "spent": int(task.session.spent),
                "checkpoint": task.session.checkpoint(),
            }
        )

    def _journal_settle(self, task: QueryTask) -> None:
        """Terminal record: how the task left the live set, at what spend."""
        if self.journal is None:
            return
        record = {
            "type": task.status,
            "task_id": task.task_id,
            "spent_total": int(task.session.spent),
        }
        if task.status in (QueryStatus.DONE, QueryStatus.DEGRADED):
            record["result"] = _try_pickle(task.result)
        elif task.status == QueryStatus.FAILED:
            record["error"] = repr(task.error)
        elif task.status == QueryStatus.SUSPENDED:
            # checkpoint() is a pure read, so re-taking it here yields the
            # exact bytes the suspending caller received.
            record["checkpoint"] = task.session.checkpoint()
        self.journal.append(record)

    def submit_pipeline(
        self,
        pipeline: SamplingPipeline,
        *,
        tenant: str = "default",
        rng: Optional[Union[int, RandomState]] = None,
        finalize: Optional[Callable] = None,
        target_ci_width: Optional[float] = None,
        recovery_key: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> QueryHandle:
        """Admit and schedule a ready-built pipeline.

        The reservation equals ``pipeline.budget`` — the most the session
        can spend.  ``rng`` may be a seed or a ``RandomState``; as
        everywhere in the engine, the session owns it exclusively.

        ``recovery_key`` names the pipeline recipe in the registry passed
        to :meth:`recover` — a journaled query without one is charged but
        not resumed after a crash.  ``deadline`` (seconds from
        submission) degrades the query to its anytime estimate instead of
        letting it run past its SLO.
        """
        if isinstance(rng, int):
            rng = RandomState(rng)
        return self._enroll(
            None,
            tenant=tenant,
            reserve=pipeline.budget,
            finalize=finalize,
            target_ci_width=target_ci_width,
            session_factory=lambda: pipeline.session(rng),
            recovery_key=recovery_key,
            deadline=deadline,
        )

    def submit_query(
        self,
        query,
        context,
        *,
        tenant: str = "default",
        rng: Optional[Union[int, RandomState]] = None,
        num_strata: int = 5,
        stage1_fraction: float = 0.5,
        num_bootstrap: int = 1000,
        with_ci: bool = True,
        config=None,
        backend=None,
        target_ci_width: Optional[float] = None,
        recovery_key: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> QueryHandle:
        """Parse, plan, admit and schedule an AQP query.

        The session-servable plans (single- and multi-predicate) are built
        through :func:`repro.query.executor.prepare_query`; a GROUP BY
        query raises :class:`~repro.query.errors.PlanningError` there.
        The finished handle's :meth:`~QueryHandle.result` is a
        :class:`~repro.query.executor.QueryResult`, exactly as
        ``execute_query`` would have returned — and bit-identical to it
        for the same ``rng``, any interleaving, with or without the shared
        cache (pinned by ``tests/test_serve_parity.py``).
        """
        from repro.query.executor import prepare_query

        oracle_transform = None
        if self.shared_cache is not None:
            cache = self.shared_cache

            def oracle_transform(identity, oracle):
                return SharedCachingOracle(oracle, cache, identity=identity)

        prepared = prepare_query(
            query,
            context,
            num_strata=num_strata,
            stage1_fraction=stage1_fraction,
            num_bootstrap=num_bootstrap,
            with_ci=with_ci,
            config=config,
            backend=backend,
            oracle_transform=oracle_transform,
        )
        if isinstance(rng, int):
            rng = RandomState(rng)
        return self._enroll(
            None,
            tenant=tenant,
            reserve=prepared.pipeline.budget,
            finalize=lambda session: prepared.finalize(
                session.result(), session.state.rng
            ),
            target_ci_width=target_ci_width,
            session_factory=lambda: prepared.pipeline.session(rng),
            recovery_key=recovery_key,
            deadline=deadline,
        )

    # -- Serving loop ---------------------------------------------------------------
    def step(self):
        """Advance one query by one step (``None`` when nothing is live)."""
        return self.scheduler.step_once()

    def run_until_complete(self, max_steps: Optional[int] = None) -> int:
        """Drive every live query to completion; returns steps executed."""
        return self.scheduler.run_until_complete(max_steps)

    @property
    def live_queries(self) -> int:
        return len(self.scheduler.live_tasks)

    # -- Lifecycle ------------------------------------------------------------------
    def cancel(self, handle: QueryHandle) -> None:
        """Abort a live query, charging only what it already spent."""
        task = handle._task
        if not task.live:
            raise RuntimeError(
                f"query {task.task_id!r} is {task.status}; only live queries "
                "can be cancelled"
            )
        task.mark_cancelled()
        self.scheduler.retire(task)

    def checkpoint(self, handle: QueryHandle) -> bytes:
        """Suspend a live query: settle its reservation, return its bytes.

        The tenant is charged exactly the draws spent so far; the unspent
        reservation returns to its quota.  Resume the bytes later — on
        this service or another — via :meth:`resume_pipeline` with a
        freshly built compatible pipeline.
        """
        task = handle._task
        if not task.live:
            raise RuntimeError(
                f"query {task.task_id!r} is {task.status}; only live queries "
                "can be checkpointed"
            )
        payload = task.session.checkpoint()
        task.mark_suspended()
        self.scheduler.retire(task)
        return payload

    def resume_pipeline(
        self,
        pipeline: SamplingPipeline,
        checkpoint: bytes,
        *,
        tenant: str = "default",
        finalize: Optional[Callable] = None,
        target_ci_width: Optional[float] = None,
        recovery_key: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> QueryHandle:
        """Re-admit a suspended query, reserving only its remaining budget.

        ``pipeline`` must be freshly built with the same logical
        parameters as the checkpointed run (it contributes the live
        oracle/statistic; see
        :meth:`~repro.engine.pipeline.SamplingPipeline.resume`).  The new
        reservation is ``budget - spent``, so checkpoint/resume cycles
        conserve the tenant's total charge.
        """
        session = pipeline.resume(checkpoint)
        remaining = max(0, session.budget - session.spent)
        return self._enroll(
            session,
            tenant=tenant,
            reserve=remaining,
            finalize=finalize,
            target_ci_width=target_ci_width,
            recovery_key=recovery_key,
            deadline=deadline,
        )

    # -- Crash recovery ---------------------------------------------------------------
    @classmethod
    def recover(cls, path, registry=None, **kwargs):
        """Rebuild a crashed service from its journal directory.

        Replays the newest journal segment, re-admits every tenant at its
        exact settled spend, resumes every live query from its last
        snapshot (via ``registry``: a ``recovery_key -> pipeline factory``
        mapping, or a callable taking the key), compacts the journal and
        returns ``(service, report)``.  See
        :func:`repro.serve.recovery.recover_service` for the full
        semantics and docs/RESILIENCE.md for the guarantees.
        """
        from repro.serve.recovery import recover_service

        return recover_service(path, registry, **kwargs)
