"""Durable write-ahead journal of service events (crash-safe serving).

The serving layer's availability story (docs/RESILIENCE.md) rests on one
file format: an append-only segment of CRC-framed, pickled event records.
:class:`ServiceJournal` owns a directory of numbered segments; the newest
segment is the live one, and compaction (:meth:`ServiceJournal.rotate`)
writes a fresh segment through a temp file + ``os.replace`` so a crash at
any byte leaves either the old complete segment or the new complete
segment — never a half-written mix.

Frame format (little-endian)::

    +----------------+----------------+----------------------+
    | payload length | CRC-32 of     | pickled record       |
    | uint32         | payload uint32 | (`payload length` B) |
    +----------------+----------------+----------------------+

A segment starts with the 8-byte magic ``b"RPROWAL1"``.  Reads are
prefix-replays: decoding stops at the first incomplete or corrupt frame
(a *torn tail* — the expected artifact of a crash mid-``write``), and
:func:`read_segment` reports where and why it stopped.  Opening a journal
for append truncates the torn tail away, so the next record lands on a
clean frame boundary.

Durability knob: ``fsync=True`` (the default) fsyncs after every append
and before every rotation rename — the crash-consistency configuration.
Tests and benchmarks that simulate crashes by *abandoning* the process
(never by powering off the page cache) run with ``fsync=False`` for
speed; the byte stream written is identical.
"""

from __future__ import annotations

import os
import pickle
import re
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, List, Optional, Tuple, Union

__all__ = [
    "SEGMENT_MAGIC",
    "TornTail",
    "JournalReplay",
    "JournalError",
    "ServiceJournal",
    "read_segment",
]

SEGMENT_MAGIC = b"RPROWAL1"
_HEADER = struct.Struct("<II")  # (payload_length, crc32)
_SEGMENT_RE = re.compile(r"^segment-(\d{8})\.wal$")
_MAX_RECORD_BYTES = 1 << 30  # length-field sanity bound: 1 GiB


class JournalError(RuntimeError):
    """A journal directory or segment is structurally unusable.

    Raised for *whole-file* problems (bad magic, unwritable directory) —
    never for a torn tail, which is an expected crash artifact reported
    through :class:`TornTail` instead.
    """


@dataclass(frozen=True)
class TornTail:
    """Where and why a segment's prefix-replay stopped.

    ``valid_bytes`` is the offset of the last complete frame boundary —
    everything before it decoded cleanly; everything from it on is the
    crash artifact that reopening the journal truncates away.
    """

    valid_bytes: int
    discarded_bytes: int
    reason: str


@dataclass(frozen=True)
class JournalReplay:
    """The decoded state of a journal directory."""

    records: List[dict]
    torn_tail: Optional[TornTail]
    segment_path: Optional[Path]
    segment_index: Optional[int]


def _encode_record(record: dict) -> bytes:
    payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def read_segment(path: Union[str, Path]) -> Tuple[List[dict], Optional[TornTail]]:
    """Prefix-replay one segment file.

    Returns the cleanly decoded records and, if decoding stopped before
    the end of the file, a :class:`TornTail` describing the cut.  A
    missing or wrong magic raises :class:`JournalError` — that is not a
    crash artifact but a file that was never a journal segment.
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) < len(SEGMENT_MAGIC) or not data.startswith(SEGMENT_MAGIC):
        raise JournalError(
            f"{path}: not a journal segment (bad magic "
            f"{data[: len(SEGMENT_MAGIC)]!r}, expected {SEGMENT_MAGIC!r})"
        )
    records: List[dict] = []
    offset = len(SEGMENT_MAGIC)
    torn: Optional[TornTail] = None
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            torn = TornTail(offset, total - offset, "truncated frame header")
            break
        length, crc = _HEADER.unpack_from(data, offset)
        if length > _MAX_RECORD_BYTES:
            torn = TornTail(offset, total - offset, f"implausible frame length {length}")
            break
        body_start = offset + _HEADER.size
        body_end = body_start + length
        if body_end > total:
            torn = TornTail(
                offset,
                total - offset,
                f"truncated payload ({total - body_start} of {length} bytes)",
            )
            break
        payload = data[body_start:body_end]
        if zlib.crc32(payload) != crc:
            torn = TornTail(offset, total - offset, "crc mismatch")
            break
        try:
            record = pickle.loads(payload)
        except Exception as exc:  # pragma: no cover - crc makes this near-impossible
            torn = TornTail(offset, total - offset, f"undecodable payload: {exc!r}")
            break
        records.append(record)
        offset = body_end
    return records, torn


def _segment_index(path: Path) -> Optional[int]:
    match = _SEGMENT_RE.match(path.name)
    return int(match.group(1)) if match else None


def _list_segments(directory: Path) -> List[Tuple[int, Path]]:
    segments = []
    if directory.is_dir():
        for child in directory.iterdir():
            index = _segment_index(child)
            if index is not None:
                segments.append((index, child))
    segments.sort()
    return segments


class ServiceJournal:
    """An append-only, crash-truncating journal over numbered segments.

    Opening a journal directory picks (or creates) the newest segment,
    prefix-replays it and **truncates any torn tail** so appends resume on
    a clean frame boundary.  The records that survived the truncation are
    exposed as :attr:`opened_records` — :func:`ServiceJournal.replay` is
    the read-only way to get the same view without taking the append
    handle.

    :meth:`rotate` is compaction: it writes a complete replacement
    segment to ``<name>.tmp``, fsyncs it, atomically ``os.replace``\\ s it
    into the next segment number and only then unlinks older segments —
    at every intermediate crash point the directory still holds exactly
    one authoritative (newest, complete) segment.  Stale ``*.tmp`` files
    from crashed rotations are ignored by replay and cleaned up on open.
    """

    def __init__(self, directory: Union[str, Path], *, fsync: bool = True):
        self.directory = Path(directory)
        self.fsync = bool(fsync)
        self.directory.mkdir(parents=True, exist_ok=True)
        for stale in self.directory.glob("*.tmp"):
            stale.unlink(missing_ok=True)
        segments = _list_segments(self.directory)
        self.opened_records: List[dict] = []
        self.truncated_tail: Optional[TornTail] = None
        if segments:
            self._index, path = segments[-1]
            records, torn = read_segment(path)
            self.opened_records = records
            self.truncated_tail = torn
            if torn is not None:
                with open(path, "r+b") as handle:
                    handle.truncate(torn.valid_bytes)
                    self._sync(handle)
            self._path = path
            self._handle: Optional[IO[bytes]] = open(path, "ab")
        else:
            self._index = 1
            self._path = self.directory / f"segment-{self._index:08d}.wal"
            self._handle = open(self._path, "xb")
            self._handle.write(SEGMENT_MAGIC)
            self._flush()

    # -- Introspection ---------------------------------------------------------------
    @property
    def segment_path(self) -> Path:
        return self._path

    @property
    def segment_index(self) -> int:
        return self._index

    @property
    def closed(self) -> bool:
        return self._handle is None

    # -- Writing ---------------------------------------------------------------------
    def _sync(self, handle: IO[bytes]) -> None:
        if self.fsync:
            os.fsync(handle.fileno())

    def _flush(self) -> None:
        assert self._handle is not None
        self._handle.flush()
        self._sync(self._handle)

    def append(self, record: dict) -> None:
        """Durably append one event record (a picklable dict)."""
        if self._handle is None:
            raise JournalError(f"{self.directory}: journal is closed")
        self._handle.write(_encode_record(record))
        self._flush()

    def rotate(self, records: List[dict]) -> Path:
        """Atomically replace the journal's contents with ``records``.

        This is compaction, not archival: the caller supplies the full
        compacted state (e.g. one settled-summary record per finished
        query plus one submit record per live query), and the journal
        swaps to a fresh segment holding exactly those records.
        """
        if self._handle is None:
            raise JournalError(f"{self.directory}: journal is closed")
        next_index = self._index + 1
        final = self.directory / f"segment-{next_index:08d}.wal"
        tmp = self.directory / f"segment-{next_index:08d}.tmp"
        with open(tmp, "wb") as handle:
            handle.write(SEGMENT_MAGIC)
            for record in records:
                handle.write(_encode_record(record))
            handle.flush()
            self._sync(handle)
        os.replace(tmp, final)
        self._sync_directory()
        # The new segment is authoritative from the os.replace on; now the
        # old handle and older segments can go.
        self._handle.close()
        for index, path in _list_segments(self.directory):
            if index < next_index:
                path.unlink(missing_ok=True)
        self._index = next_index
        self._path = final
        self._handle = open(final, "ab")
        return final

    def _sync_directory(self) -> None:
        if not self.fsync:
            return
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._sync(self._handle)
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ServiceJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- Reading ---------------------------------------------------------------------
    @staticmethod
    def replay(directory: Union[str, Path]) -> JournalReplay:
        """Read-only prefix-replay of a journal directory.

        The **newest** segment is authoritative (rotation only unlinks
        older segments after the replacement is fully durable).  A
        missing directory, or one with no segments, replays to zero
        records — the empty journal.
        """
        directory = Path(directory)
        segments = _list_segments(directory)
        if not segments:
            return JournalReplay([], None, None, None)
        index, path = segments[-1]
        records, torn = read_segment(path)
        return JournalReplay(records, torn, path, index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceJournal({str(self.directory)!r}, "
            f"segment={self._index}, fsync={self.fsync})"
        )
