"""Typed columns for the in-memory column store."""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Union

import numpy as np

__all__ = ["Column"]

_NUMERIC_KINDS = {"i", "u", "f", "b"}


class Column:
    """A named, typed, immutable 1-D column.

    Columns are backed by numpy arrays.  Numeric and boolean columns keep
    their numpy dtype; everything else (strings, mixed objects) is stored
    as an object array.  The class is deliberately small: the query layer
    needs elementwise access, boolean masking and take-by-index, nothing
    more.
    """

    def __init__(self, name: str, values: Union[Sequence, np.ndarray]):
        if not name:
            raise ValueError("column name must be non-empty")
        self._name = name
        arr = np.asarray(values)
        if arr.ndim != 1:
            raise ValueError(
                f"column {name!r} must be one-dimensional, got shape {arr.shape}"
            )
        if arr.dtype.kind not in _NUMERIC_KINDS:
            arr = np.asarray(values, dtype=object)
        self._values = arr
        self._values.setflags(write=False)

    # -- Basic accessors ----------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def values(self) -> np.ndarray:
        """The underlying (read-only) numpy array."""
        return self._values

    @property
    def dtype(self) -> np.dtype:
        return self._values.dtype

    @property
    def is_numeric(self) -> bool:
        return self._values.dtype.kind in {"i", "u", "f"}

    @property
    def is_boolean(self) -> bool:
        return self._values.dtype.kind == "b"

    def __len__(self) -> int:
        return int(self._values.shape[0])

    def __getitem__(self, idx):
        return self._values[idx]

    def __iter__(self) -> Iterable[Any]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return self._name == other._name and np.array_equal(
            self._values, other._values
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Column({self._name!r}, n={len(self)}, dtype={self.dtype})"

    # -- Transformations ----------------------------------------------------------
    def rename(self, new_name: str) -> "Column":
        """Return a copy of the column under a different name."""
        return Column(new_name, self._values)

    def take(self, indices: Sequence[int]) -> "Column":
        """Return a new column with rows selected by integer indices."""
        idx = np.asarray(indices, dtype=np.int64)
        return Column(self._name, self._values[idx])

    def mask(self, boolean_mask: Sequence[bool]) -> "Column":
        """Return a new column with rows selected by a boolean mask."""
        m = np.asarray(boolean_mask, dtype=bool)
        if m.shape[0] != len(self):
            raise ValueError(
                f"mask length {m.shape[0]} does not match column length {len(self)}"
            )
        return Column(self._name, self._values[m])

    def astype(self, dtype) -> "Column":
        """Return a new column cast to ``dtype``."""
        return Column(self._name, self._values.astype(dtype))

    def unique(self) -> np.ndarray:
        """Distinct values, in sorted order for numeric columns."""
        return np.unique(self._values)
