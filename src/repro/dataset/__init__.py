"""Dataset substrate: an in-memory column store and a dataset catalog.

The paper's data is unstructured (video frames, images, emails).  What the
query algorithm actually consumes is much simpler: a set of records, each
carrying

* the fields the statistic is computed over (e.g. ``views``, ``rating``),
* hidden ground-truth labels that only the *oracle* may inspect (e.g.
  whether the frame contains a car), and
* per-predicate proxy scores.

We model that with a small columnar :class:`~repro.dataset.table.Table`
class (typed columns, row filtering, projection) and a
:class:`~repro.dataset.catalog.Catalog` for registering named datasets,
plus CSV / NPZ persistence in :mod:`repro.dataset.io`.
"""

from repro.dataset.column import Column
from repro.dataset.table import Table
from repro.dataset.catalog import Catalog, DatasetEntry
from repro.dataset.io import read_csv, write_csv, read_npz, write_npz

__all__ = [
    "Column",
    "Table",
    "Catalog",
    "DatasetEntry",
    "read_csv",
    "write_csv",
    "read_npz",
    "write_npz",
]
