"""Persistence helpers for tables (CSV and NPZ).

The synthetic datasets can be regenerated deterministically, but examples
and the experiment harness occasionally want to persist a generated table
(e.g. so a benchmark run and a plot script see identical data).  CSV keeps
things human-inspectable; NPZ preserves dtypes exactly.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.dataset.table import Table

__all__ = ["write_csv", "read_csv", "write_npz", "read_npz"]

PathLike = Union[str, Path]


def write_csv(table: Table, path: PathLike) -> None:
    """Write a table to CSV with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = table.column_names
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        columns = [table.values(n) for n in names]
        for i in range(table.num_rows):
            writer.writerow([columns[j][i] for j in range(len(names))])


def read_csv(path: PathLike, name: str = "table") -> Table:
    """Read a CSV written by :func:`write_csv`, inferring numeric columns."""
    path = Path(path)
    with path.open("r", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"CSV file {path} is empty") from None
        raw_rows = [row for row in reader if row]
    if not header:
        raise ValueError(f"CSV file {path} has an empty header")
    columns = {col: [] for col in header}
    for row in raw_rows:
        if len(row) != len(header):
            raise ValueError(
                f"CSV row has {len(row)} fields but header has {len(header)}: {row!r}"
            )
        for col, value in zip(header, row):
            columns[col].append(value)
    return Table({col: _infer_array(vals) for col, vals in columns.items()}, name=name)


def write_npz(table: Table, path: PathLike) -> None:
    """Write a table to a compressed NPZ archive (exact dtypes preserved)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {name: np.asarray(table.values(name)) for name in table.column_names}
    np.savez_compressed(path, **arrays)


def read_npz(path: PathLike, name: str = "table") -> Table:
    """Read a table from an NPZ archive written by :func:`write_npz`."""
    path = Path(path)
    with np.load(path, allow_pickle=True) as data:
        columns = {key: data[key] for key in data.files}
    if not columns:
        raise ValueError(f"NPZ file {path} contains no arrays")
    return Table(columns, name=name)


def _infer_array(values):
    """Infer int, float, bool, or string dtype for a list of CSV strings."""
    lowered = [v.strip().lower() for v in values]
    if lowered and all(v in ("true", "false") for v in lowered):
        return np.array([v == "true" for v in lowered], dtype=bool)
    try:
        return np.array([int(v) for v in values], dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.array([float(v) for v in values], dtype=np.float64)
    except ValueError:
        pass
    return np.array(values, dtype=object)
