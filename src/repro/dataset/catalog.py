"""A small catalog mapping dataset names to tables plus metadata.

The experiment harness registers the six synthetic dataset emulators here
(mirroring Table 2 of the paper) so that benchmarks, examples and tests can
look datasets up by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.dataset.table import Table

__all__ = ["DatasetEntry", "Catalog"]


@dataclass
class DatasetEntry:
    """Metadata describing a registered dataset.

    Attributes mirror the columns of Table 2 in the paper: the dataset size,
    a human-readable description of the predicate, and which columns hold
    the statistic, the ground-truth label, and the proxy score.
    """

    name: str
    table: Table
    statistic_column: str
    label_column: str
    proxy_column: str
    predicate_description: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return self.table.num_rows

    def positive_rate(self) -> float:
        """Fraction of records whose ground-truth label is truthy."""
        labels = self.table.values(self.label_column)
        if len(labels) == 0:
            return 0.0
        return float(sum(bool(v) for v in labels)) / len(labels)


class Catalog:
    """A mutable registry of named datasets."""

    def __init__(self):
        self._entries: Dict[str, DatasetEntry] = {}

    def register(self, entry: DatasetEntry, overwrite: bool = False) -> None:
        """Register a dataset; refuses to silently replace unless asked."""
        if entry.name in self._entries and not overwrite:
            raise ValueError(
                f"dataset {entry.name!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        self._entries[entry.name] = entry

    def register_lazy(
        self,
        name: str,
        factory: Callable[[], DatasetEntry],
        overwrite: bool = False,
    ) -> None:
        """Register a dataset built on first access (generators can be slow)."""
        if name in self._entries and not overwrite:
            raise ValueError(f"dataset {name!r} is already registered")
        self._entries[name] = _LazyEntry(name, factory)  # type: ignore[assignment]

    def get(self, name: str) -> DatasetEntry:
        """Look up a dataset, materializing it if it was registered lazily."""
        try:
            entry = self._entries[name]
        except KeyError:
            available = ", ".join(sorted(self._entries))
            raise KeyError(
                f"no dataset named {name!r}; available datasets: {available}"
            ) from None
        if isinstance(entry, _LazyEntry):
            entry = entry.materialize()
            self._entries[name] = entry
        return entry

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> List[str]:
        return sorted(self._entries)

    def remove(self, name: str) -> None:
        if name not in self._entries:
            raise KeyError(f"no dataset named {name!r} to remove")
        del self._entries[name]


class _LazyEntry:
    """Internal placeholder for lazily-constructed datasets."""

    def __init__(self, name: str, factory: Callable[[], DatasetEntry]):
        self.name = name
        self._factory = factory

    def materialize(self) -> DatasetEntry:
        entry = self._factory()
        if entry.name != self.name:
            raise ValueError(
                f"lazy dataset factory for {self.name!r} produced an entry "
                f"named {entry.name!r}"
            )
        return entry
