"""An in-memory, column-oriented table.

This is the substrate the query executor runs against.  It intentionally
supports only the operations the reproduction needs — column access,
row selection by index or mask, projection, derived columns, and row
dictionaries — rather than a full relational algebra.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.dataset.column import Column

__all__ = ["Table"]


class Table:
    """A named collection of equal-length :class:`Column` objects."""

    def __init__(
        self,
        columns: Union[Mapping[str, Sequence], Sequence[Column]],
        name: str = "table",
    ):
        self._name = name
        cols: Dict[str, Column] = {}
        if isinstance(columns, Mapping):
            items: Iterable = (
                (col_name, values) for col_name, values in columns.items()
            )
            for col_name, values in items:
                cols[col_name] = (
                    values if isinstance(values, Column) else Column(col_name, values)
                )
        else:
            for col in columns:
                if not isinstance(col, Column):
                    raise TypeError(
                        "Table expects a mapping of name->values or a sequence of Column"
                    )
                cols[col.name] = col
        if not cols:
            raise ValueError("a Table requires at least one column")
        lengths = {len(c) for c in cols.values()}
        if len(lengths) != 1:
            raise ValueError(
                f"all columns must have the same length, got lengths {sorted(lengths)}"
            )
        self._columns = cols
        self._num_rows = lengths.pop()

    # -- Basic accessors ----------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> List[str]:
        return list(self._columns.keys())

    def __len__(self) -> int:
        return self._num_rows

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def __getitem__(self, column_name: str) -> Column:
        return self.column(column_name)

    def column(self, column_name: str) -> Column:
        """Return the named column, raising KeyError with a helpful message."""
        try:
            return self._columns[column_name]
        except KeyError:
            available = ", ".join(sorted(self._columns))
            raise KeyError(
                f"table {self._name!r} has no column {column_name!r}; "
                f"available columns: {available}"
            ) from None

    def values(self, column_name: str) -> np.ndarray:
        """Shortcut for ``table.column(name).values``."""
        return self.column(column_name).values

    def row(self, index: int) -> Dict[str, object]:
        """Return a single row as a dict (used by oracles and examples)."""
        if not -self._num_rows <= index < self._num_rows:
            raise IndexError(
                f"row index {index} out of range for table with {self._num_rows} rows"
            )
        return {name: col[index] for name, col in self._columns.items()}

    def rows(self, indices: Optional[Sequence[int]] = None) -> List[Dict[str, object]]:
        """Materialize rows as dicts; all rows when ``indices`` is None."""
        if indices is None:
            indices = range(self._num_rows)
        return [self.row(int(i)) for i in indices]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Table({self._name!r}, rows={self._num_rows}, "
            f"columns={self.column_names})"
        )

    # -- Derivation ---------------------------------------------------------------
    def with_column(self, name: str, values: Sequence) -> "Table":
        """Return a new table with an added or replaced column."""
        column = values if isinstance(values, Column) else Column(name, values)
        if len(column) != self._num_rows:
            raise ValueError(
                f"new column {name!r} has {len(column)} rows, table has {self._num_rows}"
            )
        new_cols = dict(self._columns)
        new_cols[name] = column.rename(name)
        return Table(new_cols, name=self._name)

    def with_derived_column(
        self, name: str, fn: Callable[[Dict[str, object]], object]
    ) -> "Table":
        """Return a new table with a column computed row-by-row from ``fn``."""
        derived = [fn(self.row(i)) for i in range(self._num_rows)]
        return self.with_column(name, derived)

    def select(self, column_names: Sequence[str]) -> "Table":
        """Project onto a subset of columns."""
        missing = [c for c in column_names if c not in self._columns]
        if missing:
            raise KeyError(f"unknown columns in select: {missing}")
        return Table(
            {c: self._columns[c] for c in column_names}, name=self._name
        )

    def take(self, indices: Sequence[int]) -> "Table":
        """Return a new table with rows selected by integer indices."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < -self._num_rows or idx.max() >= self._num_rows):
            raise IndexError("row index out of range in take()")
        return Table(
            {name: col.take(idx) for name, col in self._columns.items()},
            name=self._name,
        )

    def mask(self, boolean_mask: Sequence[bool]) -> "Table":
        """Return a new table with rows selected by a boolean mask."""
        m = np.asarray(boolean_mask, dtype=bool)
        if m.shape[0] != self._num_rows:
            raise ValueError(
                f"mask length {m.shape[0]} does not match table length {self._num_rows}"
            )
        return Table(
            {name: col.mask(m) for name, col in self._columns.items()},
            name=self._name,
        )

    def rename(self, new_name: str) -> "Table":
        """Return the same table under a new name."""
        return Table(self._columns, name=new_name)

    def concat(self, other: "Table") -> "Table":
        """Row-wise concatenation of two tables with identical columns."""
        if set(self.column_names) != set(other.column_names):
            raise ValueError(
                "cannot concat tables with different columns: "
                f"{sorted(self.column_names)} vs {sorted(other.column_names)}"
            )
        merged = {}
        for name in self.column_names:
            merged[name] = np.concatenate(
                [np.asarray(self._columns[name].values), np.asarray(other[name].values)]
            )
        return Table(merged, name=self._name)

    def to_dict(self) -> Dict[str, np.ndarray]:
        """Return the table contents as a dict of numpy arrays (copies)."""
        return {name: np.array(col.values) for name, col in self._columns.items()}
