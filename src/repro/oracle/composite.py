"""Composite oracles: AND / OR / NOT over other oracles.

ABae-MultiPred supports predicates built from conjunctions, disjunctions
and negations of expensive predicates (Section 3.3).  At query-evaluation
time the combined predicate is just Boolean algebra over the constituent
oracles' answers.  Children are evaluated left to right with short-circuit
semantics (a conjunction stops at the first False, a disjunction at the
first True), each child charging its own cost — mirroring a system that
cascades its DNNs and skips the rest once the expression is decided.  The
batched ``_evaluate_batch`` paths use masked evaluation to preserve exactly
the same per-child call counts as the sequential path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.oracle.base import Oracle, PredicateOracle, evaluate_oracle_batch

__all__ = ["AndOracle", "OrOracle", "NotOracle"]


class _CompositeOracle(PredicateOracle):
    """Shared machinery for composites: children, names, and accounting.

    The composite's own ``cost_per_call`` defaults to zero because the cost
    of evaluating the expression is the sum of its children's costs, which
    the children account for themselves.  ``total_children_cost`` exposes
    that sum for reports.
    """

    def __init__(self, children: Sequence[Oracle], name: str):
        if not children:
            raise ValueError(f"{type(self).__name__} requires at least one child oracle")
        super().__init__(name=name, cost_per_call=0.0)
        self._children = list(children)

    @property
    def children(self) -> Sequence[Oracle]:
        return list(self._children)

    @property
    def total_children_cost(self) -> float:
        return sum(child.total_cost for child in self._children)

    @property
    def total_children_calls(self) -> int:
        return sum(child.num_calls for child in self._children)


class AndOracle(_CompositeOracle):
    """Conjunction of oracles: true only if every child is true."""

    def __init__(self, children: Sequence[Oracle], name: str = None):
        child_names = " AND ".join(c.name for c in children)
        super().__init__(children, name=name or f"({child_names})")

    def _evaluate(self, record_index: int) -> bool:
        return all(bool(child(record_index)) for child in self._children)

    def _evaluate_batch(self, record_indices) -> np.ndarray:
        # Masked evaluation mirrors the short-circuit of `all(...)`: child
        # i+1 is only consulted for records every earlier child accepted, so
        # each child's call count and log match the sequential path exactly.
        idx = np.asarray(record_indices, dtype=np.int64)
        result = np.ones(idx.shape[0], dtype=bool)
        for child in self._children:
            active = np.flatnonzero(result)
            if active.size == 0:
                break
            answers = np.asarray(
                evaluate_oracle_batch(child, idx[active]), dtype=bool
            )
            result[active] = answers
        return result


class OrOracle(_CompositeOracle):
    """Disjunction of oracles: true if any child is true."""

    def __init__(self, children: Sequence[Oracle], name: str = None):
        child_names = " OR ".join(c.name for c in children)
        super().__init__(children, name=name or f"({child_names})")

    def _evaluate(self, record_index: int) -> bool:
        return any(bool(child(record_index)) for child in self._children)

    def _evaluate_batch(self, record_indices) -> np.ndarray:
        # Mirrors `any(...)`: a child only sees records every earlier child
        # rejected, preserving the sequential path's per-child accounting.
        idx = np.asarray(record_indices, dtype=np.int64)
        result = np.zeros(idx.shape[0], dtype=bool)
        for child in self._children:
            active = np.flatnonzero(~result)
            if active.size == 0:
                break
            answers = np.asarray(
                evaluate_oracle_batch(child, idx[active]), dtype=bool
            )
            result[active] = answers
        return result


class NotOracle(_CompositeOracle):
    """Negation of a single oracle."""

    def __init__(self, child: Oracle, name: str = None):
        super().__init__([child], name=name or f"NOT {child.name}")

    def _evaluate(self, record_index: int) -> bool:
        return not bool(self._children[0](record_index))

    def _evaluate_batch(self, record_indices) -> np.ndarray:
        answers = np.asarray(
            evaluate_oracle_batch(self._children[0], record_indices), dtype=bool
        )
        return ~answers
