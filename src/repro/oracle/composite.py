"""Composite oracles: AND / OR / NOT over other oracles.

ABae-MultiPred supports predicates built from conjunctions, disjunctions
and negations of expensive predicates (Section 3.3).  At query-evaluation
time the combined predicate is just Boolean algebra over the constituent
oracles' answers; the composite classes here evaluate all children (each
child charges its own cost, mirroring a system that must run every DNN to
confirm the full expression).
"""

from __future__ import annotations

from typing import Sequence

from repro.oracle.base import Oracle, PredicateOracle

__all__ = ["AndOracle", "OrOracle", "NotOracle"]


class _CompositeOracle(PredicateOracle):
    """Shared machinery for composites: children, names, and accounting.

    The composite's own ``cost_per_call`` defaults to zero because the cost
    of evaluating the expression is the sum of its children's costs, which
    the children account for themselves.  ``total_children_cost`` exposes
    that sum for reports.
    """

    def __init__(self, children: Sequence[Oracle], name: str):
        if not children:
            raise ValueError(f"{type(self).__name__} requires at least one child oracle")
        super().__init__(name=name, cost_per_call=0.0)
        self._children = list(children)

    @property
    def children(self) -> Sequence[Oracle]:
        return list(self._children)

    @property
    def total_children_cost(self) -> float:
        return sum(child.total_cost for child in self._children)

    @property
    def total_children_calls(self) -> int:
        return sum(child.num_calls for child in self._children)


class AndOracle(_CompositeOracle):
    """Conjunction of oracles: true only if every child is true."""

    def __init__(self, children: Sequence[Oracle], name: str = None):
        child_names = " AND ".join(c.name for c in children)
        super().__init__(children, name=name or f"({child_names})")

    def _evaluate(self, record_index: int) -> bool:
        return all(bool(child(record_index)) for child in self._children)


class OrOracle(_CompositeOracle):
    """Disjunction of oracles: true if any child is true."""

    def __init__(self, children: Sequence[Oracle], name: str = None):
        child_names = " OR ".join(c.name for c in children)
        super().__init__(children, name=name or f"({child_names})")

    def _evaluate(self, record_index: int) -> bool:
        return any(bool(child(record_index)) for child in self._children)


class NotOracle(_CompositeOracle):
    """Negation of a single oracle."""

    def __init__(self, child: Oracle, name: str = None):
        super().__init__([child], name=name or f"NOT {child.name}")

    def _evaluate(self, record_index: int) -> bool:
        return not bool(self._children[0](record_index))
