"""Oracle interface and invocation accounting.

The cost model mirrors the paper's metric: "We measure the cost in terms of
oracle predicate invocations as it is the dominant cost of query execution
by orders of magnitude" (Section 5.1).  Each oracle therefore counts calls
and can attach a per-call monetary / GPU-time cost so reports can translate
sample counts into dollars, as the introduction's $262,000 example does.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.analysis.annotations import guarded_by

__all__ = [
    "OracleCallRecord",
    "ColumnarCallLog",
    "Oracle",
    "PredicateOracle",
    "StatisticOracle",
    "evaluate_oracle_batch",
]


@dataclass
class OracleCallRecord:
    """A single oracle invocation, kept for auditing and cost reports."""

    record_index: int
    result: object
    cost: float


class ColumnarCallLog:
    """Columnar per-call accounting: growable index/result/cost buffers.

    The log is append-only and batch-oriented: one ``append_batch`` per
    oracle invocation batch, costing O(batch) bulk copies instead of O(n)
    per-record object constructions.  Indices and costs live in NumPy
    buffers that double on overflow (O(1) amortized per record); results —
    which may be booleans, floats or arbitrary group keys — live in a plain
    Python list extended in bulk.  The legacy list-of-
    :class:`OracleCallRecord` view is materialized lazily on demand and is
    element-wise identical (order, indices, results, costs) to what the
    per-record append implementation produced.
    """

    _INITIAL_CAPACITY = 64

    __slots__ = ("_indices", "_costs", "_results", "_size")

    def __init__(self):
        self._indices = np.empty(self._INITIAL_CAPACITY, dtype=np.int64)
        self._costs = np.empty(self._INITIAL_CAPACITY, dtype=float)
        self._results: List[object] = []
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _grow_to(self, needed: int) -> None:
        capacity = self._indices.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("_indices", "_costs"):
            old = getattr(self, name)
            fresh = np.empty(capacity, dtype=old.dtype)
            fresh[: self._size] = old[: self._size]
            setattr(self, name, fresh)

    def append_batch(self, record_indices, results, cost: float) -> None:
        """Append one batch of evaluations (a batch of 1 is a scalar call)."""
        idx = np.asarray(record_indices, dtype=np.int64)
        count = idx.shape[0]
        if count == 0:
            return
        end = self._size + count
        self._grow_to(end)
        self._indices[self._size : end] = idx
        self._costs[self._size : end] = cost
        self._results.extend(results)
        self._size = end

    def clear(self) -> None:
        """Empty the log, reallocating the buffers.

        Reallocation (rather than size reset) keeps previously handed-out
        zero-copy views valid as snapshots — post-clear appends land in
        fresh buffers instead of overwriting bytes an earlier view still
        references — and releases whatever a large prior run pinned.
        """
        self._indices = np.empty(self._INITIAL_CAPACITY, dtype=np.int64)
        self._costs = np.empty(self._INITIAL_CAPACITY, dtype=float)
        self._results = []
        self._size = 0

    # -- Columnar views -----------------------------------------------------------
    @property
    def indices(self) -> np.ndarray:
        """Record indices of every logged call, in evaluation order (read-only)."""
        view = self._indices[: self._size]
        view.flags.writeable = False
        return view

    @property
    def costs(self) -> np.ndarray:
        """Per-call cost of every logged call, in evaluation order (read-only)."""
        view = self._costs[: self._size]
        view.flags.writeable = False
        return view

    @property
    def results(self) -> List[object]:
        """Results of every logged call, in evaluation order (a copy)."""
        return list(self._results)

    def records(self) -> List[OracleCallRecord]:
        """Lazily materialize the legacy per-call record list."""
        indices = self._indices[: self._size].tolist()
        costs = self._costs[: self._size].tolist()
        return [
            OracleCallRecord(record_index=index, result=result, cost=cost)
            for index, result, cost in zip(indices, self._results, costs)
        ]


@guarded_by("_account_lock", "_num_calls", "_log")
class Oracle(abc.ABC):
    """Base class for anything that answers per-record questions at a cost.

    Subclasses implement :meth:`_evaluate`; the public :meth:`__call__`
    wraps it with invocation counting, per-call cost accumulation and an
    optional call log.  ``cost_per_call`` defaults to 1.0 so "total cost"
    equals "number of invocations" unless a caller configures real costs.
    """

    def __init__(
        self,
        name: str = "oracle",
        cost_per_call: float = 1.0,
        keep_log: bool = False,
    ):
        if cost_per_call < 0:
            raise ValueError(f"cost_per_call must be non-negative, got {cost_per_call}")
        self._name = name
        self._cost_per_call = cost_per_call
        self._num_calls = 0
        self._keep_log = keep_log
        self._log = ColumnarCallLog()
        # Serializes `_record` so worker threads (repro.core.parallel) cannot
        # lose counter updates.  Uncontended acquisition is ~100ns per batch,
        # negligible next to even a vectorized oracle evaluation.
        self._account_lock = threading.Lock()

    # -- Accounting ---------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def cost_per_call(self) -> float:
        return self._cost_per_call

    @property
    def num_calls(self) -> int:
        """How many times the oracle has been invoked."""
        return self._num_calls

    @property
    def total_cost(self) -> float:
        """Accumulated cost across all invocations.

        Derived as ``cost_per_call * num_calls`` rather than accumulated
        float-by-float, so the value is bit-identical no matter how the same
        evaluations were partitioned into batches or shards (floating-point
        addition is not associative; a single multiply is partition-proof).
        """
        return self._cost_per_call * self._num_calls

    @property
    def call_log(self) -> List[OracleCallRecord]:
        """The per-call log (empty unless constructed with ``keep_log=True``).

        This is the *legacy view*: a fresh list of
        :class:`OracleCallRecord` objects materialized on access (O(n)).
        Accounting itself is columnar — prefer :attr:`call_log_columns` in
        hot paths, which exposes the underlying buffers without object
        churn.
        """
        return self._log.records()

    @property
    def call_log_columns(self) -> ColumnarCallLog:
        """The columnar call log (index/result/cost buffers, zero-copy views)."""
        return self._log

    def reset_accounting(self) -> None:
        """Zero the call counter, cost, and log (e.g. between trials)."""
        with self._account_lock:
            self._num_calls = 0
            self._log.clear()

    def _record(self, record_indices: Sequence[int], results: Sequence) -> None:
        """The single accounting point for every oracle invocation.

        Invariant: each evaluated record charges exactly one ``num_calls``
        unit and one ``cost_per_call`` unit, and (when logging is enabled)
        appends exactly one log entry, in evaluation order.  Both
        :meth:`__call__` and :meth:`evaluate_batch` route through this
        helper, so a batch of ``n`` records is indistinguishable — in
        counters, cost and log — from ``n`` sequential calls.  Logging is
        columnar: one bulk append per batch (O(1) amortized per record)
        instead of one :class:`OracleCallRecord` construction per record;
        the legacy record list stays available as a lazily-materialized
        view through :attr:`call_log`.  The helper is thread-safe:
        composite oracles evaluated on worker threads (see
        :mod:`repro.core.parallel`) account their children here
        concurrently without losing updates.
        """
        count = len(record_indices)
        with self._account_lock:
            self._num_calls += count
            if self._keep_log:
                self._log.append_batch(record_indices, results, self._cost_per_call)

    # -- Evaluation ---------------------------------------------------------------
    def __call__(self, record_index: int):
        result = self._evaluate(record_index)
        self._record((record_index,), (result,))
        return result

    def evaluate_batch(self, record_indices: Sequence[int]):
        """Evaluate many records at once, with identical accounting semantics.

        Returns a sequence of results aligned with ``record_indices``.  The
        default implementation loops over :meth:`_evaluate`; subclasses
        backed by arrays override :meth:`_evaluate_batch` with vectorized
        NumPy implementations.  Counters, cost and the call log advance
        exactly as if each record had been evaluated with :meth:`__call__`.
        """
        results = self._evaluate_batch(record_indices)
        self._record(record_indices, results)
        return results

    @abc.abstractmethod
    def _evaluate(self, record_index: int):
        """Produce the oracle's answer for one record (no accounting)."""

    def _evaluate_batch(self, record_indices: Sequence[int]):
        """Produce answers for many records (no accounting).

        Override with a vectorized implementation where possible; the
        default simply loops over :meth:`_evaluate`.
        """
        return [
            self._evaluate(i) for i in np.asarray(record_indices, dtype=np.int64).tolist()
        ]

    # -- Pickling (process-backend parallel execution) ----------------------------
    def __getstate__(self):
        """Locks are not picklable; drop it so oracles can ship to workers."""
        state = self.__dict__.copy()
        state.pop("_account_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._account_lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self._name!r}, calls={self._num_calls})"


class PredicateOracle(Oracle):
    """An oracle whose answers are booleans (the expensive predicate O(x))."""

    def __call__(self, record_index: int) -> bool:
        return bool(super().__call__(record_index))

    def evaluate_batch(self, record_indices: Sequence[int]) -> np.ndarray:
        """Boolean answers for many records as a NumPy bool array."""
        return np.asarray(super().evaluate_batch(record_indices), dtype=bool)


class StatisticOracle:
    """Computes the aggregated expression ``f(x)`` for a record.

    The paper assumes "the statistic can be computed in conjunction with the
    predicates or is cheap to compute" (Section 2.1), so the statistic is
    *not* charged against the oracle budget.  It still lives behind a small
    interface so queries like ``AVG(count_cars(frame))`` — where the
    statistic is extracted from the oracle's own output — can share the
    predicate oracle's cached result.
    """

    def __init__(
        self,
        fn: Callable[[int], float],
        name: str = "statistic",
        values: Optional[Sequence[float]] = None,
    ):
        self._fn = fn
        self._name = name
        self._values = None if values is None else np.asarray(values, dtype=float)

    @property
    def name(self) -> str:
        return self._name

    @property
    def values(self) -> Optional[np.ndarray]:
        """The backing value column when one exists (else None)."""
        return self._values

    def __call__(self, record_index: int) -> float:
        return float(self._fn(record_index))

    def batch(self, record_indices: Sequence[int]) -> np.ndarray:
        """Statistic values for many records (vectorized when column-backed)."""
        idx = np.asarray(record_indices, dtype=np.int64)
        if self._values is not None:
            return self._values[idx].astype(float)
        return np.array([float(self._fn(i)) for i in idx.tolist()], dtype=float)

    @classmethod
    def from_column(cls, values, name: str = "statistic") -> "StatisticOracle":
        """Build a statistic oracle reading from a precomputed array/column."""
        arr = np.asarray(values, dtype=float)

        def lookup(idx: int) -> float:
            return float(arr[idx])

        return cls(lookup, name=name, values=arr)


def evaluate_oracle_batch(oracle: Callable[[int], object], record_indices) -> list:
    """Evaluate any oracle-like callable on many records at once.

    Uses the oracle's :meth:`~Oracle.evaluate_batch` fast path when it
    exists (any :class:`Oracle` subclass, :class:`CachingOracle`,
    :class:`BudgetedOracle`, ...) and falls back to a per-record loop for
    plain callables, so sampling code can batch unconditionally.
    """
    batch = getattr(oracle, "evaluate_batch", None)
    if batch is not None:
        return batch(record_indices)
    return [oracle(i) for i in np.asarray(record_indices, dtype=np.int64).tolist()]
