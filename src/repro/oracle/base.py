"""Oracle interface and invocation accounting.

The cost model mirrors the paper's metric: "We measure the cost in terms of
oracle predicate invocations as it is the dominant cost of query execution
by orders of magnitude" (Section 5.1).  Each oracle therefore counts calls
and can attach a per-call monetary / GPU-time cost so reports can translate
sample counts into dollars, as the introduction's $262,000 example does.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["OracleCallRecord", "Oracle", "PredicateOracle", "StatisticOracle"]


@dataclass
class OracleCallRecord:
    """A single oracle invocation, kept for auditing and cost reports."""

    record_index: int
    result: object
    cost: float


class Oracle(abc.ABC):
    """Base class for anything that answers per-record questions at a cost.

    Subclasses implement :meth:`_evaluate`; the public :meth:`__call__`
    wraps it with invocation counting, per-call cost accumulation and an
    optional call log.  ``cost_per_call`` defaults to 1.0 so "total cost"
    equals "number of invocations" unless a caller configures real costs.
    """

    def __init__(
        self,
        name: str = "oracle",
        cost_per_call: float = 1.0,
        keep_log: bool = False,
    ):
        if cost_per_call < 0:
            raise ValueError(f"cost_per_call must be non-negative, got {cost_per_call}")
        self._name = name
        self._cost_per_call = cost_per_call
        self._num_calls = 0
        self._total_cost = 0.0
        self._keep_log = keep_log
        self._log: List[OracleCallRecord] = []

    # -- Accounting ---------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def cost_per_call(self) -> float:
        return self._cost_per_call

    @property
    def num_calls(self) -> int:
        """How many times the oracle has been invoked."""
        return self._num_calls

    @property
    def total_cost(self) -> float:
        """Accumulated cost across all invocations."""
        return self._total_cost

    @property
    def call_log(self) -> List[OracleCallRecord]:
        """The per-call log (empty unless constructed with ``keep_log=True``)."""
        return list(self._log)

    def reset_accounting(self) -> None:
        """Zero the call counter, cost, and log (e.g. between trials)."""
        self._num_calls = 0
        self._total_cost = 0.0
        self._log.clear()

    # -- Evaluation ---------------------------------------------------------------
    def __call__(self, record_index: int):
        result = self._evaluate(record_index)
        self._num_calls += 1
        self._total_cost += self._cost_per_call
        if self._keep_log:
            self._log.append(
                OracleCallRecord(
                    record_index=int(record_index),
                    result=result,
                    cost=self._cost_per_call,
                )
            )
        return result

    @abc.abstractmethod
    def _evaluate(self, record_index: int):
        """Produce the oracle's answer for one record (no accounting)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self._name!r}, calls={self._num_calls})"


class PredicateOracle(Oracle):
    """An oracle whose answers are booleans (the expensive predicate O(x))."""

    def __call__(self, record_index: int) -> bool:
        return bool(super().__call__(record_index))


class StatisticOracle:
    """Computes the aggregated expression ``f(x)`` for a record.

    The paper assumes "the statistic can be computed in conjunction with the
    predicates or is cheap to compute" (Section 2.1), so the statistic is
    *not* charged against the oracle budget.  It still lives behind a small
    interface so queries like ``AVG(count_cars(frame))`` — where the
    statistic is extracted from the oracle's own output — can share the
    predicate oracle's cached result.
    """

    def __init__(self, fn: Callable[[int], float], name: str = "statistic"):
        self._fn = fn
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def __call__(self, record_index: int) -> float:
        return float(self._fn(record_index))

    @classmethod
    def from_column(cls, values, name: str = "statistic") -> "StatisticOracle":
        """Build a statistic oracle reading from a precomputed array/column."""
        import numpy as np

        arr = np.asarray(values, dtype=float)

        def lookup(idx: int) -> float:
            return float(arr[idx])

        return cls(lookup, name=name)
