"""Async RPC oracle protocol: remote services with batching, retries, parking.

The paper's expensive predicates are model-serving endpoints (Mask R-CNN
behind a GPU server, a labeling API), not in-process callables: every
invocation is a *remote procedure call* with real latency, rate limits
and partial failure.  This module adapts any oracle-shaped transport into
that shape — and, crucially, lets the serving layer *overlap* oracle wait
time across queries instead of blocking a scheduler tick on every slow
batch.

Three pieces:

* :class:`RemoteEndpoint` — the client-side view of one remote scoring
  service.  Sub-requests submitted by any number of callers are
  **coalesced** into merged batches (whole sub-requests, up to
  ``max_batch_size`` records; a batch also launches once its oldest
  sub-request is ``max_delay`` old, or on an explicit :meth:`flush`).
  Launched batches run on a bounded worker pool — ``max_in_flight`` is
  the concurrency limiter — with per-request timeouts and retries under
  exponential backoff whose jitter comes from a dedicated seeded
  :class:`~repro.stats.rng.RandomState`, so backoff schedules are
  reproducible.  All failure accounting lands in :class:`RemoteCallStats`.
* :class:`RemoteTicket` — one caller's pending sub-request: poll it
  (:meth:`~RemoteTicket.ready` / :meth:`~RemoteTicket.poll`) or block on
  it (:meth:`~RemoteTicket.wait`); :meth:`~RemoteTicket.result` returns
  the answers aligned with the submitted records or raises the terminal
  error.
* :class:`AsyncOracle` — the :class:`~repro.oracle.base.Oracle` adapter.
  In **blocking** mode (the default) ``evaluate_batch`` submits, flushes
  and waits — a drop-in oracle whose callers simply tolerate retries.  In
  **cooperative** mode (``blocking=False``) a not-yet-ready batch raises
  :class:`PendingOracleBatch` instead of waiting; the sampling session
  catches it, rewinds its RNG, and the serving scheduler parks the query
  in ``WAITING`` and steps *other* queries while the batch is in flight.

Determinism contract
--------------------
Retries and timeouts change *time*, never *answers*: a transport answers
per record deterministically, so however many attempts a batch needs, the
results a caller receives — and therefore every estimate and the
:class:`AsyncOracle`'s own accounting (one charge per successfully
answered record, through the standard ``Oracle._record`` /
``ColumnarCallLog`` path) — are bit-identical to a failure-free run.  The
cooperative path preserves this exactly: a parked draw step consumed
session RNG only for record selection, the session restores that state
before re-raising, and the retried step re-selects the *same* records
(``tests/test_serve_remote.py`` pins this on the fingerprint grid).

Cooperative mode is single-caller by design (one sampling session drives
one ``AsyncOracle``); pair it with ``num_workers=1`` — the endpoint's
worker pool, not the engine's, provides the parallelism.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro import clock as repro_clock
from repro.analysis.annotations import guarded_by
from repro.oracle.base import Oracle, evaluate_oracle_batch
from repro.stats.rng import RandomState

__all__ = [
    "RemoteCallError",
    "RemoteCallTimeout",
    "RemoteGiveUpError",
    "RemoteCircuitOpenError",
    "PendingOracleBatch",
    "RemoteCallStats",
    "RemoteTicket",
    "RemoteEndpoint",
    "AsyncOracle",
]


class RemoteCallError(RuntimeError):
    """A transport-level failure of one remote batch attempt (retryable)."""


class RemoteCallTimeout(RemoteCallError):
    """An attempt that exceeded the per-request timeout (retryable)."""


class RemoteGiveUpError(RemoteCallError):
    """A batch abandoned after exhausting its retries (terminal).

    Raised to every caller whose sub-request rode the abandoned batch;
    ``__cause__`` carries the last attempt's error.
    """


class RemoteCircuitOpenError(RemoteGiveUpError):
    """A batch rejected without a transport attempt: the breaker is open.

    Subclasses :class:`RemoteGiveUpError` so every degradation path that
    handles a give-up (the serving scheduler's ``DegradedResult`` path)
    also covers fast-fail under an open circuit.
    """


class PendingOracleBatch(Exception):
    """Cooperative-mode signal: the requested batch is still in flight.

    Carries the :class:`RemoteTicket` to poll/wait on.  The sampling
    session translates this into a parked step (RNG rewound, no state
    mutated) and the serving scheduler into a ``WAITING`` task; neither
    treats it as a failure.
    """

    def __init__(self, ticket: "RemoteTicket", oracle: Optional[Oracle] = None):
        super().__init__(
            f"remote oracle batch of {len(ticket.record_indices)} records "
            "is still in flight"
        )
        self.ticket = ticket
        self.oracle = oracle


@dataclass(frozen=True)
class RemoteCallStats:
    """A consistent snapshot of one endpoint's failure/volume accounting.

    ``attempts`` counts transport invocations (including retries);
    ``retries`` the re-invocations after a retryable failure;
    ``timeouts`` / ``failures`` classify the failed attempts; ``giveups``
    the batches abandoned after ``max_retries``.  ``requests`` /
    ``records`` / ``batches`` measure volume: sub-requests submitted,
    record indices they carried, and merged batches launched —
    ``requests - batches`` sub-requests rode a coalesced batch for free.
    """

    requests: int
    records: int
    batches: int
    attempts: int
    retries: int
    timeouts: int
    failures: int
    giveups: int
    pending_requests: int
    in_flight_batches: int
    # Circuit-breaker accounting (all zero/"closed" when disabled):
    # the current consecutive-give-up run, how many times the breaker
    # tripped, batches rejected without a transport attempt while open,
    # and the current state ("closed" / "open" / "half_open").
    giveup_streak: int = 0
    breaker_opens: int = 0
    short_circuits: int = 0
    breaker_state: str = "closed"

    @property
    def coalesced(self) -> int:
        """Launched sub-requests beyond one per batch (shared a batch)."""
        return (self.requests - self.pending_requests) - self.batches


class RemoteTicket:
    """One submitted sub-request: resolves to answers or a terminal error."""

    __slots__ = (
        "endpoint",
        "record_indices",
        "created_at",
        "_event",
        "_results",
        "_error",
    )

    def __init__(self, endpoint: "RemoteEndpoint", record_indices: np.ndarray):
        self.endpoint = endpoint
        self.record_indices = record_indices
        self.created_at = endpoint.clock()
        self._event = threading.Event()
        self._results: Optional[Sequence] = None
        self._error: Optional[BaseException] = None

    def ready(self) -> bool:
        """Whether the sub-request has resolved (successfully or not)."""
        return self._event.is_set()

    def poll(self) -> bool:
        """Like :meth:`ready`, but first gives the endpoint a chance to
        launch overdue batches (the ``max_delay`` trigger)."""
        if not self._event.is_set():
            self.endpoint.maybe_flush()
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until resolved; flushes the endpoint first so a partial
        batch can never deadlock a waiting caller."""
        if not self._event.is_set():
            self.endpoint.flush()
        return self._event.wait(timeout)

    def result(self) -> Sequence:
        """The answers aligned with the submitted records.

        Raises :class:`RemoteGiveUpError` (or the terminal error) if the
        batch was abandoned, and ``RuntimeError`` if not yet resolved.
        """
        if not self._event.is_set():
            raise RuntimeError("remote batch has not resolved yet; wait() first")
        if self._error is not None:
            raise self._error
        return self._results

    # -- Resolution (called by the endpoint's worker) -----------------------------
    def _resolve(self, results: Sequence) -> None:
        self._results = results
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ready" if self.ready() else "pending"
        return f"RemoteTicket({len(self.record_indices)} records, {state})"


@guarded_by(
    "_lock",
    "_queue",
    "_executor",
    "_closed",
    "_requests",
    "_records",
    "_batches",
    "_attempts",
    "_retries",
    "_timeouts",
    "_failures",
    "_giveups",
    "_in_flight",
    "_breaker_state",
    "_breaker_opened_at",
    "_giveup_streak",
    "_breaker_opens",
    "_short_circuits",
)
class RemoteEndpoint:
    """Client-side batching, concurrency limiting and retry engine.

    Parameters
    ----------
    transport:
        The remote service: anything oracle-shaped — an
        :class:`~repro.oracle.base.Oracle` (its ``evaluate_batch`` is
        used) or a plain ``record_index -> answer`` callable.  Transient
        failures are signalled by raising :class:`RemoteCallError` /
        :class:`RemoteCallTimeout`; any other exception is terminal
        (resolved to the affected callers without retry).
    max_batch_size:
        Coalescing ceiling in records.  Whole sub-requests are merged —
        a sub-request is never split — so a single oversized sub-request
        forms its own batch.
    max_delay:
        Seconds a queued sub-request may age before :meth:`maybe_flush`
        launches its (partial) batch.  ``0.0`` (default) launches on the
        first poll after submission — right for a cooperative scheduler
        that polls between steps.
    max_in_flight:
        Concurrency limiter: the worker pool runs at most this many
        batches at once; further launches queue.
    timeout:
        Per-attempt ceiling in seconds (``None`` disables).  An attempt
        whose transport raises :class:`RemoteCallTimeout`, or whose
        wall-clock exceeds the ceiling, counts as a timeout and is
        retried; a late answer is discarded like a lost response.
    max_retries / backoff_base / backoff_multiplier / jitter_fraction / seed:
        Retry policy: up to ``max_retries`` re-attempts, sleeping
        ``backoff_base * backoff_multiplier**i * (1 + jitter_fraction*u)``
        before re-attempt ``i`` where ``u`` is drawn from a dedicated
        ``RandomState(seed)`` — deterministic, and never shared with any
        sampling session.
    breaker_threshold / breaker_cooldown:
        Optional circuit breaker on give-up streaks.  After
        ``breaker_threshold`` *consecutive* give-ups the breaker opens:
        batches fail fast with :class:`RemoteCircuitOpenError` (no
        transport attempt, no retry sleeps) until ``breaker_cooldown``
        seconds pass, then one probe batch is admitted (half-open) — its
        success closes the breaker, another give-up re-opens it.
        ``None`` (default) disables the breaker entirely.
    clock / sleep:
        Injectable time sources (tests use virtual clocks and recording
        sleepers; production uses ``time.monotonic`` / ``time.sleep``).
    """

    def __init__(
        self,
        transport: Callable[[int], object],
        *,
        max_batch_size: int = 256,
        max_delay: float = 0.0,
        max_in_flight: int = 4,
        timeout: Optional[float] = None,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_multiplier: float = 2.0,
        jitter_fraction: float = 0.1,
        breaker_threshold: Optional[int] = None,
        breaker_cooldown: float = 30.0,
        seed: int = 0,
        name: Optional[str] = None,
        clock: Callable[[], float] = repro_clock.monotonic,
        sleep: Callable[[float], None] = repro_clock.sleep,
    ):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive or None, got {timeout}")
        if backoff_base < 0 or backoff_multiplier < 1:
            raise ValueError(
                "backoff_base must be >= 0 and backoff_multiplier >= 1, got "
                f"{backoff_base} / {backoff_multiplier}"
            )
        if not 0.0 <= jitter_fraction <= 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1], got {jitter_fraction}"
            )
        if breaker_threshold is not None and breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1 or None, got {breaker_threshold}"
            )
        if breaker_cooldown < 0:
            raise ValueError(
                f"breaker_cooldown must be >= 0, got {breaker_cooldown}"
            )
        self.transport = transport
        self.name = name or getattr(transport, "name", type(transport).__name__)
        self.max_batch_size = int(max_batch_size)
        self.max_delay = float(max_delay)
        self.max_in_flight = int(max_in_flight)
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_multiplier = float(backoff_multiplier)
        self.jitter_fraction = float(jitter_fraction)
        self.clock = clock
        self._sleep = sleep
        self._rng = RandomState(seed)
        self._lock = threading.Lock()
        self._queue: List[RemoteTicket] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = False
        # Accounting (all mutated under the lock).
        self._requests = 0
        self._records = 0
        self._batches = 0
        self._attempts = 0
        self._retries = 0
        self._timeouts = 0
        self._failures = 0
        self._giveups = 0
        self._in_flight = 0
        # Circuit breaker (state mutated under the lock).
        self.breaker_threshold = (
            None if breaker_threshold is None else int(breaker_threshold)
        )
        self.breaker_cooldown = float(breaker_cooldown)
        self._breaker_state = "closed"
        self._breaker_opened_at: Optional[float] = None
        self._giveup_streak = 0
        self._breaker_opens = 0
        self._short_circuits = 0

    # -- Submission -----------------------------------------------------------------
    def submit(self, record_indices) -> RemoteTicket:
        """Queue one sub-request; returns its :class:`RemoteTicket`.

        The sub-request launches when a merged batch fills to
        ``max_batch_size``, when it ages past ``max_delay`` (checked by
        :meth:`maybe_flush` / :meth:`RemoteTicket.poll`), or on
        :meth:`flush`.
        """
        idx = np.array(record_indices, dtype=np.int64, copy=True)
        with self._lock:
            if self._closed:
                raise RuntimeError(f"endpoint {self.name!r} is closed")
            ticket = RemoteTicket(self, idx)
            self._queue.append(ticket)
            self._requests += 1
            self._records += idx.shape[0]
            groups = self._drain_full_batches_locked()
        for group in groups:
            self._launch(group)
        return ticket

    def maybe_flush(self) -> None:
        """Launch queued sub-requests whose oldest member aged past
        ``max_delay`` (plus any size-complete batches)."""
        with self._lock:
            if not self._queue:
                return
            overdue = (self.clock() - self._queue[0].created_at) >= self.max_delay
            groups = self._drain_locked() if overdue else []
        for group in groups:
            self._launch(group)

    def flush(self) -> None:
        """Launch every queued sub-request now, partial batches included."""
        with self._lock:
            groups = self._drain_locked()
        for group in groups:
            self._launch(group)

    def _group_batches(
        self, tickets: List[RemoteTicket]
    ) -> List[List[RemoteTicket]]:
        """Pack whole sub-requests into batches of <= max_batch_size records
        (a batch always holds at least one sub-request)."""
        groups: List[List[RemoteTicket]] = []
        current: List[RemoteTicket] = []
        size = 0
        for ticket in tickets:
            n = ticket.record_indices.shape[0]
            if current and size + n > self.max_batch_size:
                groups.append(current)
                current, size = [], 0
            current.append(ticket)
            size += n
        if current:
            groups.append(current)
        return groups

    def _drain_locked(self) -> List[List[RemoteTicket]]:
        tickets, self._queue = self._queue, []
        return self._group_batches(tickets)

    def _drain_full_batches_locked(self) -> List[List[RemoteTicket]]:
        """Pop leading groups that can never grow further (size-complete)."""
        groups = self._group_batches(self._queue)
        if not groups:
            return []
        tail = groups[-1]
        tail_size = sum(t.record_indices.shape[0] for t in tail)
        if tail_size >= self.max_batch_size:
            self._queue = []
            return groups
        self._queue = tail
        return groups[:-1]

    # -- Execution ------------------------------------------------------------------
    def _launch(self, tickets: List[RemoteTicket]) -> None:
        merged = np.concatenate([t.record_indices for t in tickets])
        with self._lock:
            self._batches += 1
            self._in_flight += 1
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_in_flight,
                    thread_name_prefix=f"remote-{self.name}",
                )
            executor = self._executor
        executor.submit(self._run_batch, merged, tickets)

    def _backoff_seconds(self, retry_index: int) -> float:
        with self._lock:
            u = float(self._rng.random())
        delay = self.backoff_base * self.backoff_multiplier**retry_index
        return delay * (1.0 + self.jitter_fraction * u)

    # -- Circuit breaker -------------------------------------------------------------
    @property
    def breaker_state(self) -> str:
        """The breaker's current state: ``closed`` / ``open`` / ``half_open``."""
        with self._lock:
            return self._breaker_state

    def reset_breaker(self) -> None:
        """Force the breaker closed and clear the give-up streak (operator
        override after the remote service is known healthy again)."""
        with self._lock:
            self._breaker_state = "closed"
            self._breaker_opened_at = None
            self._giveup_streak = 0

    def _breaker_allows(self) -> bool:
        """Whether a batch may attempt the transport; transitions
        open -> half_open once the cooldown elapsed."""
        if self.breaker_threshold is None:
            return True
        with self._lock:
            if self._breaker_state == "open":
                opened_at = self._breaker_opened_at
                if (
                    opened_at is not None
                    and (self.clock() - opened_at) >= self.breaker_cooldown
                ):
                    self._breaker_state = "half_open"
                    return True
                return False
            return True

    def _note_batch_success(self) -> None:
        with self._lock:
            self._giveup_streak = 0
            if self._breaker_state != "closed":
                self._breaker_state = "closed"
                self._breaker_opened_at = None

    def _note_giveup(self) -> None:
        with self._lock:
            self._giveups += 1
            self._giveup_streak += 1
            if self.breaker_threshold is None:
                return
            should_open = (
                self._breaker_state == "half_open"  # failed probe re-opens
                or self._giveup_streak >= self.breaker_threshold
            )
            if should_open and self._breaker_state != "open":
                self._breaker_opens += 1
                self._breaker_state = "open"
                self._breaker_opened_at = self.clock()

    def _run_batch(self, merged: np.ndarray, tickets: List[RemoteTicket]) -> None:
        try:
            if not self._breaker_allows():
                with self._lock:
                    self._short_circuits += 1
                    streak = self._giveup_streak
                self._resolve_error(
                    tickets,
                    RemoteCircuitOpenError(
                        f"{self.name}: circuit breaker open after {streak} "
                        f"consecutive give-ups; batch of {merged.shape[0]} "
                        "records rejected without a transport attempt"
                    ),
                )
                return
            attempt = 0
            last_error: Optional[RemoteCallError] = None
            while True:
                with self._lock:
                    self._attempts += 1
                started = self.clock()
                try:
                    results = evaluate_oracle_batch(self.transport, merged)
                    if len(results) != merged.shape[0]:
                        raise ValueError(
                            f"remote transport returned {len(results)} answers "
                            f"for {merged.shape[0]} records"
                        )
                    elapsed = self.clock() - started
                    if self.timeout is not None and elapsed > self.timeout:
                        # A late answer is a lost answer: RPC semantics say
                        # the caller already gave up on this attempt.
                        raise RemoteCallTimeout(
                            f"{self.name}: attempt took {elapsed:.3f}s "
                            f"(timeout {self.timeout:.3f}s)"
                        )
                except RemoteCallTimeout as exc:
                    with self._lock:
                        self._timeouts += 1
                    last_error = exc
                except RemoteCallError as exc:
                    with self._lock:
                        self._failures += 1
                    last_error = exc
                except BaseException as exc:
                    # Non-transport errors (bad transport contract, bugs)
                    # are terminal: retrying cannot fix them.
                    self._resolve_error(tickets, exc)
                    return
                else:
                    self._note_batch_success()
                    self._scatter(merged, results, tickets)
                    return
                if attempt >= self.max_retries:
                    self._note_giveup()
                    giveup = RemoteGiveUpError(
                        f"{self.name}: batch of {merged.shape[0]} records "
                        f"abandoned after {attempt + 1} attempts"
                    )
                    giveup.__cause__ = last_error
                    self._resolve_error(tickets, giveup)
                    return
                with self._lock:
                    self._retries += 1
                backoff = self._backoff_seconds(attempt)
                if backoff > 0:
                    self._sleep(backoff)
                attempt += 1
        finally:
            with self._lock:
                self._in_flight -= 1

    def _scatter(self, merged, results, tickets: List[RemoteTicket]) -> None:
        start = 0
        for ticket in tickets:
            end = start + ticket.record_indices.shape[0]
            ticket._resolve(results[start:end])
            start = end

    def _resolve_error(self, tickets: List[RemoteTicket], error) -> None:
        for ticket in tickets:
            ticket._fail(error)

    # -- Introspection / lifecycle ---------------------------------------------------
    def stats(self) -> RemoteCallStats:
        with self._lock:
            return RemoteCallStats(
                requests=self._requests,
                records=self._records,
                batches=self._batches,
                attempts=self._attempts,
                retries=self._retries,
                timeouts=self._timeouts,
                failures=self._failures,
                giveups=self._giveups,
                pending_requests=len(self._queue),
                in_flight_batches=self._in_flight,
                giveup_streak=self._giveup_streak,
                breaker_opens=self._breaker_opens,
                short_circuits=self._short_circuits,
                breaker_state=self._breaker_state,
            )

    def close(self) -> None:
        """Flush, drain the worker pool, and refuse further submissions."""
        self.flush()
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "RemoteEndpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"RemoteEndpoint({self.name!r}, batches={s.batches}, "
            f"attempts={s.attempts}, giveups={s.giveups})"
        )


class AsyncOracle(Oracle):
    """An oracle whose answers come from a :class:`RemoteEndpoint`.

    Accounting is exact and failure-free by construction: one
    ``num_calls`` / cost / log charge per *successfully answered* record,
    through the standard ``Oracle._record`` path, recorded exactly once —
    retries and timeouts live entirely inside the endpoint and surface
    only through :meth:`remote_stats`.

    ``blocking=True`` (default): ``evaluate_batch`` submits, flushes and
    waits — usable anywhere an oracle is.  ``blocking=False``
    (cooperative): a not-yet-ready batch raises
    :class:`PendingOracleBatch`; the caller retries the *identical*
    request later (the sampling session guarantees this by rewinding its
    RNG), and the adapter recognizes the retry and hands back the
    resolved results.  Because one draw step may issue several chunked
    batches (``batch_size < n``), completed chunks are kept in a replay
    buffer and replayed — without double accounting — until the session
    signals the step completed via :meth:`step_boundary`.

    Cooperative mode is strictly single-caller (one session); use
    ``num_workers=1`` and let the endpoint's pool provide parallelism.
    """

    def __init__(
        self,
        endpoint: RemoteEndpoint,
        *,
        name: Optional[str] = None,
        cost_per_call: Optional[float] = None,
        blocking: bool = True,
        keep_log: bool = False,
    ):
        if cost_per_call is None:
            cost_per_call = float(
                getattr(endpoint.transport, "cost_per_call", 1.0)
            )
        super().__init__(
            name=name or f"async({endpoint.name})",
            cost_per_call=cost_per_call,
            keep_log=keep_log,
        )
        self.endpoint = endpoint
        self._blocking = bool(blocking)
        self._pending_key: Optional[bytes] = None
        self._pending_ticket: Optional[RemoteTicket] = None
        self._replay: List[Tuple[bytes, Sequence]] = []
        self._replay_pos = 0

    @property
    def blocking(self) -> bool:
        return self._blocking

    @property
    def parkable(self) -> bool:
        """Whether this oracle may raise :class:`PendingOracleBatch`
        (read by the sampling session to arm RNG rewind)."""
        return not self._blocking

    def remote_stats(self) -> RemoteCallStats:
        """The endpoint's failure/volume accounting snapshot."""
        return self.endpoint.stats()

    # -- Evaluation -----------------------------------------------------------------
    def evaluate_batch(self, record_indices: Sequence[int]):
        idx = np.asarray(record_indices, dtype=np.int64)
        if self._blocking:
            ticket = self.endpoint.submit(idx)
            ticket.wait()
            results = ticket.result()
            self._record(idx, results)
            return results
        return self._evaluate_cooperative(idx)

    def _evaluate_cooperative(self, idx: np.ndarray):
        key = idx.tobytes()
        if self._replay_pos < len(self._replay):
            replay_key, replay_results = self._replay[self._replay_pos]
            if replay_key == key:
                self._replay_pos += 1
                return replay_results
            # The retried draw asked for different records than the
            # recorded attempt (possible when a shared cache shrank the
            # miss set between attempts): the replay is stale.  Answers
            # stay correct — the stale work is simply dropped.
            self._reset_parking()
        if self._pending_ticket is not None:
            if self._pending_key != key:
                self._reset_parking()
            else:
                ticket = self._pending_ticket
                if not ticket.ready():
                    # The caller will restart the step from its first
                    # chunk, so rewind the replay cursor for the retry.
                    self._replay_pos = 0
                    raise PendingOracleBatch(ticket, oracle=self)
                self._pending_ticket = None
                self._pending_key = None
                results = ticket.result()  # raises RemoteGiveUpError on giveup
                self._record(idx, results)
                self._replay.append((key, results))
                self._replay_pos = len(self._replay)
                return results
        ticket = self.endpoint.submit(idx)
        self._pending_ticket = ticket
        self._pending_key = key
        self._replay_pos = 0
        raise PendingOracleBatch(ticket, oracle=self)

    def step_boundary(self) -> None:
        """Forget the current step's replay buffer (step completed).

        Called by :class:`~repro.engine.session.SamplingSession` after a
        draw step finishes without parking; manual cooperative callers
        should call it whenever a logical request sequence completes.
        """
        self._replay.clear()
        self._replay_pos = 0

    def _reset_parking(self) -> None:
        self._replay.clear()
        self._replay_pos = 0
        self._pending_ticket = None
        self._pending_key = None

    def __call__(self, record_index: int):
        return self.evaluate_batch([record_index])[0]

    def _evaluate(self, record_index: int):  # pragma: no cover - not used
        return self.endpoint.transport(record_index)

    def __getstate__(self):
        raise TypeError(
            "AsyncOracle is not picklable: it owns live endpoint state "
            "(tickets, worker pool); build a fresh adapter per process"
        )
