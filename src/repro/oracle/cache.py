"""Oracle result caching.

Sample reuse between Stage 1 and Stage 2 (Section 5.3's lesion study shows
it is critical) means the same record's oracle result may be needed twice.
A real system caches the DNN output; we model that with a memoizing
wrapper so the second lookup is free and does not count as an invocation.
"""

from __future__ import annotations

import threading
from typing import Dict, Sequence

import numpy as np

from repro.analysis.annotations import guarded_by
from repro.oracle.base import Oracle, evaluate_oracle_batch

__all__ = ["CachingOracle"]


@guarded_by("_cache_lock", "_cache", "_hits", "_misses")
class CachingOracle(Oracle):
    """Memoizes another oracle's results by record index.

    Cache hits are *not* charged: neither the wrapped oracle's counters nor
    this wrapper's own counters advance.  ``num_calls`` therefore reports
    the number of distinct records actually labelled, which is exactly the
    quantity the paper's budget refers to.

    The wrapper is thread-safe: the store mutation and the hit/miss
    bookkeeping happen under one lock, so concurrent callers (the serving
    layer runs one of these per shared predicate) cannot double-charge a
    record or lose counter updates.  The lock is held across the inner
    oracle's miss evaluation — that is what makes hit/miss accounting
    *exact* under contention (a racing duplicate request waits and then
    hits) — so, as with every stateful wrapper, compose it *outside*
    :class:`~repro.core.parallel.ParallelOracle`, never inside.
    """

    def __init__(self, oracle: Oracle, name: str = None):
        super().__init__(
            name=name or f"cached({oracle.name})",
            cost_per_call=oracle.cost_per_call,
        )
        self._inner = oracle
        self._cache: Dict[int, object] = {}
        self._hits = 0
        self._misses = 0
        self._cache_lock = threading.RLock()

    @property
    def inner(self) -> Oracle:
        return self._inner

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        with self._cache_lock:
            self._cache.clear()
            self._hits = 0
            self._misses = 0

    def __call__(self, record_index: int):
        key = int(record_index)
        with self._cache_lock:
            if key in self._cache:
                self._hits += 1
                return self._cache[key]
            self._misses += 1
            result = self._inner(key)
            self._cache[key] = result
            # Mirror the inner oracle's accounting so this wrapper's counters
            # can be used interchangeably with the wrapped oracle's.
            self._record((key,), (result,))
            return result

    def evaluate_batch(self, record_indices: Sequence[int]) -> list:
        """Batched lookup: uncached records hit the inner oracle in one batch.

        Counters match the sequential path exactly: each first occurrence of
        an uncached record is one miss / one charged call, every other
        occurrence (already cached, or repeated within this batch) is a free
        hit.
        """
        keys = np.asarray(record_indices, dtype=np.int64).tolist()
        with self._cache_lock:
            cache = self._cache
            pending = []  # unique uncached keys, in first-occurrence order
            pending_set = set()
            for key in keys:
                if key not in cache and key not in pending_set:
                    pending.append(key)
                    pending_set.add(key)
            if pending:
                fresh = evaluate_oracle_batch(
                    self._inner, np.asarray(pending, dtype=np.int64)
                )
                self._misses += len(pending)
                cache.update(zip(pending, fresh))
                self._record(pending, fresh)
            self._hits += len(keys) - len(pending)
            return [cache[key] for key in keys]

    # -- Pickling (process-backend parallel execution) ----------------------------
    def __getstate__(self):
        state = super().__getstate__()
        state.pop("_cache_lock", None)
        return state

    def __setstate__(self, state):
        super().__setstate__(state)
        self._cache_lock = threading.RLock()

    def _evaluate(self, record_index: int):  # pragma: no cover - not used
        return self._inner(record_index)
