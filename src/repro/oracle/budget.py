"""Oracle budget enforcement (the ``ORACLE LIMIT`` clause).

The query syntax (Figure 1) lets the user cap the number of oracle
invocations.  :class:`OracleBudget` tracks consumption and raises
:class:`OracleBudgetExceededError` when a charge would exceed the cap, so
bugs in allocation logic fail loudly instead of silently overspending.
"""

from __future__ import annotations

import threading

from repro.analysis.annotations import guarded_by
from repro.oracle.base import evaluate_oracle_batch

__all__ = ["OracleBudget", "OracleBudgetExceededError", "BudgetedOracle"]


class OracleBudgetExceededError(RuntimeError):
    """Raised when an oracle invocation would exceed the user's ORACLE LIMIT."""


@guarded_by("_lock", "_spent")
class OracleBudget:
    """A counter of remaining oracle invocations.

    The budget is expressed in *invocations* (not dollars) to match the
    paper's cost metric; a caller that wants dollar budgets can divide by
    the oracle's ``cost_per_call``.

    Charges, refunds and resets are atomic (one internal lock), so a
    budget can back a per-tenant quota shared by concurrently submitted
    queries — two racing charges can never jointly overshoot the limit.
    """

    def __init__(self, limit: int):
        if limit < 0:
            raise ValueError(f"oracle limit must be non-negative, got {limit}")
        self._limit = int(limit)
        self._spent = 0
        self._lock = threading.Lock()

    @property
    def limit(self) -> int:
        return self._limit

    @property
    def spent(self) -> int:
        return self._spent

    @property
    def remaining(self) -> int:
        return self._limit - self._spent

    def can_spend(self, n: int = 1) -> bool:
        """Whether ``n`` more invocations fit in the budget."""
        if n < 0:
            raise ValueError(f"cannot query a negative spend: {n}")
        return self._spent + n <= self._limit

    def charge(self, n: int = 1) -> None:
        """Consume ``n`` invocations, raising if the budget would be exceeded."""
        if n < 0:
            raise ValueError(f"cannot charge a negative amount: {n}")
        with self._lock:
            if self._spent + n > self._limit:
                raise OracleBudgetExceededError(
                    f"oracle budget exceeded: limit={self._limit}, spent={self._spent}, "
                    f"attempted additional charge={n}"
                )
            self._spent += n

    def refund(self, n: int) -> None:
        """Return ``n`` previously charged invocations to the budget.

        The serving layer's admission control charges a query's full
        budget up front and refunds the unspent remainder at settlement;
        a refund can never exceed what was actually charged.
        """
        if n < 0:
            raise ValueError(f"cannot refund a negative amount: {n}")
        with self._lock:
            if n > self._spent:
                raise ValueError(
                    f"cannot refund {n} invocations: only {self._spent} charged"
                )
            self._spent -= n

    def reset(self) -> None:
        """Return the budget to its unspent state."""
        with self._lock:
            self._spent = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OracleBudget(limit={self._limit}, spent={self._spent})"


class BudgetedOracle:
    """Wrap an oracle so every call is charged against a shared budget.

    This is what the query executor hands to the sampling algorithm: the
    algorithm can call the oracle freely and the wrapper guarantees the
    ORACLE LIMIT is honoured.  An optional cache-aware mode lets repeated
    evaluations of the same record go uncharged (see
    :class:`repro.oracle.cache.CachingOracle`, which should wrap *inside*
    the budget when the system wants cached hits charged, or *outside* when
    it does not).
    """

    def __init__(self, oracle, budget: OracleBudget):
        self._oracle = oracle
        self._budget = budget

    @property
    def budget(self) -> OracleBudget:
        return self._budget

    @property
    def inner(self):
        return self._oracle

    @property
    def num_calls(self) -> int:
        return self._oracle.num_calls

    @property
    def total_cost(self) -> float:
        return getattr(self._oracle, "total_cost", 0.0)

    @property
    def call_log(self):
        """The wrapped oracle's call log (legacy record-list view)."""
        return getattr(self._oracle, "call_log", [])

    @property
    def call_log_columns(self):
        """The wrapped oracle's columnar call log, when it keeps one."""
        return getattr(self._oracle, "call_log_columns", None)

    def __call__(self, record_index: int):
        self._budget.charge(1)
        return self._oracle(record_index)

    def evaluate_batch(self, record_indices) -> list:
        """Charge the whole batch up front, then evaluate it in one shot.

        A batch that does not fit in the remaining budget raises *before*
        any record is evaluated (the sequential path would evaluate up to
        the limit first); all-or-nothing batches keep the inner oracle's
        accounting consistent with what was actually charged.
        """
        self._budget.charge(len(record_indices))
        return evaluate_oracle_batch(self._oracle, record_indices)
