"""Oracles for group-by queries.

Section 3.2 distinguishes two settings:

* **Single oracle** — one oracle call returns the record's group key
  directly (or None when the record matches no group).  Sampling for one
  group therefore yields information about every group "for free".
* **Multiple oracles** — there is a separate binary oracle per group; to
  know a record's group membership for group *g* only the *g*-th oracle is
  consulted, and learning about other groups costs additional calls.

Both are modelled here on top of precomputed group-label columns.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.oracle.base import Oracle
from repro.oracle.simulated import LabelColumnOracle

__all__ = ["GroupKeyOracle", "PerGroupOracles"]


class GroupKeyOracle(Oracle):
    """Single-oracle setting: one call reveals the record's group key.

    ``group_keys`` holds the ground-truth key per record; records outside
    every group of interest carry ``none_value`` (default ``None``).  The
    oracle answers with the key itself, so a single invocation tells the
    caller both whether the record matches any group and which one.
    """

    def __init__(
        self,
        group_keys: Sequence[Hashable],
        groups: Optional[Sequence[Hashable]] = None,
        none_value: Hashable = None,
        name: str = "group_key_oracle",
        cost_per_call: float = 1.0,
    ):
        super().__init__(name=name, cost_per_call=cost_per_call)
        self._keys = np.asarray(group_keys, dtype=object)
        self._none_value = none_value
        if groups is None:
            observed = {k for k in self._keys if k != none_value and k is not None}
            groups = sorted(observed, key=str)
        self._groups = list(groups)

    @property
    def groups(self) -> List[Hashable]:
        """The group keys this oracle can report, in a stable order."""
        return list(self._groups)

    def _evaluate(self, record_index: int) -> Hashable:
        key = self._keys[record_index]
        if key is None or key == self._none_value:
            return None
        return key

    def _evaluate_batch(self, record_indices) -> List[Hashable]:
        keys = self._keys[np.asarray(record_indices, dtype=np.int64)]
        none = self._none_value
        return [None if (k is None or k == none) else k for k in keys]

    def membership_oracle(self, group: Hashable) -> LabelColumnOracle:
        """Derive a binary oracle for a single group (used in tests/baselines).

        Note that the derived oracle has its own accounting: it represents
        the hypothetical "I only ask about group g" usage, not a free view
        into this oracle's answers.
        """
        if group not in self._groups:
            raise ValueError(f"unknown group {group!r}; known groups: {self._groups}")
        labels = np.array([k == group for k in self._keys], dtype=bool)
        return LabelColumnOracle(
            labels, name=f"{self.name}[{group}]", cost_per_call=self.cost_per_call
        )


class PerGroupOracles:
    """Multiple-oracle setting: an independent binary oracle per group.

    Each group's oracle charges its own invocations; asking about a record
    for every group costs ``len(groups)`` calls, which is why the paper
    normalizes the budget by the number of groups in Figure 8.
    """

    def __init__(
        self,
        group_keys: Sequence[Hashable],
        groups: Optional[Sequence[Hashable]] = None,
        none_value: Hashable = None,
        cost_per_call: float = 1.0,
        name: str = "per_group_oracles",
    ):
        keys = np.asarray(group_keys, dtype=object)
        if groups is None:
            observed = {k for k in keys if k != none_value and k is not None}
            groups = sorted(observed, key=str)
        self._groups = list(groups)
        self._name = name
        self._oracles: Dict[Hashable, LabelColumnOracle] = {}
        for group in self._groups:
            labels = np.array([k == group for k in keys], dtype=bool)
            self._oracles[group] = LabelColumnOracle(
                labels, name=f"{name}[{group}]", cost_per_call=cost_per_call
            )

    @property
    def groups(self) -> List[Hashable]:
        return list(self._groups)

    def oracle_for(self, group: Hashable) -> LabelColumnOracle:
        """The binary membership oracle for one group."""
        try:
            return self._oracles[group]
        except KeyError:
            raise ValueError(
                f"unknown group {group!r}; known groups: {self._groups}"
            ) from None

    @property
    def total_calls(self) -> int:
        """Total oracle invocations summed over every group's oracle."""
        return sum(o.num_calls for o in self._oracles.values())

    @property
    def total_cost(self) -> float:
        return sum(o.total_cost for o in self._oracles.values())

    def reset_accounting(self) -> None:
        for oracle in self._oracles.values():
            oracle.reset_accounting()
