"""Oracles for group-by queries.

Section 3.2 distinguishes two settings:

* **Single oracle** — one oracle call returns the record's group key
  directly (or None when the record matches no group).  Sampling for one
  group therefore yields information about every group "for free".
* **Multiple oracles** — there is a separate binary oracle per group; to
  know a record's group membership for group *g* only the *g*-th oracle is
  consulted, and learning about other groups costs additional calls.

Both are modelled here on top of precomputed group-label columns.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.data.backend import as_dense, is_column_handle
from repro.oracle.base import Oracle
from repro.oracle.simulated import LabelColumnOracle

__all__ = ["GroupKeyOracle", "PerGroupOracles", "membership_column"]


def membership_column(keys: np.ndarray, group: Hashable) -> np.ndarray:
    """Boolean membership column for one group, built in a single pass.

    ``np.fromiter`` over a generator avoids materializing an intermediate
    Python list per group; equality stays per-element Python ``==`` so
    arbitrary hashable keys (tuples included) compare exactly as before.
    Shared by the per-group oracle constructors and the group-by sampler's
    draw log.
    """
    return np.fromiter(
        (k == group for k in keys), dtype=bool, count=keys.shape[0]
    )


class GroupKeyOracle(Oracle):
    """Single-oracle setting: one call reveals the record's group key.

    ``group_keys`` holds the ground-truth key per record; records outside
    every group of interest carry ``none_value`` (default ``None``).  The
    oracle answers with the key itself, so a single invocation tells the
    caller both whether the record matches any group and which one.

    ``group_keys`` may also be a dataset-backend column handle (keys
    stored out-of-core as fixed-width strings or integer codes).  Backed
    keys are gathered and none-normalized per batch instead of through a
    precomputed answer column, so the column never materializes; the
    ``groups`` list must then be given explicitly, because inferring it
    would require the full scan the backed path exists to avoid.
    """

    def __init__(
        self,
        group_keys: Sequence[Hashable],
        groups: Optional[Sequence[Hashable]] = None,
        none_value: Hashable = None,
        name: str = "group_key_oracle",
        cost_per_call: float = 1.0,
    ):
        super().__init__(name=name, cost_per_call=cost_per_call)
        self._none_value = none_value
        if is_column_handle(group_keys):
            if groups is None:
                raise ValueError(
                    "groups must be given explicitly when group_keys is a "
                    "backend column handle (inference needs a full scan)"
                )
            self._keys_handle = group_keys
            self._keys = None
            self._answers = None
        else:
            self._keys_handle = None
            self._keys = np.asarray(group_keys, dtype=object)
            if groups is None:
                observed = {
                    k for k in self._keys if k != none_value and k is not None
                }
                groups = sorted(observed, key=str)
            # Precompute the answer column once (none-values normalized to
            # None) so batch evaluation is a single fancy index instead of
            # a per-record Python comparison loop.
            none_mask = np.fromiter(
                (k is None or k == none_value for k in self._keys),
                dtype=bool,
                count=self._keys.shape[0],
            )
            self._answers = self._keys.copy()
            self._answers[none_mask] = None
        self._groups = list(groups)

    @property
    def groups(self) -> List[Hashable]:
        """The group keys this oracle can report, in a stable order."""
        return list(self._groups)

    def _materialized_keys(self) -> np.ndarray:
        """The full key column as an object array (copies backed columns)."""
        if self._keys is not None:
            return self._keys
        return np.asarray(self._keys_handle.to_numpy().tolist(), dtype=object)

    def _normalize_batch(self, keys: List[Hashable]) -> List[Hashable]:
        none = self._none_value
        return [None if (k is None or k == none) else k for k in keys]

    def _evaluate(self, record_index: int) -> Hashable:
        if self._answers is not None:
            return self._answers[record_index]
        key = self._keys_handle.gather(
            np.array([record_index], dtype=np.int64)
        ).tolist()[0]
        return self._normalize_batch([key])[0]

    def _evaluate_batch(self, record_indices) -> List[Hashable]:
        idx = np.asarray(record_indices, dtype=np.int64)
        if self._answers is not None:
            return self._answers[idx].tolist()
        # ``tolist`` converts fixed-width storage scalars back to native
        # Python values, so logged answers match the dense path exactly.
        return self._normalize_batch(self._keys_handle.gather(idx).tolist())

    def membership_oracle(self, group: Hashable) -> LabelColumnOracle:
        """Derive a binary oracle for a single group (used in tests/baselines).

        Note that the derived oracle has its own accounting: it represents
        the hypothetical "I only ask about group g" usage, not a free view
        into this oracle's answers.
        """
        if group not in self._groups:
            raise ValueError(f"unknown group {group!r}; known groups: {self._groups}")
        labels = membership_column(self._materialized_keys(), group)
        return LabelColumnOracle(
            labels, name=f"{self.name}[{group}]", cost_per_call=self.cost_per_call
        )


class PerGroupOracles:
    """Multiple-oracle setting: an independent binary oracle per group.

    Each group's oracle charges its own invocations; asking about a record
    for every group costs ``len(groups)`` calls, which is why the paper
    normalizes the budget by the number of groups in Figure 8.

    ``group_keys`` may be a dataset-backend column handle; the key column
    is scanned once to build the per-group boolean membership columns
    (those *are* the answer columns and must live somewhere), so unlike
    :class:`GroupKeyOracle`'s backed path this constructor holds one
    byte per record per group.
    """

    def __init__(
        self,
        group_keys: Sequence[Hashable],
        groups: Optional[Sequence[Hashable]] = None,
        none_value: Hashable = None,
        cost_per_call: float = 1.0,
        name: str = "per_group_oracles",
    ):
        if is_column_handle(group_keys):
            keys = np.asarray(as_dense(group_keys).tolist(), dtype=object)
        else:
            keys = np.asarray(group_keys, dtype=object)
        if groups is None:
            observed = {k for k in keys if k != none_value and k is not None}
            groups = sorted(observed, key=str)
        self._groups = list(groups)
        self._name = name
        self._oracles: Dict[Hashable, LabelColumnOracle] = {}
        for group in self._groups:
            self._oracles[group] = LabelColumnOracle(
                membership_column(keys, group),
                name=f"{name}[{group}]",
                cost_per_call=cost_per_call,
            )

    @property
    def groups(self) -> List[Hashable]:
        return list(self._groups)

    def oracle_for(self, group: Hashable) -> LabelColumnOracle:
        """The binary membership oracle for one group."""
        try:
            return self._oracles[group]
        except KeyError:
            raise ValueError(
                f"unknown group {group!r}; known groups: {self._groups}"
            ) from None

    @property
    def total_calls(self) -> int:
        """Total oracle invocations summed over every group's oracle."""
        return sum(o.num_calls for o in self._oracles.values())

    @property
    def total_cost(self) -> float:
        return sum(o.total_cost for o in self._oracles.values())

    def reset_accounting(self) -> None:
        for oracle in self._oracles.values():
            oracle.reset_accounting()
